//! Domain-parking servers (Afternic/namefind style).
//!
//! Paper §4.4: *"The Afternic NSes respond to all queries identically
//! (e.g., responding to NS queries with ns1.namefind.com. and
//! ns2.namefind.com.), thus creating the illusion of a zone cut at every
//! level of the DNS tree."* One such server, reached through a typo'd NS
//! name (`ns1.desc.io.`), was enough to disqualify a zone from
//! Authenticated Bootstrapping because the signal-zone path appeared to
//! contain a zone cut.

use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::{Record, RecordType};
use netsim::{Addr, ServerHandler, ServerResponse, SimMicros, Transport};
use std::net::Ipv4Addr;

/// A parking responder: answers every A query with the parking address and
/// every NS query (for *any* name) with the configured parking NS names.
pub struct ParkingServer {
    /// NS names returned for every NS query (e.g. `ns1.namefind.com`).
    pub parking_ns: Vec<Name>,
    /// Address returned for every A query (the parking web page).
    pub parking_addr: Ipv4Addr,
}

impl ParkingServer {
    pub fn namefind() -> Self {
        ParkingServer {
            parking_ns: vec![
                Name::parse("ns1.namefind.com").unwrap(),
                Name::parse("ns2.namefind.com").unwrap(),
            ],
            parking_addr: Ipv4Addr::new(198, 51, 100, 1),
        }
    }
}

impl ServerHandler for ParkingServer {
    fn handle(
        &self,
        query: &[u8],
        _dst: Addr,
        _t: Transport,
        _b: u32,
        _now: SimMicros,
    ) -> ServerResponse {
        let Ok(parsed) = Message::from_bytes(query) else {
            return ServerResponse::Drop;
        };
        let Some(q) = parsed.questions.first() else {
            return ServerResponse::Reply(Message::response_to(&parsed, Rcode::FormErr).to_bytes());
        };
        let mut resp = Message::response_to(&parsed, Rcode::NoError);
        resp.header.flags.authoritative = true;
        match q.rtype {
            RecordType::Ns => {
                for ns in &self.parking_ns {
                    resp.answers
                        .push(Record::new(q.name.clone(), 300, RData::Ns(ns.clone())));
                }
            }
            RecordType::A => {
                resp.answers.push(Record::new(
                    q.name.clone(),
                    300,
                    RData::A(self.parking_addr),
                ));
            }
            // Anything else: NODATA with no SOA — parked zones are sloppy.
            _ => {}
        }
        ServerResponse::Reply(resp.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ask(rtype: RecordType, name: &str) -> Message {
        let s = ParkingServer::namefind();
        let q = Message::query(1, Name::parse(name).unwrap(), rtype, true);
        match s.handle(
            &q.to_bytes(),
            Addr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            Transport::Udp,
            0,
            0,
        ) {
            ServerResponse::Reply(b) => Message::from_bytes(&b).unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn ns_answered_for_any_name_identically() {
        // The "zone cut at every level" illusion: NS exists everywhere.
        let a = ask(RecordType::Ns, "anything.example");
        let b = ask(RecordType::Ns, "deep.below.anything.example");
        let c = ask(RecordType::Ns, "_signal.ns1.desc.io");
        for resp in [&a, &b, &c] {
            assert_eq!(resp.answers_of(RecordType::Ns).len(), 2);
            assert!(resp.header.flags.authoritative);
        }
        let names: Vec<String> = a.answers.iter().map(|r| r.rdata.presentation()).collect();
        assert!(names.contains(&"ns1.namefind.com.".to_string()));
    }

    #[test]
    fn a_query_gets_parking_address() {
        let resp = ask(RecordType::A, "whatever.example");
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
    }

    #[test]
    fn cds_query_gets_empty_noerror() {
        let resp = ask(RecordType::Cds, "x.example");
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert!(resp.authorities.is_empty());
    }
}
