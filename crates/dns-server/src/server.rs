//! The authoritative server: query → response, per RFC 1034 §4.3.2 with
//! the DNSSEC additions of RFC 4035 §3.

use crate::quirks::Quirks;
use crate::store::ZoneStore;
use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::{Record, RecordType};
use dns_wire::{CLASSIC_UDP_PAYLOAD, EDNS_UDP_PAYLOAD};
use dns_zone::{Zone, ZoneLookup};
use netsim::{Addr, ServerHandler, ServerResponse, SimMicros, Transport};
use std::sync::Arc;

/// Record types a never-updated-since-2002 server knows about. Everything
/// else triggers an error under [`Quirks::pre_rfc3597`].
const LEGACY_KNOWN_TYPES: &[RecordType] = &[
    RecordType::A,
    RecordType::Ns,
    RecordType::Cname,
    RecordType::Soa,
    RecordType::Mx,
    RecordType::Txt,
    RecordType::Aaaa,
];

/// A simulated authoritative nameserver over a [`ZoneStore`].
pub struct AuthServer {
    store: Arc<ZoneStore>,
    quirks: Quirks,
}

impl AuthServer {
    pub fn new(store: Arc<ZoneStore>) -> Self {
        AuthServer {
            store,
            quirks: Quirks::CLEAN,
        }
    }

    pub fn with_quirks(mut self, quirks: Quirks) -> Self {
        self.quirks = quirks;
        self
    }

    /// The store this server answers from (shared with the operator model,
    /// which mutates zones between scans).
    pub fn store(&self) -> &Arc<ZoneStore> {
        &self.store
    }

    /// Answer a parsed query message. Exposed for in-process use by tests
    /// and the resolver fast path; the wire path goes through
    /// [`ServerHandler::handle`].
    pub fn answer(&self, query: &Message) -> Message {
        let Some(question) = query.questions.first() else {
            return Message::response_to(query, Rcode::FormErr);
        };
        let qname = question.name.clone();
        let qtype = question.rtype;
        let dnssec_ok = query.dnssec_ok();

        if self.quirks.pre_rfc3597 && !LEGACY_KNOWN_TYPES.contains(&qtype) {
            // Old servers violate RFC 3597 §3 and error on unknown types.
            return Message::response_to(query, Rcode::FormErr);
        }

        let Some(zone) = self.store.find(&qname) else {
            return Message::response_to(query, Rcode::Refused);
        };

        let mut resp = Message::response_to(query, Rcode::NoError);
        match zone.lookup(&qname, qtype) {
            ZoneLookup::Answer(set) => {
                resp.header.flags.authoritative = true;
                resp.answers.extend(set.records());
                if dnssec_ok {
                    resp.answers.extend(rrsigs_for(&zone, &qname, qtype));
                }
            }
            ZoneLookup::Cname(set) => {
                resp.header.flags.authoritative = true;
                resp.answers.extend(set.records());
                if dnssec_ok {
                    resp.answers
                        .extend(rrsigs_for(&zone, &qname, RecordType::Cname));
                }
            }
            ZoneLookup::NoData => {
                resp.header.flags.authoritative = true;
                add_soa(&mut resp, &zone, dnssec_ok);
                if dnssec_ok {
                    add_nsec_at(&mut resp, &zone, &qname);
                }
            }
            ZoneLookup::NxDomain => {
                resp.set_rcode(Rcode::NxDomain);
                resp.header.flags.authoritative = true;
                add_soa(&mut resp, &zone, dnssec_ok);
                if dnssec_ok {
                    if let Some(prev) = zone.nsec_predecessor(&qname) {
                        let prev = prev.clone();
                        add_nsec_at(&mut resp, &zone, &prev);
                    }
                }
            }
            ZoneLookup::Delegation { cut, ns, ds, glue } => {
                // Referral: not authoritative; NS set in authority.
                resp.authorities.extend(ns.records());
                if dnssec_ok {
                    match ds {
                        Some(ds_set) => {
                            resp.authorities.extend(ds_set.records());
                            resp.authorities
                                .extend(rrsigs_for(&zone, &cut, RecordType::Ds));
                        }
                        None => {
                            // Signed zone proves the delegation insecure
                            // with the NSEC at the cut.
                            add_nsec_at(&mut resp, &zone, &cut);
                        }
                    }
                }
                resp.additionals.extend(glue);
            }
            ZoneLookup::OutOfZone => {
                // find() guarantees containment; treat defensively.
                return Message::response_to(query, Rcode::Refused);
            }
        }
        resp
    }
}

/// RRSIG records at `name` covering `covered`.
fn rrsigs_for(zone: &Zone, name: &Name, covered: RecordType) -> Vec<Record> {
    zone.rrset(name, RecordType::Rrsig)
        .map(|set| {
            set.records()
                .into_iter()
                .filter(|r| match &r.rdata {
                    RData::Rrsig(s) => s.type_covered == covered.code(),
                    _ => false,
                })
                .collect()
        })
        .unwrap_or_default()
}

fn add_soa(resp: &mut Message, zone: &Zone, dnssec_ok: bool) {
    if let Some(soa) = zone.rrset(zone.apex(), RecordType::Soa) {
        resp.authorities.extend(soa.records());
        if dnssec_ok {
            resp.authorities
                .extend(rrsigs_for(zone, zone.apex(), RecordType::Soa));
        }
    }
}

fn add_nsec_at(resp: &mut Message, zone: &Zone, name: &Name) {
    if let Some(nsec) = zone.rrset(name, RecordType::Nsec) {
        resp.authorities.extend(nsec.records());
        resp.authorities
            .extend(rrsigs_for(zone, name, RecordType::Nsec));
    }
}

/// Flip signature bytes in every RRSIG of a message (transient-badsig
/// quirk). Operates on the parsed form before re-encoding.
fn corrupt_signatures(msg: &mut Message) {
    for rec in msg
        .answers
        .iter_mut()
        .chain(msg.authorities.iter_mut())
        .chain(msg.additionals.iter_mut())
    {
        if let RData::Rrsig(sig) = &mut rec.rdata {
            for b in sig.signature.iter_mut() {
                *b ^= 0xa5;
            }
        }
    }
}

impl ServerHandler for AuthServer {
    fn handle(
        &self,
        query: &[u8],
        _dst: Addr,
        transport: Transport,
        backend: u32,
        now: SimMicros,
    ) -> ServerResponse {
        if self.quirks.outage_active(now) {
            // Scheduled maintenance window: the server is simply gone.
            return ServerResponse::Drop;
        }
        let Ok(parsed) = Message::from_bytes(query) else {
            // Can't even recover an ID — drop, as real servers often do
            // with garbage.
            return ServerResponse::Drop;
        };
        if self.quirks.draw_servfail(query, backend) {
            return ServerResponse::Reply(
                Message::response_to(&parsed, Rcode::ServFail).to_bytes(),
            );
        }
        let mut resp = self.answer(&parsed);
        if self.quirks.draw_badsig(query, backend) {
            corrupt_signatures(&mut resp);
        }
        let mut bytes = resp.to_bytes();
        if transport == Transport::Udp {
            let limit = parsed
                .edns
                .map(|e| e.udp_payload.clamp(CLASSIC_UDP_PAYLOAD, EDNS_UDP_PAYLOAD))
                .unwrap_or(CLASSIC_UDP_PAYLOAD) as usize;
            if bytes.len() > limit {
                // Truncate: TC=1 and empty sections; client retries TCP.
                let mut tc = Message::response_to(&parsed, resp.rcode());
                tc.header.flags.truncated = true;
                tc.header.flags.authoritative = resp.header.flags.authoritative;
                bytes = tc.to_bytes();
            }
        }
        ServerResponse::Reply(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_crypto::Algorithm;
    use dns_wire::name;
    use dns_wire::rdata::SoaData;
    use dns_zone::{ZoneKeys, ZoneSigner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_000_000;

    fn signed_store() -> (Arc<ZoneStore>, ZoneKeys) {
        let apex = name!("example.ch");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.example.ch"),
                rname: name!("hostmaster.example.ch"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Ns(name!("ns1.example.ch")),
        ));
        z.add(Record::new(
            name!("ns1.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        z.add(Record::new(
            name!("www.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        z.add(Record::new(
            name!("unsigned-del.example.ch"),
            300,
            RData::Ns(name!("ns.elsewhere.net")),
        ));
        let mut rng = StdRng::seed_from_u64(5);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let store = Arc::new(ZoneStore::new());
        store.insert(z);
        (store, keys)
    }

    fn ask(server: &AuthServer, name: &str, rtype: RecordType, dnssec: bool) -> Message {
        let q = Message::query(1, name!(name), rtype, dnssec);
        server.answer(&q)
    }

    #[test]
    fn positive_answer_with_rrsig() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "www.example.ch", RecordType::A, true);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.header.flags.authoritative);
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
        assert_eq!(resp.answers_of(RecordType::Rrsig).len(), 1);
    }

    #[test]
    fn positive_answer_without_do_has_no_rrsig() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "www.example.ch", RecordType::A, false);
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
        assert!(resp.answers_of(RecordType::Rrsig).is_empty());
    }

    #[test]
    fn nodata_carries_soa_and_nsec() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "www.example.ch", RecordType::Mx, true);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.answers.is_empty());
        let types: Vec<RecordType> = resp.authorities.iter().map(|r| r.rtype()).collect();
        assert!(types.contains(&RecordType::Soa));
        assert!(types.contains(&RecordType::Nsec));
        assert!(types.contains(&RecordType::Rrsig));
    }

    #[test]
    fn nxdomain_carries_covering_nsec() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "nope.example.ch", RecordType::A, true);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        let nsecs: Vec<&Record> = resp
            .authorities
            .iter()
            .filter(|r| r.rtype() == RecordType::Nsec)
            .collect();
        assert_eq!(nsecs.len(), 1);
        // The covering NSEC's owner precedes the qname canonically.
        assert_eq!(
            nsecs[0].name.canonical_cmp(&name!("nope.example.ch")),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn refused_outside_authority() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "example.org", RecordType::A, true);
        assert_eq!(resp.rcode(), Rcode::Refused);
    }

    #[test]
    fn cds_query_on_clean_server_is_nodata() {
        // RFC 3597-compliant servers answer NODATA for unknown-to-them
        // types that have no RRset.
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "www.example.ch", RecordType::Cds, true);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn pre_rfc3597_quirk_errors_on_cds() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store).with_quirks(Quirks {
            pre_rfc3597: true,
            ..Quirks::CLEAN
        });
        let resp = ask(&s, "www.example.ch", RecordType::Cds, true);
        assert!(resp.rcode().is_error());
        // But ordinary types still work.
        let resp = ask(&s, "www.example.ch", RecordType::A, true);
        assert_eq!(resp.rcode(), Rcode::NoError);
    }

    #[test]
    fn unsigned_delegation_refers_with_nsec_proof() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "deep.unsigned-del.example.ch", RecordType::A, true);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(!resp.header.flags.authoritative);
        let types: Vec<RecordType> = resp.authorities.iter().map(|r| r.rtype()).collect();
        assert!(types.contains(&RecordType::Ns));
        assert!(types.contains(&RecordType::Nsec), "insecurity proof");
        assert!(!types.contains(&RecordType::Ds));
    }

    #[test]
    fn ds_query_at_cut_answered_by_parent() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let resp = ask(&s, "unsigned-del.example.ch", RecordType::Ds, true);
        // No DS → authoritative NODATA from the parent.
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.header.flags.authoritative);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn wire_path_roundtrip() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let q = Message::query(7, name!("www.example.ch"), RecordType::A, true);
        let out = s.handle(
            &q.to_bytes(),
            Addr::V4(Ipv4Addr::new(192, 0, 2, 1)),
            Transport::Udp,
            0,
            0,
        );
        match out {
            ServerResponse::Reply(bytes) => {
                let resp = Message::from_bytes(&bytes).unwrap();
                assert_eq!(resp.header.id, 7);
                assert_eq!(resp.answers_of(RecordType::A).len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_datagram_dropped() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store);
        let out = s.handle(
            &[1, 2, 3],
            Addr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            Transport::Udp,
            0,
            0,
        );
        assert_eq!(out, ServerResponse::Drop);
    }

    #[test]
    fn truncation_sets_tc_and_tcp_carries_full_answer() {
        // Build a zone with a huge TXT RRset to exceed 1232 bytes.
        let apex = name!("big.test");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.big.test"),
                rname: name!("h.big.test"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 300,
            }),
        ));
        for i in 0..20 {
            z.add(Record::new(
                apex.clone(),
                300,
                RData::Txt(vec![vec![b'a' + (i % 26) as u8; 200]]),
            ));
        }
        let store = Arc::new(ZoneStore::new());
        store.insert(z);
        let s = AuthServer::new(store);
        let q = Message::query(9, name!("big.test"), RecordType::Txt, true);
        let udp = match s.handle(
            &q.to_bytes(),
            Addr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            Transport::Udp,
            0,
            0,
        ) {
            ServerResponse::Reply(b) => Message::from_bytes(&b).unwrap(),
            _ => panic!(),
        };
        assert!(udp.header.flags.truncated);
        assert!(udp.answers.is_empty());
        let tcp = match s.handle(
            &q.to_bytes(),
            Addr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            Transport::Tcp,
            0,
            0,
        ) {
            ServerResponse::Reply(b) => Message::from_bytes(&b).unwrap(),
            _ => panic!(),
        };
        assert!(!tcp.header.flags.truncated);
        assert_eq!(tcp.answers_of(RecordType::Txt).len(), 20);
    }

    #[test]
    fn transient_servfail_quirk_fires() {
        let (store, _) = signed_store();
        let s = AuthServer::new(store).with_quirks(Quirks {
            transient_servfail: 0.5,
            seed: 11,
            ..Quirks::CLEAN
        });
        let mut fails = 0;
        for id in 0..100u16 {
            let q = Message::query(id, name!("www.example.ch"), RecordType::A, true);
            if let ServerResponse::Reply(b) = s.handle(
                &q.to_bytes(),
                Addr::V4(Ipv4Addr::new(1, 1, 1, 1)),
                Transport::Udp,
                0,
                0,
            ) {
                if Message::from_bytes(&b).unwrap().rcode() == Rcode::ServFail {
                    fails += 1;
                }
            }
        }
        assert!((20..80).contains(&fails), "{fails}");
    }

    #[test]
    fn transient_badsig_corrupts_signatures() {
        let (store, keys) = signed_store();
        let s = AuthServer::new(Arc::clone(&store)).with_quirks(Quirks {
            transient_badsig: 1.0,
            seed: 11,
            ..Quirks::CLEAN
        });
        let q = Message::query(3, name!("www.example.ch"), RecordType::A, true);
        let resp = match s.handle(
            &q.to_bytes(),
            Addr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            Transport::Udp,
            0,
            0,
        ) {
            ServerResponse::Reply(b) => Message::from_bytes(&b).unwrap(),
            _ => panic!(),
        };
        // The RRSIG present must NOT verify.
        let zone = store.get(&name!("example.ch")).unwrap();
        let set = zone.rrset(&name!("www.example.ch"), RecordType::A).unwrap();
        let sigs: Vec<_> = resp
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Rrsig(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(!sigs.is_empty());
        let dnskeys: Vec<_> = keys
            .dnskey_records(&name!("example.ch"), 300)
            .into_iter()
            .map(|r| match r.rdata {
                RData::Dnskey(d) => d,
                _ => panic!(),
            })
            .collect();
        assert!(dns_zone::signer::verify_rrset_with_keys(set, &sigs, &dnskeys, NOW).is_err());
    }
}
