//! Byzantine servers: nameservers that violate the protocol on purpose.
//!
//! The benign [`AuthServer`](crate::AuthServer) models *misconfigured*
//! operators (quirks, outages). This module models *adversarial* ones —
//! servers whose whole point is to waste a scanner's query budget, poison
//! its caches, or feed it answers for questions it never asked. Each
//! [`ByzantineMode`] realises one archetype from the ecosystem's
//! adversarial tier; the hardened resolver's acceptance rules (DESIGN.md
//! §6c) are what these servers are built to probe.

use crate::server::AuthServer;
use crate::store::ZoneStore;
use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::record::Record;
use netsim::{Addr, ServerHandler, ServerResponse, SimMicros, Transport};
use std::sync::Arc;

/// What flavour of hostility a [`ByzantineServer`] exhibits.
pub enum ByzantineMode {
    /// Answer REFUSED to every query (a lame delegation target).
    Lame,
    /// Answer every query with the same referral: NS records for `cut` in
    /// the authority section and `glue` in the additional section. Two of
    /// these pointing at each other make a delegation loop; one whose glue
    /// points back at itself is self-referential.
    Referral {
        cut: Name,
        ns: Vec<Name>,
        glue: Vec<Record>,
    },
    /// Echo a *different* question than the one asked (QNAME confusion).
    WrongQname { decoy: Name },
    /// Answer with a transaction ID one off from the query's (the
    /// off-path spoofing model: plausible content, unauthenticated ID).
    MismatchedId,
    /// Answer honestly from a zone store, then pad the response with junk
    /// records: `junk_answers` join the answer section, `junk_authority`
    /// the authority section. The junk carries names outside any zone this
    /// server is authoritative for — classic cache-poisoning bait.
    Inject {
        inner: Arc<ZoneStore>,
        junk_answers: Vec<Record>,
        junk_authority: Vec<Record>,
    },
}

/// A nameserver that implements one [`ByzantineMode`].
///
/// Unlike [`AuthServer`](crate::AuthServer) it performs no truncation: an
/// adversary has no interest in honouring EDNS payload limits, and the
/// simulated network delivers oversized datagrams regardless.
pub struct ByzantineServer {
    mode: ByzantineMode,
}

impl ByzantineServer {
    pub fn new(mode: ByzantineMode) -> Self {
        ByzantineServer { mode }
    }

    fn respond(&self, query: &Message) -> Message {
        match &self.mode {
            ByzantineMode::Lame => Message::response_to(query, Rcode::Refused),
            ByzantineMode::Referral { cut, ns, glue } => {
                let mut resp = Message::response_to(query, Rcode::NoError);
                for target in ns {
                    resp.authorities.push(Record::new(
                        cut.clone(),
                        3600,
                        dns_wire::rdata::RData::Ns(target.clone()),
                    ));
                }
                resp.additionals.extend(glue.iter().cloned());
                resp
            }
            ByzantineMode::WrongQname { decoy } => {
                let mut resp = Message::response_to(query, Rcode::NoError);
                if let Some(q) = resp.questions.first_mut() {
                    q.name = decoy.clone();
                }
                resp
            }
            ByzantineMode::MismatchedId => {
                let mut resp = Message::response_to(query, Rcode::NoError);
                resp.header.id = resp.header.id.wrapping_add(1);
                resp
            }
            ByzantineMode::Inject {
                inner,
                junk_answers,
                junk_authority,
            } => {
                let mut resp = AuthServer::new(Arc::clone(inner)).answer(query);
                resp.answers.extend(junk_answers.iter().cloned());
                resp.authorities.extend(junk_authority.iter().cloned());
                resp
            }
        }
    }
}

impl ServerHandler for ByzantineServer {
    fn handle(
        &self,
        query: &[u8],
        _dst: Addr,
        _transport: Transport,
        _backend: u32,
        _now: SimMicros,
    ) -> ServerResponse {
        let Ok(parsed) = Message::from_bytes(query) else {
            return ServerResponse::Drop;
        };
        ServerResponse::Reply(self.respond(&parsed).to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::message::Message;
    use dns_wire::name;
    use dns_wire::rdata::RData;
    use dns_wire::record::RecordType;
    use std::net::Ipv4Addr;

    fn ask(server: &ByzantineServer, qname: &Name) -> Message {
        let q = Message::query(7, qname.clone(), RecordType::A, true);
        let ServerResponse::Reply(bytes) = server.handle(
            &q.to_bytes(),
            Addr::V4(Ipv4Addr::new(10, 200, 0, 1)),
            Transport::Udp,
            0,
            0,
        ) else {
            panic!("byzantine server must reply");
        };
        Message::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn lame_refuses_everything() {
        let s = ByzantineServer::new(ByzantineMode::Lame);
        let resp = ask(&s, &name!("anything.example"));
        assert_eq!(resp.rcode(), Rcode::Refused);
        assert_eq!(resp.header.id, 7);
    }

    #[test]
    fn referral_always_points_at_cut() {
        let glue = Record::new(
            name!("ns1.trap.example"),
            3600,
            RData::A(Ipv4Addr::new(10, 200, 0, 9)),
        );
        let s = ByzantineServer::new(ByzantineMode::Referral {
            cut: name!("trap.example"),
            ns: vec![name!("ns1.trap.example")],
            glue: vec![glue],
        });
        let resp = ask(&s, &name!("x.trap.example"));
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.additionals.len(), 1);
    }

    #[test]
    fn wrong_qname_echoes_decoy() {
        let s = ByzantineServer::new(ByzantineMode::WrongQname {
            decoy: name!("decoy.example"),
        });
        let resp = ask(&s, &name!("real.example"));
        assert_eq!(resp.questions[0].name, name!("decoy.example"));
        assert_eq!(resp.header.id, 7);
    }

    #[test]
    fn mismatched_id_shifts_the_id() {
        let s = ByzantineServer::new(ByzantineMode::MismatchedId);
        let resp = ask(&s, &name!("real.example"));
        assert_eq!(resp.header.id, 8);
        assert_eq!(resp.questions[0].name, name!("real.example"));
    }
}
