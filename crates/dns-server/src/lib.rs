//! # dns-server — simulated authoritative nameservers
//!
//! Implements the server side of every DNS exchange in the reproduction:
//!
//! * [`ZoneStore`] — the set of zones one server (pool) is authoritative
//!   for, with longest-suffix zone selection.
//! * [`AuthServer`] — RFC 1034 §4.3.2 answering: answers, referrals,
//!   NODATA, NXDOMAIN, CNAMEs; DNSSEC additions (RRSIGs, NSEC denial) when
//!   the query sets the DO bit; EDNS-aware truncation with TCP fallback.
//! * [`Quirks`] — the operator misbehaviours the paper measures:
//!   pre-RFC 3597 servers erroring on CDS/CDNSKEY queries (§4.2 "Lack of
//!   support for CDS"), transient SERVFAILs and transient bad signatures
//!   (§4.4's deSEC/Cloudflare scan artefacts), per-backend failure in
//!   anycast pools.
//! * [`ParkingServer`] — an Afternic/namefind-style parking responder that
//!   answers *every* query identically, creating "the illusion of a zone
//!   cut at every level of the DNS tree" (§4.4).
//!
//! Servers implement [`netsim::ServerHandler`], so they plug straight into
//! the simulated network.

#![forbid(unsafe_code)]

pub mod byzantine;
pub mod parking;
pub mod quirks;
pub mod server;
pub mod store;

pub use byzantine::{ByzantineMode, ByzantineServer};
pub use parking::ParkingServer;
pub use quirks::Quirks;
pub use server::AuthServer;
pub use store::ZoneStore;
