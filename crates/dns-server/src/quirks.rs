//! Operator misbehaviour configuration.

use netsim::{DeterministicDraw, SimMicros};

/// Deliberate deviations from correct server behaviour, mirroring what the
/// paper observes in the wild.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quirks {
    /// Pre-RFC 3597 behaviour: queries for types the server does not know
    /// (for us: CDS, CDNSKEY, and anything ≥ the DNSSEC range) are answered
    /// with an error instead of NODATA. Paper §4.2: 7.6 M domains' NSes
    /// "failed to respond, or returned an error response, when queried
    /// about these RRs".
    pub pre_rfc3597: bool,
    /// Probability that a query transiently fails with SERVFAIL (§4.4:
    /// "transient failures by deSec to respond correctly during the
    /// scan").
    pub transient_servfail: f64,
    /// Probability that a response's RRSIGs are transiently corrupted
    /// (§4.4: "transient errors in which deSec returned invalid
    /// signatures during the scan, but now returns correct DNSSEC
    /// signatures").
    pub transient_badsig: f64,
    /// Seed mixed into the transient-failure draws, so different servers
    /// with the same probabilities fail on different queries.
    pub seed: u64,
    /// Scheduled outage: the server drops every query whose virtual
    /// arrival time falls in `[start, end)` (maintenance windows, the
    /// paper's "failed to respond during the scan" cases).
    pub outage: Option<(SimMicros, SimMicros)>,
    /// Flapping outage: the server drops queries during the first
    /// `(duty)` µs of every `(period)` µs of virtual time.
    pub flap: Option<(SimMicros, SimMicros)>,
}

impl Quirks {
    /// Fully standards-compliant server.
    pub const CLEAN: Quirks = Quirks {
        pre_rfc3597: false,
        transient_servfail: 0.0,
        transient_badsig: 0.0,
        seed: 0,
        outage: None,
        flap: None,
    };

    /// Whether a query arriving at virtual time `now` hits a scheduled or
    /// flapping outage.
    pub fn outage_active(&self, now: SimMicros) -> bool {
        if let Some((start, end)) = self.outage {
            if now >= start && now < end {
                return true;
            }
        }
        if let Some((period, duty)) = self.flap {
            if period > 0 && now % period < duty {
                return true;
            }
        }
        false
    }

    /// Whether this specific (query, backend) exchange should SERVFAIL.
    pub fn draw_servfail(&self, query: &[u8], backend: u32) -> bool {
        if self.transient_servfail <= 0.0 {
            return false;
        }
        DeterministicDraw::new(self.seed ^ 0x5e4f_a11e, &[query, &backend.to_be_bytes()]).unit()
            < self.transient_servfail
    }

    /// Whether this specific (query, backend) exchange should corrupt its
    /// signatures.
    pub fn draw_badsig(&self, query: &[u8], backend: u32) -> bool {
        if self.transient_badsig <= 0.0 {
            return false;
        }
        DeterministicDraw::new(self.seed ^ 0x00ba_d516, &[query, &backend.to_be_bytes()]).unit()
            < self.transient_badsig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_never_fails() {
        let q = Quirks::CLEAN;
        for i in 0..100u8 {
            assert!(!q.draw_servfail(&[i], 0));
            assert!(!q.draw_badsig(&[i], 0));
        }
    }

    #[test]
    fn transient_rates_approximate_probability() {
        let q = Quirks {
            transient_servfail: 0.3,
            seed: 9,
            ..Quirks::CLEAN
        };
        let fails = (0..1000u16)
            .filter(|i| q.draw_servfail(&i.to_be_bytes(), 0))
            .count();
        assert!((200..400).contains(&fails), "{fails}");
    }

    #[test]
    fn draws_are_deterministic_and_backend_sensitive() {
        let q = Quirks {
            transient_badsig: 0.5,
            seed: 3,
            ..Quirks::CLEAN
        };
        let a = q.draw_badsig(b"query", 0);
        assert_eq!(a, q.draw_badsig(b"query", 0));
        // Across many queries, backends must disagree somewhere.
        let disagree = (0..100u8).any(|i| q.draw_badsig(&[i], 0) != q.draw_badsig(&[i], 1));
        assert!(disagree);
    }

    #[test]
    fn outage_windows_cover_exactly_their_interval() {
        let q = Quirks {
            outage: Some((1_000, 2_000)),
            ..Quirks::CLEAN
        };
        assert!(!q.outage_active(999));
        assert!(q.outage_active(1_000));
        assert!(q.outage_active(1_999));
        assert!(!q.outage_active(2_000));
        assert!(!Quirks::CLEAN.outage_active(1_500));
    }

    #[test]
    fn flapping_outage_repeats_each_period() {
        let q = Quirks {
            flap: Some((10_000, 3_000)),
            ..Quirks::CLEAN
        };
        for base in [0u64, 10_000, 250_000] {
            assert!(q.outage_active(base));
            assert!(q.outage_active(base + 2_999));
            assert!(!q.outage_active(base + 3_000));
            assert!(!q.outage_active(base + 9_999));
        }
        // Degenerate period never activates.
        let z = Quirks {
            flap: Some((0, 3_000)),
            ..Quirks::CLEAN
        };
        assert!(!z.outage_active(0));
    }

    #[test]
    fn servfail_and_badsig_draws_independent() {
        let q = Quirks {
            transient_servfail: 0.5,
            transient_badsig: 0.5,
            seed: 3,
            ..Quirks::CLEAN
        };
        let both_same = (0..200u8).all(|i| q.draw_servfail(&[i], 0) == q.draw_badsig(&[i], 0));
        assert!(!both_same);
    }
}
