//! Zone storage with longest-suffix selection.

use dns_wire::name::Name;
use dns_zone::Zone;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The zones a server is authoritative for.
///
/// Real operator servers host thousands to millions of zones; lookups pick
/// the zone whose apex is the longest suffix of the query name (RFC 1034
/// §4.3.2 step 2).
#[derive(Default)]
pub struct ZoneStore {
    zones: RwLock<HashMap<Name, Arc<Zone>>>,
}

impl ZoneStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a zone.
    pub fn insert(&self, zone: Zone) {
        self.zones
            .write()
            .insert(zone.apex().clone(), Arc::new(zone));
    }

    /// Insert a pre-shared zone.
    pub fn insert_shared(&self, zone: Arc<Zone>) {
        self.zones.write().insert(zone.apex().clone(), zone);
    }

    /// Remove a zone by apex.
    pub fn remove(&self, apex: &Name) -> Option<Arc<Zone>> {
        self.zones.write().remove(apex)
    }

    /// The zone with exactly this apex.
    pub fn get(&self, apex: &Name) -> Option<Arc<Zone>> {
        self.zones.read().get(apex).cloned()
    }

    /// The best (longest-apex) zone containing `qname`, if any.
    pub fn find(&self, qname: &Name) -> Option<Arc<Zone>> {
        let zones = self.zones.read();
        let mut cur = Some(qname.clone());
        while let Some(name) = cur {
            if let Some(z) = zones.get(&name) {
                return Some(Arc::clone(z));
            }
            cur = name.parent();
        }
        None
    }

    /// Number of zones held.
    pub fn len(&self) -> usize {
        self.zones.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.zones.read().len() == 0
    }

    /// Apexes of all zones (unordered).
    pub fn apexes(&self) -> Vec<Name> {
        self.zones.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    #[test]
    fn longest_suffix_wins() {
        let store = ZoneStore::new();
        store.insert(Zone::new(name!("ch")));
        store.insert(Zone::new(name!("example.ch")));
        let z = store.find(&name!("www.example.ch")).unwrap();
        assert_eq!(z.apex(), &name!("example.ch"));
        let z = store.find(&name!("other.ch")).unwrap();
        assert_eq!(z.apex(), &name!("ch"));
        assert!(store.find(&name!("example.org")).is_none());
    }

    #[test]
    fn exact_apex_match() {
        let store = ZoneStore::new();
        store.insert(Zone::new(name!("example.ch")));
        assert!(store.find(&name!("example.ch")).is_some());
        assert!(store.get(&name!("example.ch")).is_some());
        assert!(store.get(&name!("www.example.ch")).is_none());
    }

    #[test]
    fn insert_replace_remove() {
        let store = ZoneStore::new();
        store.insert(Zone::new(name!("a.test")));
        assert_eq!(store.len(), 1);
        store.insert(Zone::new(name!("a.test"))); // replace
        assert_eq!(store.len(), 1);
        assert!(store.remove(&name!("a.test")).is_some());
        assert!(store.is_empty());
        assert!(store.remove(&name!("a.test")).is_none());
    }

    #[test]
    fn root_zone_catches_everything() {
        let store = ZoneStore::new();
        store.insert(Zone::new(Name::root()));
        assert!(store.find(&name!("anything.at.all")).is_some());
    }
}
