//! # dns-zone — zone model, DNSSEC signing, and RFC 9615 signal zones
//!
//! This crate turns the raw record types of `dns-wire` into *zones*:
//!
//! * [`Zone`] — an authoritative zone: apex, RRsets indexed in canonical
//!   order, delegation (zone-cut) awareness, occluded-name handling.
//! * [`ZoneKeys`] / [`ZoneSigner`] — KSK/ZSK generation, RRSIG production
//!   over canonical RRsets, NSEC (and NSEC3) chains, DNSKEY publication,
//!   and the DS/CDS/CDNSKEY records derived from the key set. Corruption
//!   modes plant the misconfigurations the paper measures (expired or
//!   invalid signatures, CDS not matching any DNSKEY).
//! * [`rollover`] — the RFC 7344 §4 CDS-driven KSK rollover choreography
//!   (introduce → registry DS swap → retire).
//! * [`signal`] — RFC 9615 Authenticated Bootstrapping signal names and
//!   signal-record construction
//!   (`_dsboot.<child>._signal.<ns>`, paper Listing 1).

#![forbid(unsafe_code)]

pub mod keys;
pub mod rollover;
pub mod signal;
pub mod signer;
pub mod zone;

pub use keys::{csync_record, CdsPublication, ZoneKeys};
pub use signal::{signal_name, signal_zone_apex, SignalError};
pub use signer::{Corruption, ZoneSigner};
pub use zone::{Zone, ZoneLookup};
