//! Zone key sets and the records derived from them: DNSKEY, DS, CDS and
//! CDNSKEY.

use dns_crypto::{ds_digest, Algorithm, DigestType, KeyPair};
use dns_wire::name::Name;
use dns_wire::rdata::{CsyncData, DnskeyData, DsData, RData};
use dns_wire::record::{Record, RecordType};
use dns_wire::typebitmap::TypeBitmap;
use rand::RngCore;

/// Build the RFC 7477 CSYNC record a child publishes to ask its parent to
/// copy the NS (and glue) RRsets — the other child→parent synchronisation
/// channel the paper's conclusion points to as future work.
pub fn csync_record(apex: &Name, ttl: u32, serial: u32, immediate: bool) -> Record {
    Record::new(
        apex.clone(),
        ttl,
        RData::Csync(CsyncData {
            serial,
            flags: if immediate {
                CsyncData::FLAG_IMMEDIATE
            } else {
                CsyncData::FLAG_SOAMINIMUM
            },
            types: TypeBitmap::from_types([RecordType::Ns, RecordType::A, RecordType::Aaaa]),
        }),
    )
}

/// How a zone publishes its CDS/CDNSKEY RRsets.
///
/// RFC 7344 says publishers of one SHOULD publish both; the paper observes
/// real operators differ (deSEC publishes CDS at SHA-256 *and* SHA-384 plus
/// CDNSKEY; others publish only CDS), so the policy is explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdsPublication {
    /// Publish CDS records with these digest types.
    pub cds_digests: &'static [DigestType],
    /// Publish a CDNSKEY record.
    pub cdnskey: bool,
}

impl CdsPublication {
    /// The common setup: CDS (SHA-256) + CDNSKEY.
    pub const STANDARD: CdsPublication = CdsPublication {
        cds_digests: &[DigestType::Sha256],
        cdnskey: true,
    };

    /// deSEC-style: CDS at SHA-256 and SHA-384, plus CDNSKEY (three signal
    /// RRs per NS, as the paper's §4.4 size estimate counts).
    pub const DESEC: CdsPublication = CdsPublication {
        cds_digests: &[DigestType::Sha256, DigestType::Sha384],
        cdnskey: true,
    };

    /// CDS only, SHA-256.
    pub const CDS_ONLY: CdsPublication = CdsPublication {
        cds_digests: &[DigestType::Sha256],
        cdnskey: false,
    };
}

/// The signing keys of one zone: a KSK (SEP) and a ZSK.
#[derive(Debug, Clone)]
pub struct ZoneKeys {
    pub ksk: KeyPair,
    pub zsk: KeyPair,
}

impl ZoneKeys {
    /// Generate a fresh KSK/ZSK pair with `algorithm`.
    pub fn generate<R: RngCore>(rng: &mut R, algorithm: Algorithm) -> Self {
        ZoneKeys {
            ksk: KeyPair::generate(rng, algorithm, 257),
            zsk: KeyPair::generate(rng, algorithm, 256),
        }
    }

    /// The DNSKEY records to publish at `apex`.
    pub fn dnskey_records(&self, apex: &Name, ttl: u32) -> Vec<Record> {
        [&self.ksk, &self.zsk]
            .iter()
            .map(|k| {
                Record::new(
                    apex.clone(),
                    ttl,
                    RData::Dnskey(DnskeyData {
                        flags: k.flags,
                        protocol: 3,
                        algorithm: k.algorithm.code(),
                        public_key: k.public_key().to_vec(),
                    }),
                )
            })
            .collect()
    }

    /// DS data for the KSK at `apex` with `digest_type`.
    pub fn ds_data(&self, apex: &Name, digest_type: DigestType) -> DsData {
        let digest = ds_digest(digest_type, &apex.to_wire(), &self.ksk.dnskey_rdata())
            .expect("supported digest type");
        DsData {
            key_tag: self.ksk.key_tag(),
            algorithm: self.ksk.algorithm.code(),
            digest_type: digest_type.code(),
            digest,
        }
    }

    /// The DS record(s) the *parent* should hold for this zone.
    pub fn ds_records(&self, apex: &Name, ttl: u32, digest_type: DigestType) -> Vec<Record> {
        vec![Record::new(
            apex.clone(),
            ttl,
            RData::Ds(self.ds_data(apex, digest_type)),
        )]
    }

    /// The CDS/CDNSKEY records to publish at `apex` per `policy`.
    pub fn cds_records(&self, apex: &Name, ttl: u32, policy: CdsPublication) -> Vec<Record> {
        let mut out = Vec::new();
        for &dt in policy.cds_digests {
            out.push(Record::new(
                apex.clone(),
                ttl,
                RData::Cds(self.ds_data(apex, dt)),
            ));
        }
        if policy.cdnskey {
            out.push(Record::new(
                apex.clone(),
                ttl,
                RData::Cdnskey(DnskeyData {
                    flags: self.ksk.flags,
                    protocol: 3,
                    algorithm: self.ksk.algorithm.code(),
                    public_key: self.ksk.public_key().to_vec(),
                }),
            ));
        }
        out
    }

    /// RFC 8078 deletion-request records (CDS `0 0 0 00` / CDNSKEY
    /// `0 3 0 0`).
    pub fn delete_records(apex: &Name, ttl: u32, policy: CdsPublication) -> Vec<Record> {
        let mut out = vec![Record::new(
            apex.clone(),
            ttl,
            RData::Cds(DsData::delete_sentinel()),
        )];
        if policy.cdnskey {
            out.push(Record::new(
                apex.clone(),
                ttl,
                RData::Cdnskey(DnskeyData::delete_sentinel()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> ZoneKeys {
        let mut rng = StdRng::seed_from_u64(42);
        ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256)
    }

    #[test]
    fn ksk_zsk_flags() {
        let k = keys();
        assert!(k.ksk.is_ksk());
        assert!(!k.zsk.is_ksk());
        assert_eq!(k.ksk.flags, 257);
        assert_eq!(k.zsk.flags, 256);
    }

    #[test]
    fn dnskey_records_publish_both_keys() {
        let k = keys();
        let recs = k.dnskey_records(&name!("example.ch"), 3600);
        assert_eq!(recs.len(), 2);
        let flags: Vec<u16> = recs
            .iter()
            .map(|r| match &r.rdata {
                RData::Dnskey(d) => d.flags,
                _ => panic!(),
            })
            .collect();
        assert!(flags.contains(&257) && flags.contains(&256));
    }

    #[test]
    fn ds_matches_ksk() {
        let k = keys();
        let apex = name!("example.ch");
        let ds = k.ds_data(&apex, DigestType::Sha256);
        assert_eq!(ds.key_tag, k.ksk.key_tag());
        assert_eq!(ds.algorithm, 13);
        assert_eq!(ds.digest_type, 2);
        // Digest recomputes identically.
        let expect = ds_digest(DigestType::Sha256, &apex.to_wire(), &k.ksk.dnskey_rdata()).unwrap();
        assert_eq!(ds.digest, expect);
    }

    #[test]
    fn ds_differs_per_owner() {
        let k = keys();
        let a = k.ds_data(&name!("a.ch"), DigestType::Sha256);
        let b = k.ds_data(&name!("b.ch"), DigestType::Sha256);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn standard_cds_policy() {
        let k = keys();
        let recs = k.cds_records(&name!("example.ch"), 300, CdsPublication::STANDARD);
        assert_eq!(recs.len(), 2); // CDS sha256 + CDNSKEY
        assert!(matches!(recs[0].rdata, RData::Cds(_)));
        assert!(matches!(recs[1].rdata, RData::Cdnskey(_)));
    }

    #[test]
    fn desec_cds_policy_has_three_records() {
        // The paper: "times three, one each for the CDS SHA-256 and
        // SHA-384 RRs and one CDNSKEY RR."
        let k = keys();
        let recs = k.cds_records(&name!("example.ch"), 300, CdsPublication::DESEC);
        assert_eq!(recs.len(), 3);
        let digest_types: Vec<u8> = recs
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Cds(d) => Some(d.digest_type),
                _ => None,
            })
            .collect();
        assert_eq!(digest_types, vec![2, 4]);
    }

    #[test]
    fn cds_only_policy() {
        let k = keys();
        let recs = k.cds_records(&name!("example.ch"), 300, CdsPublication::CDS_ONLY);
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].rdata, RData::Cds(_)));
    }

    #[test]
    fn delete_records_are_sentinels() {
        let recs = ZoneKeys::delete_records(&name!("x.ch"), 300, CdsPublication::STANDARD);
        assert_eq!(recs.len(), 2);
        match &recs[0].rdata {
            RData::Cds(d) => assert!(d.is_delete()),
            _ => panic!(),
        }
        match &recs[1].rdata {
            RData::Cdnskey(d) => assert!(d.is_delete()),
            _ => panic!(),
        }
    }

    #[test]
    fn csync_record_shape() {
        let r = csync_record(&name!("x.ch"), 300, 42, true);
        match &r.rdata {
            RData::Csync(c) => {
                assert_eq!(c.serial, 42);
                assert!(c.immediate());
                assert!(c.types.contains(RecordType::Ns));
                assert!(c.types.contains(RecordType::A));
            }
            _ => panic!(),
        }
        let r = csync_record(&name!("x.ch"), 300, 7, false);
        match &r.rdata {
            RData::Csync(c) => assert!(c.soa_minimum() && !c.immediate()),
            _ => panic!(),
        }
    }

    #[test]
    fn cdnskey_matches_ksk_public_key() {
        let k = keys();
        let recs = k.cds_records(&name!("example.ch"), 300, CdsPublication::STANDARD);
        match &recs[1].rdata {
            RData::Cdnskey(d) => {
                assert_eq!(d.public_key, k.ksk.public_key());
                assert_eq!(d.flags, 257);
            }
            _ => panic!(),
        }
    }
}
