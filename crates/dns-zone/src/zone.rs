//! The authoritative zone model.

use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::{Record, RecordClass, RecordType, RrSet};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Wrapper giving [`Name`] the RFC 4034 §6.1 canonical ordering, so the
/// zone's node map iterates in NSEC-chain order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalName(pub Name);

impl PartialOrd for CanonicalName {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CanonicalName {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.canonical_cmp(&other.0)
    }
}

/// One node: the RRsets present at a single owner name.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// RRsets keyed by type code.
    pub rrsets: BTreeMap<u16, RrSet>,
}

impl Node {
    /// The RRset of `rtype`, if present.
    pub fn rrset(&self, rtype: RecordType) -> Option<&RrSet> {
        self.rrsets.get(&rtype.code())
    }

    /// Types present at this node.
    pub fn types(&self) -> impl Iterator<Item = RecordType> + '_ {
        self.rrsets.keys().map(|&c| RecordType::from_code(c))
    }
}

/// An authoritative zone: an apex name plus all in-zone records.
#[derive(Debug, Clone)]
pub struct Zone {
    apex: Name,
    nodes: BTreeMap<CanonicalName, Node>,
}

/// The result of looking a (name, type) pair up inside a zone, mirroring
/// RFC 1034 §4.3.2's algorithm outcomes. The server layer translates these
/// into complete responses.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneLookup {
    /// The RRset exists; answer with it.
    Answer(RrSet),
    /// The name exists at a CNAME; chase or return it.
    Cname(RrSet),
    /// The name exists but has no RRset of this type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The lookup crossed a zone cut: refer to the child zone.
    Delegation {
        /// Owner of the delegation point.
        cut: Name,
        /// The NS RRset at the cut.
        ns: RrSet,
        /// DS RRset at the cut, if the delegation is signed.
        ds: Option<RrSet>,
        /// Glue address records for in-bailiwick NS targets.
        glue: Vec<Record>,
    },
    /// The name is outside this zone entirely.
    OutOfZone,
}

impl Zone {
    /// An empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex,
            nodes: BTreeMap::new(),
        }
    }

    /// The zone's apex (origin) name.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Add one record. Records outside the apex are rejected with `false`.
    pub fn add(&mut self, record: Record) -> bool {
        if !record.name.is_subdomain_of(&self.apex) {
            return false;
        }
        let node = self
            .nodes
            .entry(CanonicalName(record.name.clone()))
            .or_default();
        let set = node
            .rrsets
            .entry(record.rtype().code())
            .or_insert_with(|| RrSet {
                name: record.name.clone(),
                class: record.class,
                rtype: record.rtype(),
                ttl: record.ttl,
                rdatas: Vec::new(),
            });
        set.ttl = set.ttl.min(record.ttl);
        if !set.rdatas.contains(&record.rdata) {
            set.rdatas.push(record.rdata);
        }
        true
    }

    /// Add many records; returns how many were in-zone and added.
    pub fn add_all<I: IntoIterator<Item = Record>>(&mut self, records: I) -> usize {
        records.into_iter().filter(|r| self.add(r.clone())).count()
    }

    /// Remove an entire RRset; returns it if present.
    pub fn remove_rrset(&mut self, name: &Name, rtype: RecordType) -> Option<RrSet> {
        let key = CanonicalName(name.clone());
        let node = self.nodes.get_mut(&key)?;
        let set = node.rrsets.remove(&rtype.code());
        if node.rrsets.is_empty() {
            self.nodes.remove(&key);
        }
        set
    }

    /// Exact-match RRset lookup (no delegation logic).
    pub fn rrset(&self, name: &Name, rtype: RecordType) -> Option<&RrSet> {
        self.nodes
            .get(&CanonicalName(name.clone()))
            .and_then(|n| n.rrsets.get(&rtype.code()))
    }

    /// Whether any RRset exists at `name`.
    pub fn node_exists(&self, name: &Name) -> bool {
        self.nodes.contains_key(&CanonicalName(name.clone()))
    }

    /// Owner names in canonical order.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.nodes.keys().map(|k| &k.0)
    }

    /// All nodes in canonical order.
    pub fn nodes(&self) -> impl Iterator<Item = (&Name, &Node)> {
        self.nodes.iter().map(|(k, n)| (&k.0, n))
    }

    /// All records, flattened, canonical owner order.
    pub fn records(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for node in self.nodes.values() {
            for set in node.rrsets.values() {
                out.extend(set.records());
            }
        }
        out
    }

    /// Total record count.
    pub fn record_count(&self) -> usize {
        self.nodes
            .values()
            .flat_map(|n| n.rrsets.values())
            .map(|s| s.rdatas.len())
            .sum()
    }

    /// The nearest delegation point strictly *above* `name` (and at or
    /// below the apex, exclusive): the zone cut that occludes `name`, if
    /// any. A NS RRset at a non-apex node is a cut; `name` itself being a
    /// cut counts only for types other than DS lookups (handled by caller).
    pub fn covering_cut(&self, name: &Name) -> Option<Name> {
        let mut cur = name.clone();
        // Walk ancestors of `name` from just below the apex downward is
        // equivalent to walking up and keeping the highest cut; a single
        // upward walk stopping at the first cut from the top is what RFC
        // 1034's label-by-label descent does. We walk downward from apex.
        let mut ancestors = Vec::new();
        while cur != self.apex {
            ancestors.push(cur.clone());
            cur = cur.parent()?;
            if !cur.is_subdomain_of(&self.apex) {
                return None;
            }
        }
        // ancestors: name ... (child of apex); reverse to descend.
        for anc in ancestors.iter().rev() {
            if anc == name {
                break; // cuts *at* the name are not occlusions of it here
            }
            if self
                .nodes
                .get(&CanonicalName(anc.clone()))
                .map(|n| n.rrsets.contains_key(&RecordType::Ns.code()))
                .unwrap_or(false)
            {
                return Some(anc.clone());
            }
        }
        None
    }

    /// Whether `name` is a delegation point (non-apex node with NS).
    pub fn is_delegation(&self, name: &Name) -> bool {
        name != &self.apex
            && self
                .nodes
                .get(&CanonicalName(name.clone()))
                .map(|n| n.rrsets.contains_key(&RecordType::Ns.code()))
                .unwrap_or(false)
    }

    /// Whether `name` is authoritative data of this zone: inside the zone
    /// and not strictly below a delegation point.
    pub fn is_authoritative(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.apex) && self.covering_cut(name).is_none()
    }

    /// Full RFC 1034 §4.3.2-style lookup.
    ///
    /// `qtype` = DS is special: the DS RRset lives at the *parent* side of
    /// a cut, so a DS query for a delegation point is answered, not
    /// referred.
    pub fn lookup(&self, name: &Name, qtype: RecordType) -> ZoneLookup {
        if !name.is_subdomain_of(&self.apex) {
            return ZoneLookup::OutOfZone;
        }
        // Check for an occluding cut above the name.
        if let Some(cut) = self.covering_cut(name) {
            return self.referral(cut);
        }
        // A query *at* a delegation point: DS (and the NS set itself in
        // referral form) belongs to the parent; everything else referred.
        if self.is_delegation(name) && qtype != RecordType::Ds {
            return self.referral(name.clone());
        }
        match self.nodes.get(&CanonicalName(name.clone())) {
            None => ZoneLookup::NxDomain,
            Some(node) => {
                if let Some(set) = node.rrset(qtype) {
                    ZoneLookup::Answer(set.clone())
                } else if let Some(cname) = node.rrset(RecordType::Cname) {
                    ZoneLookup::Cname(cname.clone())
                } else {
                    ZoneLookup::NoData
                }
            }
        }
    }

    fn referral(&self, cut: Name) -> ZoneLookup {
        let node = &self.nodes[&CanonicalName(cut.clone())];
        let ns = node.rrset(RecordType::Ns).expect("cut has NS").clone();
        let ds = node.rrset(RecordType::Ds).cloned();
        // Collect glue for NS targets inside this zone.
        let mut glue = Vec::new();
        for rd in &ns.rdatas {
            if let RData::Ns(target) = rd {
                if target.is_subdomain_of(&self.apex) {
                    if let Some(n) = self.nodes.get(&CanonicalName(target.clone())) {
                        for t in [RecordType::A, RecordType::Aaaa] {
                            if let Some(set) = n.rrset(t) {
                                glue.extend(set.records());
                            }
                        }
                    }
                }
            }
        }
        ZoneLookup::Delegation { cut, ns, ds, glue }
    }

    /// The NSEC "previous name" for denial: the last authoritative owner
    /// canonically ≤ `name`, wrapping to the zone's last name when `name`
    /// sorts before the apex. Used by the server layer to pick the
    /// covering NSEC record.
    pub fn nsec_predecessor(&self, name: &Name) -> Option<&Name> {
        let key = CanonicalName(name.clone());
        self.nodes
            .range(..=key)
            .next_back()
            .map(|(k, _)| &k.0)
            .or_else(|| self.nodes.keys().next_back().map(|k| &k.0))
    }

    /// Render the zone as master-file text.
    pub fn to_zone_file(&self) -> String {
        dns_wire::presentation::to_zone_file(&self.apex, &self.records())
    }

    /// Parse a zone from master-file text rooted at `apex`.
    pub fn from_zone_file(
        apex: Name,
        text: &str,
    ) -> Result<Zone, dns_wire::presentation::ParseError> {
        let records = dns_wire::presentation::parse_zone_file(text, &apex)?;
        let mut z = Zone::new(apex);
        z.add_all(records);
        Ok(z)
    }

    /// Class of the zone's records (IN for everything we build).
    pub fn class(&self) -> RecordClass {
        RecordClass::In
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;
    use dns_wire::rdata::SoaData;
    use std::net::Ipv4Addr;

    fn soa(apex: &Name) -> Record {
        Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.example.ch"),
                rname: name!("hostmaster.example.ch"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        )
    }

    fn test_zone() -> Zone {
        let apex = name!("example.ch");
        let mut z = Zone::new(apex.clone());
        z.add(soa(&apex));
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Ns(name!("ns1.example.ch")),
        ));
        z.add(Record::new(
            name!("ns1.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        z.add(Record::new(
            name!("www.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        // Delegation: sub.example.ch → ns1.sub.example.ch (with glue).
        z.add(Record::new(
            name!("sub.example.ch"),
            300,
            RData::Ns(name!("ns1.sub.example.ch")),
        ));
        z.add(Record::new(
            name!("ns1.sub.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 54)),
        ));
        z
    }

    #[test]
    fn exact_answer() {
        let z = test_zone();
        match z.lookup(&name!("www.example.ch"), RecordType::A) {
            ZoneLookup::Answer(set) => assert_eq!(set.rdatas.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nodata_at_existing_name() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&name!("www.example.ch"), RecordType::Mx),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&name!("missing.example.ch"), RecordType::A),
            ZoneLookup::NxDomain
        );
    }

    #[test]
    fn out_of_zone() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&name!("example.org"), RecordType::A),
            ZoneLookup::OutOfZone
        );
    }

    #[test]
    fn referral_below_cut_with_glue() {
        let z = test_zone();
        match z.lookup(&name!("deep.sub.example.ch"), RecordType::A) {
            ZoneLookup::Delegation { cut, ns, glue, .. } => {
                assert_eq!(cut, name!("sub.example.ch"));
                assert_eq!(ns.rdatas.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].name, name!("ns1.sub.example.ch"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn referral_at_cut_for_non_ds() {
        let z = test_zone();
        assert!(matches!(
            z.lookup(&name!("sub.example.ch"), RecordType::A),
            ZoneLookup::Delegation { .. }
        ));
        assert!(matches!(
            z.lookup(&name!("sub.example.ch"), RecordType::Ns),
            ZoneLookup::Delegation { .. }
        ));
    }

    #[test]
    fn ds_at_cut_answered_from_parent() {
        let mut z = test_zone();
        // Unsigned delegation: DS query → NoData (proving insecurity).
        assert_eq!(
            z.lookup(&name!("sub.example.ch"), RecordType::Ds),
            ZoneLookup::NoData
        );
        z.add(Record::new(
            name!("sub.example.ch"),
            300,
            RData::Ds(dns_wire::rdata::DsData {
                key_tag: 1,
                algorithm: 13,
                digest_type: 2,
                digest: vec![0xaa; 32],
            }),
        ));
        assert!(matches!(
            z.lookup(&name!("sub.example.ch"), RecordType::Ds),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn apex_ns_is_not_a_delegation() {
        let z = test_zone();
        assert!(!z.is_delegation(&name!("example.ch")));
        assert!(z.is_delegation(&name!("sub.example.ch")));
        assert!(matches!(
            z.lookup(&name!("example.ch"), RecordType::Ns),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn authoritative_excludes_below_cut() {
        let z = test_zone();
        assert!(z.is_authoritative(&name!("www.example.ch")));
        assert!(z.is_authoritative(&name!("sub.example.ch"))); // the cut itself
        assert!(!z.is_authoritative(&name!("ns1.sub.example.ch"))); // glue
        assert!(!z.is_authoritative(&name!("example.org")));
    }

    #[test]
    fn cname_lookup() {
        let mut z = test_zone();
        z.add(Record::new(
            name!("alias.example.ch"),
            300,
            RData::Cname(name!("www.example.ch")),
        ));
        assert!(matches!(
            z.lookup(&name!("alias.example.ch"), RecordType::A),
            ZoneLookup::Cname(_)
        ));
        // Query for the CNAME type itself answers it.
        assert!(matches!(
            z.lookup(&name!("alias.example.ch"), RecordType::Cname),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn out_of_zone_records_rejected() {
        let mut z = test_zone();
        assert!(!z.add(Record::new(
            name!("other.org"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        )));
    }

    #[test]
    fn names_iterate_in_canonical_order() {
        let z = test_zone();
        let names: Vec<String> = z.names().map(|n| n.to_string()).collect();
        let mut sorted = names.clone();
        // Canonical order via canonical_cmp.
        let mut named: Vec<Name> = z.names().cloned().collect();
        named.sort_by(|a, b| a.canonical_cmp(b));
        let expect: Vec<String> = named.iter().map(|n| n.to_string()).collect();
        sorted.clone_from(&expect);
        assert_eq!(names, sorted);
        // Apex sorts first.
        assert_eq!(names[0], "example.ch.");
    }

    #[test]
    fn nsec_predecessor_wraps() {
        let z = test_zone();
        // A name canonically before the apex ("example.ca" < "example.ch")
        // wraps to the last zone name.
        let prev = z.nsec_predecessor(&name!("example.ca")).unwrap();
        let mut named: Vec<Name> = z.names().cloned().collect();
        named.sort_by(|a, b| a.canonical_cmp(b));
        assert_eq!(prev, named.last().unwrap());
        // A mid-zone miss gets its canonical predecessor: everything under
        // sub.example.ch sorts before t.example.ch, so the glue node
        // ns1.sub.example.ch is the closest preceding name.
        let prev = z.nsec_predecessor(&name!("t.example.ch")).unwrap();
        assert_eq!(prev, &name!("ns1.sub.example.ch"));
    }

    #[test]
    fn zone_file_roundtrip() {
        let z = test_zone();
        let text = z.to_zone_file();
        let back = Zone::from_zone_file(z.apex().clone(), &text).unwrap();
        assert_eq!(back.record_count(), z.record_count());
        assert_eq!(
            back.rrset(&name!("www.example.ch"), RecordType::A),
            z.rrset(&name!("www.example.ch"), RecordType::A)
        );
    }

    #[test]
    fn remove_rrset() {
        let mut z = test_zone();
        assert!(z
            .remove_rrset(&name!("www.example.ch"), RecordType::A)
            .is_some());
        assert!(!z.node_exists(&name!("www.example.ch")));
        assert!(z
            .remove_rrset(&name!("www.example.ch"), RecordType::A)
            .is_none());
    }

    #[test]
    fn min_ttl_kept_on_merge() {
        let mut z = Zone::new(name!("t"));
        z.add(Record::new(
            name!("a.t"),
            900,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        z.add(Record::new(
            name!("a.t"),
            300,
            RData::A(Ipv4Addr::new(1, 2, 3, 5)),
        ));
        assert_eq!(z.rrset(&name!("a.t"), RecordType::A).unwrap().ttl, 300);
    }
}
