//! RFC 9615 Authenticated Bootstrapping signal names.
//!
//! For a child zone `example.co.uk` served by nameserver
//! `ns1.example.net`, the signaling records live at
//!
//! ```text
//! _dsboot.example.co.uk._signal.ns1.example.net
//! ```
//!
//! (paper Listing 1). The records there are copies of the child's CDS and
//! CDNSKEY RRsets, and must be served — with valid DNSSEC — by the
//! nameservers authoritative for the signaling zone.

use dns_wire::name::{Name, NameError};
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use std::fmt;

/// Why a signal name cannot be formed (paper §2, "DS Bootstrapping
/// Limitations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalError {
    /// `_dsboot.<child>._signal.<ns>` exceeds 255 octets.
    NameTooLong,
    /// The nameserver is in-domain (inside the child zone), so no extant
    /// DNSSEC chain can authenticate the signal.
    InDomainNameServer,
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::NameTooLong => write!(f, "signal name exceeds 255 octets"),
            SignalError::InDomainNameServer => {
                write!(f, "in-domain nameserver cannot carry a signal")
            }
        }
    }
}

impl std::error::Error for SignalError {}

/// The `_signal.<ns>` name under which a nameserver's signaling subtree
/// hangs.
pub fn signal_zone_apex(ns: &Name) -> Result<Name, NameError> {
    ns.prepend_label(b"_signal")
}

/// The full signaling name `_dsboot.<child>._signal.<ns>` for bootstrapping
/// `child` via nameserver `ns`.
pub fn signal_name(child: &Name, ns: &Name) -> Result<Name, SignalError> {
    if ns.is_subdomain_of(child) {
        return Err(SignalError::InDomainNameServer);
    }
    let suffix = signal_zone_apex(ns).map_err(|_| SignalError::NameTooLong)?;
    let prefix = child
        .prepend_label(b"_dsboot")
        .map_err(|_| SignalError::NameTooLong)?;
    prefix.concat(&suffix).map_err(|_| SignalError::NameTooLong)
}

/// Re-home the child's CDS/CDNSKEY records to the signaling name for `ns`.
///
/// Non-CDS/CDNSKEY records are skipped — only those two types are signal
/// material per RFC 9615 §2.
pub fn signal_records(
    child: &Name,
    ns: &Name,
    cds_like: &[Record],
) -> Result<Vec<Record>, SignalError> {
    let owner = signal_name(child, ns)?;
    Ok(cds_like
        .iter()
        .filter(|r| matches!(r.rdata, RData::Cds(_) | RData::Cdnskey(_)))
        .map(|r| Record {
            name: owner.clone(),
            class: r.class,
            ttl: r.ttl,
            rdata: r.rdata.clone(),
        })
        .collect())
}

/// Inverse mapping: given a name inside a `_signal` subtree, recover the
/// child zone name it signals for, if the shape matches
/// `_dsboot.<child>._signal.<ns>`.
pub fn child_from_signal_name(signal: &Name) -> Option<Name> {
    let labels: Vec<&[u8]> = signal.labels().collect();
    if labels.first().copied() != Some(&b"_dsboot"[..]) {
        return None;
    }
    let sig_pos = labels.iter().position(|l| *l == b"_signal")?;
    if sig_pos <= 1 {
        return None;
    }
    Name::from_labels(labels[1..sig_pos].iter().copied()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;
    use dns_wire::rdata::DsData;

    #[test]
    fn listing1_shape() {
        // Paper Listing 1: example.co.uk with ns1.example.net.
        let n = signal_name(&name!("example.co.uk"), &name!("ns1.example.net")).unwrap();
        assert_eq!(
            n.to_string_fqdn(),
            "_dsboot.example.co.uk._signal.ns1.example.net."
        );
    }

    #[test]
    fn signal_zone_apex_shape() {
        assert_eq!(
            signal_zone_apex(&name!("ns1.example.org")).unwrap(),
            name!("_signal.ns1.example.org")
        );
    }

    #[test]
    fn in_domain_ns_rejected() {
        // Paper §2: example.com with ns1.example.com cannot be
        // bootstrapped.
        assert_eq!(
            signal_name(&name!("example.com"), &name!("ns1.example.com")),
            Err(SignalError::InDomainNameServer)
        );
    }

    #[test]
    fn overlong_names_rejected() {
        let l = "a".repeat(63);
        let child = Name::parse(&format!("{l}.{l}.example")).unwrap();
        let ns = Name::parse(&format!("{l}.{l}.ns.example")).unwrap();
        assert_eq!(signal_name(&child, &ns), Err(SignalError::NameTooLong));
    }

    #[test]
    fn signal_records_copy_cds_only() {
        let child = name!("example.ch");
        let ns = name!("ns1.op.net");
        let recs = vec![
            Record::new(child.clone(), 300, RData::Cds(DsData::delete_sentinel())),
            Record::new(child.clone(), 300, RData::Ns(name!("ns1.op.net"))),
        ];
        let out = signal_records(&child, &ns, &recs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, name!("_dsboot.example.ch._signal.ns1.op.net"));
        assert!(matches!(out[0].rdata, RData::Cds(_)));
    }

    #[test]
    fn child_recovered_from_signal_name() {
        let n = name!("_dsboot.example.co.uk._signal.ns1.example.net");
        assert_eq!(child_from_signal_name(&n), Some(name!("example.co.uk")));
        assert_eq!(child_from_signal_name(&name!("www.example.com")), None);
        assert_eq!(
            child_from_signal_name(&name!("_dsboot._signal.ns1.example.net")),
            None
        );
    }

    #[test]
    fn roundtrip_child_signal_child() {
        let child = name!("some.zone.example");
        let ns = name!("ns2.operator.org");
        let sig = signal_name(&child, &ns).unwrap();
        assert_eq!(child_from_signal_name(&sig), Some(child));
    }
}
