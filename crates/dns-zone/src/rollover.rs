//! CDS-driven KSK rollover (RFC 7344 §4).
//!
//! The paper's §4.3: zones that are already secured "manage key rollovers
//! with in-zone CDS RRs only". The choreography:
//!
//! 1. **Introduce** (operator): publish the new KSK next to the old one,
//!    sign the DNSKEY RRset with *both* KSKs (so validators chaining from
//!    either DS succeed), and point CDS/CDNSKEY at the new key. The CDS
//!    RRs are signed with the extant keys — this is why plain RFC 7344
//!    cannot *bootstrap*, only roll (paper §2).
//! 2. **Swap** (registry): observe the CDS, verify it against the current
//!    chain, replace the DS RRset.
//! 3. **Retire** (operator): once the new DS has propagated, drop the old
//!    KSK and its signature.

use crate::keys::{CdsPublication, ZoneKeys};
use crate::signer::ZoneSigner;
use crate::zone::Zone;
use dns_crypto::sign::sign_rrset;
use dns_crypto::{KeyPair, UnixTime};
use dns_wire::canonical::canonical_rrset_wire;
use dns_wire::name::Name;
use dns_wire::rdata::{DnskeyData, RData, RrsigData};
use dns_wire::record::{Record, RecordType, RrSet};

/// Remove the RRSIGs at `name` covering `covered`, keeping the rest.
fn drop_sigs_covering(zone: &mut Zone, name: &Name, covered: &[RecordType]) {
    if let Some(set) = zone.remove_rrset(name, RecordType::Rrsig) {
        for rec in set.records() {
            let keep = match &rec.rdata {
                RData::Rrsig(s) => !covered.iter().any(|t| t.code() == s.type_covered),
                _ => true,
            };
            if keep {
                zone.add(rec);
            }
        }
    }
}

/// Sign `set` with `key` and add the RRSIG to the zone.
fn add_sig(zone: &mut Zone, set: &RrSet, key: &KeyPair, apex: &Name, now: UnixTime) {
    let signer = ZoneSigner::new(now);
    let mut rrsig = RrsigData {
        type_covered: set.rtype.code(),
        algorithm: key.algorithm.code(),
        labels: set.name.label_count() as u8,
        original_ttl: set.ttl,
        expiration: signer.window.expiration,
        inception: signer.window.inception,
        key_tag: key.key_tag(),
        signer_name: apex.clone(),
        signature: Vec::new(),
    };
    let mut message = rrsig.signed_prefix();
    message.extend_from_slice(&canonical_rrset_wire(
        &set.name,
        set.class,
        set.ttl,
        &set.rdatas,
    ));
    rrsig.signature = sign_rrset(key, &message);
    zone.add(Record::new(set.name.clone(), set.ttl, RData::Rrsig(rrsig)));
}

/// Phase 1: introduce `new` KSK alongside `old` in a zone previously
/// signed with `old`. Returns the combined key view (`old` ZSK retained).
///
/// After this call:
/// * the apex DNSKEY RRset holds {old KSK, new KSK, ZSK} and carries one
///   RRSIG from *each* KSK,
/// * the CDS/CDNSKEY RRsets advertise the **new** KSK and are re-signed
///   by the ZSK (the extant chain — the registry validates them against
///   the *old* DS).
pub fn introduce_new_ksk(
    zone: &mut Zone,
    old: &ZoneKeys,
    new_ksk: &KeyPair,
    policy: CdsPublication,
    now: UnixTime,
) {
    assert!(new_ksk.is_ksk(), "replacement key must carry the SEP flag");
    let apex = zone.apex().clone();
    // Rebuild the DNSKEY RRset.
    zone.remove_rrset(&apex, RecordType::Dnskey);
    drop_sigs_covering(
        zone,
        &apex,
        &[RecordType::Dnskey, RecordType::Cds, RecordType::Cdnskey],
    );
    let dnskeys: Vec<DnskeyData> = [&old.ksk, new_ksk, &old.zsk]
        .iter()
        .map(|k| DnskeyData {
            flags: k.flags,
            protocol: 3,
            algorithm: k.algorithm.code(),
            public_key: k.public_key().to_vec(),
        })
        .collect();
    for d in &dnskeys {
        zone.add(Record::new(apex.clone(), 3600, RData::Dnskey(d.clone())));
    }
    let dnskey_set = zone
        .rrset(&apex, RecordType::Dnskey)
        .expect("just added")
        .clone();
    add_sig(zone, &dnskey_set, &old.ksk, &apex, now);
    add_sig(zone, &dnskey_set, new_ksk, &apex, now);

    // CDS/CDNSKEY now advertise the new key; signed by the extant ZSK.
    zone.remove_rrset(&apex, RecordType::Cds);
    zone.remove_rrset(&apex, RecordType::Cdnskey);
    let new_keys = ZoneKeys {
        ksk: new_ksk.clone(),
        zsk: old.zsk.clone(),
    };
    for r in new_keys.cds_records(&apex, 300, policy) {
        zone.add(r);
    }
    for t in [RecordType::Cds, RecordType::Cdnskey] {
        if let Some(set) = zone.rrset(&apex, t).cloned() {
            add_sig(zone, &set, &old.zsk, &apex, now);
        }
    }
}

/// Phase 3: retire the old KSK once the new DS is live.
pub fn retire_old_ksk(zone: &mut Zone, old: &ZoneKeys, new_ksk: &KeyPair, now: UnixTime) {
    let apex = zone.apex().clone();
    zone.remove_rrset(&apex, RecordType::Dnskey);
    drop_sigs_covering(zone, &apex, &[RecordType::Dnskey]);
    for k in [new_ksk, &old.zsk] {
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Dnskey(DnskeyData {
                flags: k.flags,
                protocol: 3,
                algorithm: k.algorithm.code(),
                public_key: k.public_key().to_vec(),
            }),
        ));
    }
    let dnskey_set = zone
        .rrset(&apex, RecordType::Dnskey)
        .expect("just added")
        .clone();
    add_sig(zone, &dnskey_set, new_ksk, &apex, now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::verify_rrset_with_keys;
    use dns_crypto::{Algorithm, DigestType};
    use dns_wire::name;
    use dns_wire::rdata::SoaData;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: UnixTime = 1_000_000;

    fn signed_zone() -> (Zone, ZoneKeys) {
        let apex = name!("roll.ch");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.roll.ch"),
                rname: name!("h.roll.ch"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Ns(name!("ns1.op.net")),
        ));
        let mut rng = StdRng::seed_from_u64(1);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        for r in keys.cds_records(&apex, 300, CdsPublication::STANDARD) {
            z.add(r);
        }
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        (z, keys)
    }

    fn dnskeys(zone: &Zone) -> Vec<DnskeyData> {
        zone.rrset(zone.apex(), RecordType::Dnskey)
            .unwrap()
            .rdatas
            .iter()
            .map(|rd| match rd {
                RData::Dnskey(d) => d.clone(),
                _ => unreachable!(),
            })
            .collect()
    }

    fn rrsigs(zone: &Zone, covered: RecordType) -> Vec<RrsigData> {
        zone.rrset(zone.apex(), RecordType::Rrsig)
            .map(|s| {
                s.rdatas
                    .iter()
                    .filter_map(|rd| match rd {
                        RData::Rrsig(sig) if sig.type_covered == covered.code() => {
                            Some(sig.clone())
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn new_ksk(seed: u64) -> KeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyPair::generate(&mut rng, Algorithm::EcdsaP256Sha256, 257)
    }

    #[test]
    fn introduce_publishes_both_ksks_with_double_signature() {
        let (mut z, old) = signed_zone();
        let nk = new_ksk(99);
        introduce_new_ksk(&mut z, &old, &nk, CdsPublication::STANDARD, NOW);
        let keys = dnskeys(&z);
        assert_eq!(keys.len(), 3);
        let sigs = rrsigs(&z, RecordType::Dnskey);
        assert_eq!(sigs.len(), 2, "one RRSIG per KSK");
        // The DNSKEY RRset must verify via the OLD key alone (old DS
        // chain) and via the NEW key alone (future DS chain).
        let set = z.rrset(z.apex(), RecordType::Dnskey).unwrap().clone();
        let old_only: Vec<DnskeyData> = keys
            .iter()
            .filter(|k| k.public_key == old.ksk.public_key() || !k.is_ksk())
            .cloned()
            .collect();
        let new_only: Vec<DnskeyData> = keys
            .iter()
            .filter(|k| k.public_key == nk.public_key() || !k.is_ksk())
            .cloned()
            .collect();
        assert!(verify_rrset_with_keys(&set, &sigs, &old_only, NOW).is_ok());
        assert!(verify_rrset_with_keys(&set, &sigs, &new_only, NOW).is_ok());
    }

    #[test]
    fn cds_points_at_new_key_and_is_signed_by_extant_zsk() {
        let (mut z, old) = signed_zone();
        let nk = new_ksk(99);
        introduce_new_ksk(&mut z, &old, &nk, CdsPublication::STANDARD, NOW);
        let apex = z.apex().clone();
        let cds = z.rrset(&apex, RecordType::Cds).unwrap().clone();
        match &cds.rdatas[0] {
            RData::Cds(d) => {
                assert_eq!(d.key_tag, nk.key_tag(), "CDS advertises the NEW key");
                // And the digest matches the new key's DNSKEY.
                let expect =
                    dns_crypto::ds_digest(DigestType::Sha256, &apex.to_wire(), &nk.dnskey_rdata())
                        .unwrap();
                assert_eq!(d.digest, expect);
            }
            _ => panic!(),
        }
        // Signed by the extant ZSK (part of the current chain).
        let sigs = rrsigs(&z, RecordType::Cds);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].key_tag, old.zsk.key_tag());
        assert!(verify_rrset_with_keys(&cds, &sigs, &dnskeys(&z), NOW).is_ok());
    }

    #[test]
    fn retire_leaves_only_new_ksk() {
        let (mut z, old) = signed_zone();
        let nk = new_ksk(99);
        introduce_new_ksk(&mut z, &old, &nk, CdsPublication::STANDARD, NOW);
        retire_old_ksk(&mut z, &old, &nk, NOW);
        let keys = dnskeys(&z);
        assert_eq!(keys.len(), 2);
        assert!(keys.iter().any(|k| k.public_key == nk.public_key()));
        assert!(!keys.iter().any(|k| k.public_key == old.ksk.public_key()));
        let sigs = rrsigs(&z, RecordType::Dnskey);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].key_tag, nk.key_tag());
        let set = z.rrset(z.apex(), RecordType::Dnskey).unwrap().clone();
        assert!(verify_rrset_with_keys(&set, &sigs, &keys, NOW).is_ok());
    }

    #[test]
    fn non_apex_rrsets_untouched_by_rollover() {
        let (mut z, old) = signed_zone();
        let before = z.rrset(z.apex(), RecordType::Soa).unwrap().clone();
        let soa_sigs_before = rrsigs(&z, RecordType::Soa);
        let nk = new_ksk(7);
        introduce_new_ksk(&mut z, &old, &nk, CdsPublication::STANDARD, NOW);
        assert_eq!(z.rrset(z.apex(), RecordType::Soa).unwrap(), &before);
        assert_eq!(rrsigs(&z, RecordType::Soa), soa_sigs_before);
        // SOA still verifies with the (unchanged) ZSK.
        assert!(verify_rrset_with_keys(&before, &soa_sigs_before, &dnskeys(&z), NOW).is_ok());
    }

    #[test]
    #[should_panic(expected = "SEP")]
    fn zsk_cannot_be_introduced_as_ksk() {
        let (mut z, old) = signed_zone();
        let mut rng = StdRng::seed_from_u64(3);
        let not_a_ksk = KeyPair::generate(&mut rng, Algorithm::EcdsaP256Sha256, 256);
        introduce_new_ksk(&mut z, &old, &not_a_ksk, CdsPublication::STANDARD, NOW);
    }
}
