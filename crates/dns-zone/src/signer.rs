//! DNSSEC zone signing: RRSIGs over every authoritative RRset, an NSEC
//! chain (or NSEC3), and DNSKEY publication — with deliberate corruption
//! modes so the ecosystem can plant exactly the misconfigurations the
//! paper's §4 catalogues.

use crate::keys::ZoneKeys;
use crate::zone::Zone;
use dns_crypto::sign::{sign_rrset, ValidityWindow};
use dns_crypto::UnixTime;
use dns_wire::canonical::canonical_rrset_wire;
use dns_wire::name::Name;
use dns_wire::rdata::{Nsec3Data, Nsec3ParamData, NsecData, RData, RrsigData};
use dns_wire::record::{Record, RecordType, RrSet};
use dns_wire::typebitmap::TypeBitmap;

/// Deliberate signing defects, planted by the ecosystem generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Corruption {
    /// Produce syntactically valid but cryptographically wrong signatures
    /// ("640 k that even fail validation", §1).
    pub garbage_signatures: bool,
    /// Sign with an already-expired validity window ("the signatures in
    /// the signal zones had expired", §4.4).
    pub expired: bool,
    /// Restrict corruption to RRSIGs covering these types; empty = all.
    pub only_types: &'static [RecordType],
}

impl Corruption {
    /// No corruption.
    pub const NONE: Corruption = Corruption {
        garbage_signatures: false,
        expired: false,
        only_types: &[],
    };

    fn applies_to(&self, rtype: RecordType) -> bool {
        (self.garbage_signatures || self.expired)
            && (self.only_types.is_empty() || self.only_types.contains(&rtype))
    }
}

/// Denial-of-existence flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Denial {
    Nsec,
    /// NSEC3 with the given iterations and salt.
    Nsec3 {
        iterations: u16,
        salt: [u8; 4],
    },
    /// No denial chain. Large registry zones in the ecosystem use this to
    /// bound memory: the measurement pipeline validates positive records
    /// and DS presence, never negative proofs.
    None,
}

/// Zone signer configuration.
#[derive(Debug, Clone)]
pub struct ZoneSigner {
    pub window: ValidityWindow,
    pub denial: Denial,
    pub corruption: Corruption,
}

impl ZoneSigner {
    /// A signer with sane defaults: NSEC, a month of validity around `now`.
    pub fn new(now: UnixTime) -> Self {
        ZoneSigner {
            window: ValidityWindow::around(now, 3600, 30 * 24 * 3600),
            denial: Denial::Nsec,
            corruption: Corruption::NONE,
        }
    }

    pub fn with_denial(mut self, denial: Denial) -> Self {
        self.denial = denial;
        self
    }

    pub fn with_corruption(mut self, corruption: Corruption) -> Self {
        self.corruption = corruption;
        self
    }

    /// Sign `zone` in place with `keys`:
    ///
    /// 1. publish the DNSKEY RRset at the apex,
    /// 2. build the denial chain (NSEC or NSEC3) over authoritative names,
    /// 3. add one RRSIG per authoritative RRset — DNSKEY RRsets signed by
    ///    the KSK, everything else by the ZSK; delegation NS RRsets and
    ///    glue are *not* signed (they are not authoritative data).
    pub fn sign(&self, zone: &mut Zone, keys: &ZoneKeys) {
        let apex = zone.apex().clone();
        // 1. DNSKEYs.
        for rec in keys.dnskey_records(&apex, 3600) {
            zone.add(rec);
        }
        // 2. Denial chain.
        match self.denial {
            Denial::Nsec => self.add_nsec_chain(zone),
            Denial::Nsec3 { iterations, salt } => self.add_nsec3_chain(zone, iterations, salt),
            Denial::None => {}
        }
        // 3. RRSIGs.
        let sets: Vec<RrSet> = zone
            .nodes()
            .filter(|(name, _)| zone.is_authoritative(name))
            .flat_map(|(name, node)| {
                let is_cut = zone.is_delegation(name);
                node.rrsets
                    .values()
                    .filter(move |set| {
                        // At a cut, only DS and NSEC are authoritative.
                        !is_cut || matches!(set.rtype, RecordType::Ds | RecordType::Nsec)
                    })
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        for set in sets {
            let sig = self.sign_rrset_record(&set, keys, &apex);
            zone.add(sig);
        }
    }

    /// Produce the RRSIG record for one RRset.
    pub fn sign_rrset_record(&self, set: &RrSet, keys: &ZoneKeys, apex: &Name) -> Record {
        let key = if set.rtype == RecordType::Dnskey {
            &keys.ksk
        } else {
            &keys.zsk
        };
        let window = if self.corruption.applies_to(set.rtype) && self.corruption.expired {
            // Expired a day before the scan epoch.
            ValidityWindow {
                inception: 0,
                expiration: self.window.inception.saturating_sub(86_400).max(1),
            }
        } else {
            self.window
        };
        let mut rrsig = RrsigData {
            type_covered: set.rtype.code(),
            algorithm: key.algorithm.code(),
            labels: set.name.label_count() as u8,
            original_ttl: set.ttl,
            expiration: window.expiration,
            inception: window.inception,
            key_tag: key.key_tag(),
            signer_name: apex.clone(),
            signature: Vec::new(),
        };
        let mut message = rrsig.signed_prefix();
        message.extend_from_slice(&canonical_rrset_wire(
            &set.name,
            set.class,
            set.ttl,
            &set.rdatas,
        ));
        let mut signature = sign_rrset(key, &message);
        if self.corruption.applies_to(set.rtype) && self.corruption.garbage_signatures {
            // Flip bytes: stays well-formed, fails verification.
            for b in signature.iter_mut() {
                *b ^= 0x5a;
            }
        }
        rrsig.signature = signature;
        Record::new(set.name.clone(), set.ttl, RData::Rrsig(rrsig))
    }

    fn add_nsec_chain(&self, zone: &mut Zone) {
        // Authoritative names in canonical order (zone iterates that way).
        let names: Vec<Name> = zone
            .names()
            .filter(|n| zone.is_authoritative(n))
            .cloned()
            .collect();
        if names.is_empty() {
            return;
        }
        let soa_min = zone
            .rrset(zone.apex(), RecordType::Soa)
            .map(|s| match &s.rdatas[0] {
                RData::Soa(soa) => soa.minimum,
                _ => 300,
            })
            .unwrap_or(300);
        let mut additions = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let next = &names[(i + 1) % names.len()];
            let mut types: Vec<RecordType> = zone
                .nodes()
                .find(|(n, _)| *n == name)
                .map(|(_, node)| node.types().collect())
                .unwrap_or_default();
            types.push(RecordType::Nsec);
            types.push(RecordType::Rrsig);
            additions.push(Record::new(
                name.clone(),
                soa_min,
                RData::Nsec(NsecData {
                    next_name: next.clone(),
                    types: TypeBitmap::from_types(types),
                }),
            ));
        }
        zone.add_all(additions);
    }

    fn add_nsec3_chain(&self, zone: &mut Zone, iterations: u16, salt: [u8; 4]) {
        let apex = zone.apex().clone();
        let soa_min = 300;
        zone.add(Record::new(
            apex.clone(),
            0,
            RData::Nsec3param(Nsec3ParamData {
                hash_algorithm: 1,
                flags: 0,
                iterations,
                salt: salt.to_vec(),
            }),
        ));
        // Hash every authoritative name; chain in hash order.
        let mut hashed: Vec<([u8; 20], Vec<RecordType>)> = zone
            .nodes()
            .filter(|(n, _)| zone.is_authoritative(n))
            .map(|(n, node)| {
                let h = dns_crypto::sha1::nsec3_hash(&n.to_wire(), &salt, iterations);
                let mut types: Vec<RecordType> = node.types().collect();
                types.push(RecordType::Rrsig);
                if *n == apex {
                    types.push(RecordType::Nsec3param);
                }
                (h, types)
            })
            .collect();
        hashed.sort_by_key(|a| a.0);
        let n = hashed.len();
        let mut additions = Vec::new();
        for i in 0..n {
            let (h, types) = &hashed[i];
            let next = hashed[(i + 1) % n].0;
            let owner_label = dns_crypto::sha1::base32hex(h);
            let owner = apex
                .prepend_label(owner_label.as_bytes())
                .expect("base32hex label fits");
            additions.push(Record::new(
                owner,
                soa_min,
                RData::Nsec3(Nsec3Data {
                    hash_algorithm: 1,
                    flags: 0,
                    iterations,
                    salt: salt.to_vec(),
                    next_hashed: next.to_vec(),
                    types: TypeBitmap::from_types(types.clone()),
                }),
            ));
        }
        zone.add_all(additions);
    }
}

/// Verify one RRset's RRSIG against a DNSKEY RRset (helper shared by the
/// resolver and the scanner's correctness checks).
///
/// Returns `Ok(())` when *any* (rrsig, dnskey) pairing with matching key
/// tag + algorithm verifies within its window at `now`.
pub fn verify_rrset_with_keys(
    set: &RrSet,
    rrsigs: &[RrsigData],
    dnskeys: &[dns_wire::rdata::DnskeyData],
    now: UnixTime,
) -> Result<(), dns_crypto::SignatureError> {
    use dns_crypto::{verify_rrset, Algorithm};
    let mut last_err = dns_crypto::SignatureError::BadSignature;
    for sig in rrsigs {
        if sig.type_covered != set.rtype.code() {
            continue;
        }
        let mut message = sig.signed_prefix();
        message.extend_from_slice(&canonical_rrset_wire(
            &set.name,
            set.class,
            sig.original_ttl,
            &set.rdatas,
        ));
        for key in dnskeys {
            if key.algorithm != sig.algorithm {
                continue;
            }
            let mut rdata = Vec::with_capacity(4 + key.public_key.len());
            rdata.extend_from_slice(&key.flags.to_be_bytes());
            rdata.push(key.protocol);
            rdata.push(key.algorithm);
            rdata.extend_from_slice(&key.public_key);
            if dns_crypto::key_tag(&rdata) != sig.key_tag {
                continue;
            }
            match verify_rrset(
                Algorithm::from_code(sig.algorithm),
                &key.public_key,
                &message,
                &sig.signature,
                ValidityWindow {
                    inception: sig.inception,
                    expiration: sig.expiration,
                },
                now,
            ) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = e,
            }
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_crypto::Algorithm;
    use dns_wire::name;
    use dns_wire::rdata::SoaData;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    const NOW: UnixTime = 1_000_000;

    fn build_zone() -> (Zone, ZoneKeys) {
        let apex = name!("example.ch");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.example.ch"),
                rname: name!("hostmaster.example.ch"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Ns(name!("ns1.example.ch")),
        ));
        z.add(Record::new(
            name!("ns1.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        z.add(Record::new(
            name!("www.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        let mut rng = StdRng::seed_from_u64(7);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        (z, keys)
    }

    fn dnskeys_of(zone: &Zone) -> Vec<dns_wire::rdata::DnskeyData> {
        zone.rrset(zone.apex(), RecordType::Dnskey)
            .unwrap()
            .rdatas
            .iter()
            .map(|rd| match rd {
                RData::Dnskey(d) => d.clone(),
                _ => panic!(),
            })
            .collect()
    }

    fn rrsigs_at(zone: &Zone, name: &Name, covered: RecordType) -> Vec<RrsigData> {
        zone.rrset(name, RecordType::Rrsig)
            .map(|s| {
                s.rdatas
                    .iter()
                    .filter_map(|rd| match rd {
                        RData::Rrsig(sig) if sig.type_covered == covered.code() => {
                            Some(sig.clone())
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn signing_adds_dnskey_nsec_rrsig() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        assert!(z.rrset(&name!("example.ch"), RecordType::Dnskey).is_some());
        assert!(z.rrset(&name!("example.ch"), RecordType::Nsec).is_some());
        assert!(z.rrset(&name!("example.ch"), RecordType::Rrsig).is_some());
        assert!(z
            .rrset(&name!("www.example.ch"), RecordType::Rrsig)
            .is_some());
    }

    #[test]
    fn signed_rrsets_verify() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let dnskeys = dnskeys_of(&z);
        for (name, covered) in [
            (name!("example.ch"), RecordType::Soa),
            (name!("example.ch"), RecordType::Ns),
            (name!("example.ch"), RecordType::Dnskey),
            (name!("www.example.ch"), RecordType::A),
            (name!("example.ch"), RecordType::Nsec),
        ] {
            let set = z.rrset(&name, covered).unwrap().clone();
            let sigs = rrsigs_at(&z, &name, covered);
            assert_eq!(sigs.len(), 1, "{name} {covered:?}");
            verify_rrset_with_keys(&set, &sigs, &dnskeys, NOW)
                .unwrap_or_else(|e| panic!("{name} {covered:?}: {e}"));
        }
    }

    #[test]
    fn dnskey_signed_by_ksk_others_by_zsk() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let dnskey_sig = &rrsigs_at(&z, &name!("example.ch"), RecordType::Dnskey)[0];
        assert_eq!(dnskey_sig.key_tag, keys.ksk.key_tag());
        let soa_sig = &rrsigs_at(&z, &name!("example.ch"), RecordType::Soa)[0];
        assert_eq!(soa_sig.key_tag, keys.zsk.key_tag());
    }

    #[test]
    fn nsec_chain_loops_in_canonical_order() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        // Follow the chain from the apex until it loops; must visit every
        // authoritative name exactly once.
        let mut seen = Vec::new();
        let mut cur = name!("example.ch");
        loop {
            seen.push(cur.clone());
            let set = z.rrset(&cur, RecordType::Nsec).unwrap();
            let next = match &set.rdatas[0] {
                RData::Nsec(n) => n.next_name.clone(),
                _ => panic!(),
            };
            if next == name!("example.ch") {
                break;
            }
            cur = next;
            assert!(seen.len() <= 10, "chain does not loop");
        }
        assert_eq!(seen.len(), 3); // apex, ns1, www
    }

    #[test]
    fn nsec_bitmap_reflects_node_types() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let set = z.rrset(&name!("www.example.ch"), RecordType::Nsec).unwrap();
        match &set.rdatas[0] {
            RData::Nsec(n) => {
                assert!(n.types.contains(RecordType::A));
                assert!(n.types.contains(RecordType::Rrsig));
                assert!(n.types.contains(RecordType::Nsec));
                assert!(!n.types.contains(RecordType::Mx));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn garbage_corruption_fails_verification() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW)
            .with_corruption(Corruption {
                garbage_signatures: true,
                expired: false,
                only_types: &[],
            })
            .sign(&mut z, &keys);
        let dnskeys = dnskeys_of(&z);
        let set = z
            .rrset(&name!("www.example.ch"), RecordType::A)
            .unwrap()
            .clone();
        let sigs = rrsigs_at(&z, &name!("www.example.ch"), RecordType::A);
        assert_eq!(
            verify_rrset_with_keys(&set, &sigs, &dnskeys, NOW),
            Err(dns_crypto::SignatureError::BadSignature)
        );
    }

    #[test]
    fn expired_corruption_fails_with_expired() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW)
            .with_corruption(Corruption {
                garbage_signatures: false,
                expired: true,
                only_types: &[],
            })
            .sign(&mut z, &keys);
        let dnskeys = dnskeys_of(&z);
        let set = z
            .rrset(&name!("www.example.ch"), RecordType::A)
            .unwrap()
            .clone();
        let sigs = rrsigs_at(&z, &name!("www.example.ch"), RecordType::A);
        assert_eq!(
            verify_rrset_with_keys(&set, &sigs, &dnskeys, NOW),
            Err(dns_crypto::SignatureError::Expired)
        );
    }

    #[test]
    fn targeted_corruption_spares_other_types() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW)
            .with_corruption(Corruption {
                garbage_signatures: true,
                expired: false,
                only_types: &[RecordType::Cds],
            })
            .sign(&mut z, &keys);
        let dnskeys = dnskeys_of(&z);
        let set = z
            .rrset(&name!("www.example.ch"), RecordType::A)
            .unwrap()
            .clone();
        let sigs = rrsigs_at(&z, &name!("www.example.ch"), RecordType::A);
        assert!(verify_rrset_with_keys(&set, &sigs, &dnskeys, NOW).is_ok());
    }

    #[test]
    fn delegation_ns_not_signed_but_ds_is() {
        let (mut z, keys) = build_zone();
        z.add(Record::new(
            name!("sub.example.ch"),
            300,
            RData::Ns(name!("ns1.other.net")),
        ));
        z.add(Record::new(
            name!("sub.example.ch"),
            300,
            RData::Ds(dns_wire::rdata::DsData {
                key_tag: 1,
                algorithm: 13,
                digest_type: 2,
                digest: vec![1; 32],
            }),
        ));
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let sigs_ns = rrsigs_at(&z, &name!("sub.example.ch"), RecordType::Ns);
        assert!(sigs_ns.is_empty(), "delegation NS must not be signed");
        let sigs_ds = rrsigs_at(&z, &name!("sub.example.ch"), RecordType::Ds);
        assert_eq!(sigs_ds.len(), 1, "delegation DS must be signed");
    }

    #[test]
    fn glue_not_signed_and_not_in_nsec_chain() {
        let (mut z, keys) = build_zone();
        z.add(Record::new(
            name!("sub.example.ch"),
            300,
            RData::Ns(name!("ns1.sub.example.ch")),
        ));
        z.add(Record::new(
            name!("ns1.sub.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
        ));
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        assert!(rrsigs_at(&z, &name!("ns1.sub.example.ch"), RecordType::A).is_empty());
        assert!(z
            .rrset(&name!("ns1.sub.example.ch"), RecordType::Nsec)
            .is_none());
    }

    #[test]
    fn nsec3_chain_built_and_loops() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW)
            .with_denial(Denial::Nsec3 {
                iterations: 0,
                salt: [0xde, 0xad, 0xbe, 0xef],
            })
            .sign(&mut z, &keys);
        assert!(z
            .rrset(&name!("example.ch"), RecordType::Nsec3param)
            .is_some());
        // Three authoritative names → three NSEC3 records whose next-hash
        // pointers form a single cycle.
        let nsec3s: Vec<(Vec<u8>, Vec<u8>)> = z
            .records()
            .into_iter()
            .filter_map(|r| match r.rdata {
                RData::Nsec3(n) => {
                    let label = r.name.first_label().unwrap().to_vec();
                    Some((label, n.next_hashed))
                }
                _ => None,
            })
            .collect();
        assert_eq!(nsec3s.len(), 3);
        for (_, next) in &nsec3s {
            let next_label = dns_crypto::sha1::base32hex(next);
            assert!(
                nsec3s.iter().any(|(l, _)| l == next_label.as_bytes()),
                "next pointer targets an existing NSEC3 owner"
            );
        }
        // NSEC3 RRsets are themselves signed.
        let nsec3_owner = z
            .records()
            .into_iter()
            .find(|r| matches!(r.rdata, RData::Nsec3(_)))
            .unwrap()
            .name;
        assert!(!rrsigs_at(&z, &nsec3_owner, RecordType::Nsec3).is_empty());
    }

    #[test]
    fn verify_fails_when_rrset_tampered() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let dnskeys = dnskeys_of(&z);
        let mut set = z
            .rrset(&name!("www.example.ch"), RecordType::A)
            .unwrap()
            .clone();
        set.rdatas = vec![RData::A(Ipv4Addr::new(10, 0, 0, 1))];
        let sigs = rrsigs_at(&z, &name!("www.example.ch"), RecordType::A);
        assert!(verify_rrset_with_keys(&set, &sigs, &dnskeys, NOW).is_err());
    }

    #[test]
    fn verify_fails_with_foreign_keys() {
        let (mut z, keys) = build_zone();
        ZoneSigner::new(NOW).sign(&mut z, &keys);
        let mut rng = StdRng::seed_from_u64(999);
        let other = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        let foreign: Vec<_> = other
            .dnskey_records(&name!("example.ch"), 300)
            .into_iter()
            .map(|r| match r.rdata {
                RData::Dnskey(d) => d,
                _ => panic!(),
            })
            .collect();
        let set = z
            .rrset(&name!("www.example.ch"), RecordType::A)
            .unwrap()
            .clone();
        let sigs = rrsigs_at(&z, &name!("www.example.ch"), RecordType::A);
        assert!(verify_rrset_with_keys(&set, &sigs, &foreign, NOW).is_err());
    }
}
