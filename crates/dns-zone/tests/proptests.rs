//! Property-based tests over zone signing: every signed RRset verifies,
//! NSEC chains are closed loops over exactly the authoritative names, and
//! signed zones survive a zone-file round trip.

use dns_crypto::Algorithm;
use dns_wire::name::Name;
use dns_wire::rdata::{RData, SoaData};
use dns_wire::record::{Record, RecordType};
use dns_zone::signer::verify_rrset_with_keys;
use dns_zone::{Zone, ZoneKeys, ZoneSigner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

const NOW: u32 = 1_000_000;

/// Strategy: a short alphanumeric label.
fn label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

/// Build a zone with arbitrary host names under the apex.
fn arb_zone() -> impl Strategy<Value = Zone> {
    proptest::collection::btree_set(label(), 0..=12).prop_map(|hosts| {
        let apex = Name::parse("example.ch").unwrap();
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: Name::parse("ns1.example.ch").unwrap(),
                rname: Name::parse("h.example.ch").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Ns(Name::parse("ns1.example.ch").unwrap()),
        ));
        for (i, h) in hosts.iter().enumerate() {
            z.add(Record::new(
                Name::parse(&format!("{h}.example.ch")).unwrap(),
                300,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8)),
            ));
        }
        z
    })
}

fn dnskeys_of(zone: &Zone) -> Vec<dns_wire::rdata::DnskeyData> {
    zone.rrset(zone.apex(), RecordType::Dnskey)
        .unwrap()
        .rdatas
        .iter()
        .map(|rd| match rd {
            RData::Dnskey(d) => d.clone(),
            _ => unreachable!(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After signing, every authoritative RRset has a verifying RRSIG.
    #[test]
    fn all_rrsets_verify_after_signing(zone in arb_zone(), seed in any::<u64>()) {
        let mut zone = zone;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        ZoneSigner::new(NOW).sign(&mut zone, &keys);
        let dnskeys = dnskeys_of(&zone);
        let mut verified = 0;
        let nodes: Vec<(Name, Vec<RecordType>)> = zone
            .nodes()
            .map(|(n, node)| (n.clone(), node.types().collect()))
            .collect();
        for (name, types) in nodes {
            let rrsigs: Vec<_> = zone
                .rrset(&name, RecordType::Rrsig)
                .map(|s| {
                    s.rdatas
                        .iter()
                        .filter_map(|rd| match rd {
                            RData::Rrsig(sig) => Some(sig.clone()),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            for t in types {
                if t == RecordType::Rrsig {
                    continue;
                }
                let set = zone.rrset(&name, t).unwrap().clone();
                verify_rrset_with_keys(&set, &rrsigs, &dnskeys, NOW)
                    .unwrap_or_else(|e| panic!("{name} {t:?}: {e}"));
                verified += 1;
            }
        }
        prop_assert!(verified >= 3);
    }

    /// The NSEC chain visits every authoritative name exactly once and
    /// returns to the apex.
    #[test]
    fn nsec_chain_is_a_closed_loop(zone in arb_zone(), seed in any::<u64>()) {
        let mut zone = zone;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        ZoneSigner::new(NOW).sign(&mut zone, &keys);
        let auth_count = zone.names().filter(|n| zone.is_authoritative(n)).count();
        let apex = zone.apex().clone();
        let mut cur = apex.clone();
        let mut visited = std::collections::HashSet::new();
        loop {
            prop_assert!(visited.insert(cur.clone()), "revisited {cur}");
            let set = zone.rrset(&cur, RecordType::Nsec).expect("NSEC at every auth name");
            let next = match &set.rdatas[0] {
                RData::Nsec(n) => n.next_name.clone(),
                _ => unreachable!(),
            };
            if next == apex {
                break;
            }
            cur = next;
            prop_assert!(visited.len() <= auth_count, "chain longer than zone");
        }
        prop_assert_eq!(visited.len(), auth_count);
    }

    /// Signing is idempotent on record count for the same key set.
    #[test]
    fn signed_zone_roundtrips_through_zone_file(zone in arb_zone(), seed in any::<u64>()) {
        let mut zone = zone;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        ZoneSigner::new(NOW).sign(&mut zone, &keys);
        let text = zone.to_zone_file();
        let back = Zone::from_zone_file(zone.apex().clone(), &text).unwrap();
        prop_assert_eq!(back.record_count(), zone.record_count());
        // And the reparsed zone still verifies.
        let dnskeys = dnskeys_of(&back);
        let set = back.rrset(back.apex(), RecordType::Soa).unwrap().clone();
        let rrsigs: Vec<_> = back
            .rrset(back.apex(), RecordType::Rrsig)
            .unwrap()
            .rdatas
            .iter()
            .filter_map(|rd| match rd {
                RData::Rrsig(sig) => Some(sig.clone()),
                _ => None,
            })
            .collect();
        prop_assert!(verify_rrset_with_keys(&set, &rrsigs, &dnskeys, NOW).is_ok());
    }

    /// The DS digest of the zone's KSK always matches a published DNSKEY
    /// (CDS↔DNSKEY correspondence used by bootstrap decisions).
    #[test]
    fn cds_always_matches_a_dnskey(seed in any::<u64>()) {
        let apex = Name::parse("x.ch").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        let cds = keys.ds_data(&apex, dns_crypto::DigestType::Sha256);
        let dnskey_rdata = keys.ksk.dnskey_rdata();
        let digest = dns_crypto::ds_digest(
            dns_crypto::DigestType::Sha256,
            &apex.to_wire(),
            &dnskey_rdata,
        )
        .unwrap();
        prop_assert_eq!(cds.digest, digest);
        prop_assert_eq!(cds.key_tag, keys.ksk.key_tag());
    }
}
