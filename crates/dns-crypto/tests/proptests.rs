//! Property-based tests over the crypto layer: hash incrementality,
//! signature soundness/completeness properties, key-tag stability.

use dns_crypto::sha1::{base32hex, sha1};
use dns_crypto::sha2::{sha256, Sha256};
use dns_crypto::{key_tag, sign_rrset, verify_rrset, Algorithm, KeyPair, ValidityWindow};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming in arbitrary chunkings equals the one-shot digest.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..=2048),
        cuts in proptest::collection::vec(0usize..2048, 0..=8),
    ) {
        let mut points: Vec<usize> = cuts.into_iter().filter(|&c| c <= data.len()).collect();
        points.sort_unstable();
        points.dedup();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &p in &points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Different messages (almost surely) hash differently.
    #[test]
    fn sha256_collision_smoke(a in proptest::collection::vec(any::<u8>(), 0..=64),
                              b in proptest::collection::vec(any::<u8>(), 0..=64)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    #[test]
    fn sha1_deterministic(data in proptest::collection::vec(any::<u8>(), 0..=256)) {
        prop_assert_eq!(sha1(&data), sha1(&data));
    }

    /// base32hex output is always lowercase alphanumeric of ceil(8n/5).
    #[test]
    fn base32hex_shape(data in proptest::collection::vec(any::<u8>(), 0..=32)) {
        let s = base32hex(&data);
        prop_assert_eq!(s.len(), data.len() * 8 / 5 + usize::from(!(data.len() * 8).is_multiple_of(5)));
        prop_assert!(s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'v').contains(&b)));
    }

    /// Correct signatures always verify inside their window.
    #[test]
    fn sign_then_verify_completeness(
        seed in any::<u64>(),
        message in proptest::collection::vec(any::<u8>(), 0..=256),
        now in 100u32..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = KeyPair::generate(&mut rng, Algorithm::Ed25519, 257);
        let sig = sign_rrset(&key, &message);
        let window = ValidityWindow { inception: 0, expiration: u32::MAX };
        prop_assert!(verify_rrset(key.algorithm, key.public_key(), &message, &sig, window, now).is_ok());
    }

    /// Any single-byte corruption of the signature is rejected.
    #[test]
    fn corrupted_signature_soundness(
        seed in any::<u64>(),
        message in proptest::collection::vec(any::<u8>(), 0..=128),
        flip_at in 0usize..64,
        flip_with in 1u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = KeyPair::generate(&mut rng, Algorithm::Ed25519, 257);
        let mut sig = sign_rrset(&key, &message);
        let i = flip_at % sig.len();
        sig[i] ^= flip_with;
        let window = ValidityWindow { inception: 0, expiration: u32::MAX };
        prop_assert!(verify_rrset(key.algorithm, key.public_key(), &message, &sig, window, 500).is_err());
    }

    /// Any message mutation is rejected.
    #[test]
    fn tampered_message_soundness(
        seed in any::<u64>(),
        message in proptest::collection::vec(any::<u8>(), 1..=128),
        flip_at in 0usize..128,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = KeyPair::generate(&mut rng, Algorithm::EcdsaP256Sha256, 256);
        let sig = sign_rrset(&key, &message);
        let mut tampered = message.clone();
        let i = flip_at % tampered.len();
        tampered[i] ^= 0x01;
        let window = ValidityWindow { inception: 0, expiration: u32::MAX };
        prop_assert!(verify_rrset(key.algorithm, key.public_key(), &tampered, &sig, window, 500).is_err());
    }

    /// Verification is strictly bounded by the validity window.
    #[test]
    fn window_boundaries(
        seed in any::<u64>(),
        inception in 0u32..1_000_000,
        lifetime in 1u32..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = KeyPair::generate(&mut rng, Algorithm::Ed25519, 256);
        let sig = sign_rrset(&key, b"msg");
        let window = ValidityWindow { inception, expiration: inception + lifetime };
        let v = |now| verify_rrset(key.algorithm, key.public_key(), b"msg", &sig, window, now);
        prop_assert!(v(inception).is_ok());
        prop_assert!(v(inception + lifetime).is_ok());
        if inception > 0 {
            prop_assert!(v(inception - 1).is_err());
        }
        if inception + lifetime < u32::MAX {
            prop_assert!(v(inception + lifetime + 1).is_err());
        }
    }

    /// Key tags are a pure function of the RDATA.
    #[test]
    fn key_tag_pure(rdata in proptest::collection::vec(any::<u8>(), 4..=64)) {
        prop_assert_eq!(key_tag(&rdata), key_tag(&rdata));
    }

    /// Independent keys have distinct public keys.
    #[test]
    fn distinct_keys(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        if seed_a != seed_b {
            let mut ra = StdRng::seed_from_u64(seed_a);
            let mut rb = StdRng::seed_from_u64(seed_b);
            let ka = KeyPair::generate(&mut ra, Algorithm::Ed25519, 256);
            let kb = KeyPair::generate(&mut rb, Algorithm::Ed25519, 256);
            prop_assert_ne!(ka.public_key(), kb.public_key());
        }
    }
}
