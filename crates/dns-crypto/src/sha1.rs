//! SHA-1 (FIPS 180-4), used only where the DNS protocol demands it:
//! NSEC3 owner-name hashing (RFC 5155 registers SHA-1 as the sole hash
//! algorithm) and DS digest type 1.

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut state: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];
    let bit_len = (data.len() as u64) * 8;
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    for chunk in padded.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, wi) in w.iter_mut().take(16).enumerate() {
            *wi = u32::from_be_bytes(chunk[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        for (s, v) in state.iter_mut().zip([a, b, c, d, e]) {
            *s = s.wrapping_add(v);
        }
    }
    let mut out = [0u8; 20];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// RFC 5155 §5 NSEC3 hash: `IH(salt, x, k)` — `k+1` SHA-1 applications,
/// each over the previous digest (or the owner name) concatenated with the
/// salt. The input name must already be in canonical wire form.
pub fn nsec3_hash(owner_wire: &[u8], salt: &[u8], iterations: u16) -> [u8; 20] {
    let mut buf = Vec::with_capacity(owner_wire.len() + salt.len());
    buf.extend_from_slice(owner_wire);
    buf.extend_from_slice(salt);
    let mut digest = sha1(&buf);
    for _ in 0..iterations {
        let mut b = Vec::with_capacity(20 + salt.len());
        b.extend_from_slice(&digest);
        b.extend_from_slice(salt);
        digest = sha1(&b);
    }
    digest
}

/// RFC 4648 base32hex (no padding), the encoding NSEC3 owner names use.
pub fn base32hex(data: &[u8]) -> String {
    const ALPHABET: &[u8] = b"0123456789abcdefghijklmnopqrstuv";
    let mut out = String::new();
    let mut bits = 0u32;
    let mut acc = 0u32;
    for &b in data {
        acc = acc << 8 | b as u32;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[(acc >> bits) as usize & 0x1f] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[(acc << (5 - bits)) as usize & 0x1f] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // FIPS 180-4 vectors.
    #[test]
    fn sha1_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn sha1_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn sha1_two_block() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    // RFC 5155 Appendix A: H(example) with salt aabbccdd, 12 iterations
    // is 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom (base32hex).
    #[test]
    fn nsec3_rfc5155_vector() {
        let owner = b"\x07example\x00";
        let salt = [0xaa, 0xbb, 0xcc, 0xdd];
        let h = nsec3_hash(owner, &salt, 12);
        assert_eq!(base32hex(&h), "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom");
    }

    // RFC 5155 Appendix A: a.example → 35mthgpgcu1qg68fab165klnsnk3dpvl.
    #[test]
    fn nsec3_rfc5155_vector_a_example() {
        let owner = b"\x01a\x07example\x00";
        let salt = [0xaa, 0xbb, 0xcc, 0xdd];
        let h = nsec3_hash(owner, &salt, 12);
        assert_eq!(base32hex(&h), "35mthgpgcu1qg68fab165klnsnk3dpvl");
    }

    #[test]
    fn zero_iterations_is_single_hash() {
        let owner = b"\x07example\x00";
        let mut buf = owner.to_vec();
        buf.extend_from_slice(b"salt");
        assert_eq!(nsec3_hash(owner, b"salt", 0), sha1(&buf));
    }

    #[test]
    fn base32hex_known_values() {
        // RFC 4648 §10 (lowercased, unpadded).
        assert_eq!(base32hex(b""), "");
        assert_eq!(base32hex(b"f"), "co");
        assert_eq!(base32hex(b"fo"), "cpng");
        assert_eq!(base32hex(b"foo"), "cpnmu");
        assert_eq!(base32hex(b"foob"), "cpnmuog");
        assert_eq!(base32hex(b"fooba"), "cpnmuoj1");
        assert_eq!(base32hex(b"foobar"), "cpnmuoj1e8");
    }
}
