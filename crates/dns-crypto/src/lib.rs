//! # dns-crypto — hashing, keys and signatures for the DNSSEC simulation
//!
//! Real, test-vectored implementations of SHA-1 (NSEC3 hashing, RFC 5155),
//! SHA-256 and SHA-384 (DS digests, RFC 4509 / RFC 6605), plus RFC 4034
//! key-tag computation — and a *simulated* signature scheme for RRSIGs.
//!
//! ## The simulated signature scheme
//!
//! The paper measures DNSSEC *configuration correctness*, not cryptographic
//! strength, so signatures here are keyed hashes rather than real public-key
//! signatures (the offline crate budget has no asymmetric-crypto crate, and
//! re-implementing ECDSA would add risk without adding fidelity):
//!
//! * private key: random bytes drawn per zone/key,
//! * public key: `SHA-256("dnssec-sim-pub" ‖ private)`,
//! * signature over message `m`: `SHA-256("dnssec-sim-sig" ‖ public ‖ m)`,
//!   truncated/extended to the algorithm's conventional signature size.
//!
//! Verification recomputes the keyed hash from the *public* key, so the
//! validator needs no secret — exactly like real DNSSEC — and fails on any
//! mismatch of key, data, or planted corruption. The scheme is forgeable by
//! anyone holding the public key; that is irrelevant to the measurement
//! (DESIGN.md §2 records the substitution).

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod ds;
pub mod keys;
pub mod sha1;
pub mod sha2;
pub mod sign;

pub use algorithm::{Algorithm, DigestType};
pub use ds::ds_digest;
pub use keys::{key_tag, KeyPair};
pub use sign::{sign_rrset, verify_rrset, SignatureError, ValidityWindow};

/// Simulation epoch: all simulated clocks count seconds from scan start.
pub type UnixTime = u32;
