//! RRset signing and verification (RFC 4034 §3) over the simulated
//! signature scheme.
//!
//! The message that gets signed is exactly what RFC 4034 §3.1.8.1 mandates:
//! `RRSIG_RDATA_prefix ‖ canonical RRset wire`, where the prefix is the
//! RRSIG RDATA up to (not including) the signature field, and the RRset is
//! in canonical form/order with the original TTL. Callers assemble those
//! bytes with `dns-wire`'s canonical module; this module is byte-oriented
//! and does not depend on `dns-wire`.

use crate::algorithm::Algorithm;
use crate::keys::{expand, KeyPair};
use crate::sha2::sha256_parts;
use crate::UnixTime;
use std::fmt;

/// Inception/expiration window carried in an RRSIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidityWindow {
    pub inception: UnixTime,
    pub expiration: UnixTime,
}

impl ValidityWindow {
    /// A window centred on `now`, the shape zone-signing software produces
    /// (slight backdating against clock skew, weeks of validity).
    pub fn around(now: UnixTime, backdate: u32, lifetime: u32) -> Self {
        ValidityWindow {
            inception: now.saturating_sub(backdate),
            expiration: now.saturating_add(lifetime),
        }
    }

    /// Whether `now` falls inside the window (RFC 4035 §5.3.1: inception ≤
    /// now ≤ expiration).
    pub fn contains(&self, now: UnixTime) -> bool {
        self.inception <= now && now <= self.expiration
    }
}

/// Why a signature failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The algorithm cannot be verified (unknown or the delete sentinel).
    UnsupportedAlgorithm(u8),
    /// `now` is before the inception time.
    NotYetValid,
    /// `now` is after the expiration time.
    Expired,
    /// The signature bytes do not match the keyed hash.
    BadSignature,
    /// The signature length is wrong for the algorithm.
    BadLength { expected: usize, actual: usize },
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::UnsupportedAlgorithm(a) => write!(f, "unsupported algorithm {a}"),
            SignatureError::NotYetValid => write!(f, "signature not yet valid"),
            SignatureError::Expired => write!(f, "signature expired"),
            SignatureError::BadSignature => write!(f, "signature mismatch"),
            SignatureError::BadLength { expected, actual } => {
                write!(f, "signature length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SignatureError {}

/// Compute the signature octets over `message` with `key`.
///
/// `message` must be `RRSIG_RDATA_prefix ‖ canonical RRset` per RFC 4034.
/// Panics if the key's algorithm cannot sign (delete sentinel / unknown) —
/// generating such a signature is a programming error, not a data error.
pub fn sign_rrset(key: &KeyPair, message: &[u8]) -> Vec<u8> {
    assert!(
        key.algorithm.is_supported(),
        "cannot sign with {}",
        key.algorithm
    );
    signature_bytes(key.algorithm, key.public_key(), message)
    // Note: the private key's only role in the simulation is deriving the
    // public key; including it here would break public verifiability.
    // `KeyPair::private_key` documents this.
}

/// Verify signature octets over `message` with a *public* key, at time
/// `now` against the validity `window`.
pub fn verify_rrset(
    algorithm: Algorithm,
    public_key: &[u8],
    message: &[u8],
    signature: &[u8],
    window: ValidityWindow,
    now: UnixTime,
) -> Result<(), SignatureError> {
    if !algorithm.is_supported() {
        return Err(SignatureError::UnsupportedAlgorithm(algorithm.code()));
    }
    if now < window.inception {
        return Err(SignatureError::NotYetValid);
    }
    if now > window.expiration {
        return Err(SignatureError::Expired);
    }
    let expected = signature_bytes(algorithm, public_key, message);
    if signature.len() != expected.len() {
        return Err(SignatureError::BadLength {
            expected: expected.len(),
            actual: signature.len(),
        });
    }
    if signature != expected.as_slice() {
        return Err(SignatureError::BadSignature);
    }
    Ok(())
}

/// The keyed-hash signature: domain-separated hash of public key and
/// message, expanded to the algorithm's conventional signature size.
fn signature_bytes(algorithm: Algorithm, public_key: &[u8], message: &[u8]) -> Vec<u8> {
    let digest = sha256_parts(&[b"dnssec-sim-sig", &[algorithm.code()], public_key, message]);
    expand(&[&digest], algorithm.signature_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(alg: Algorithm) -> KeyPair {
        let mut rng = StdRng::seed_from_u64(99);
        KeyPair::generate(&mut rng, alg, 257)
    }

    const WINDOW: ValidityWindow = ValidityWindow {
        inception: 100,
        expiration: 1000,
    };

    #[test]
    fn sign_verify_roundtrip_all_algorithms() {
        for alg in [
            Algorithm::RsaSha256,
            Algorithm::EcdsaP256Sha256,
            Algorithm::Ed25519,
        ] {
            let k = key(alg);
            let msg = b"canonical rrset bytes";
            let sig = sign_rrset(&k, msg);
            assert_eq!(sig.len(), alg.signature_len());
            verify_rrset(alg, k.public_key(), msg, &sig, WINDOW, 500).unwrap();
        }
    }

    #[test]
    fn tampered_message_fails() {
        let k = key(Algorithm::EcdsaP256Sha256);
        let sig = sign_rrset(&k, b"original");
        assert_eq!(
            verify_rrset(k.algorithm, k.public_key(), b"tampered", &sig, WINDOW, 500),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let k1 = key(Algorithm::EcdsaP256Sha256);
        let mut rng = StdRng::seed_from_u64(123);
        let k2 = KeyPair::generate(&mut rng, Algorithm::EcdsaP256Sha256, 257);
        let sig = sign_rrset(&k1, b"msg");
        assert_eq!(
            verify_rrset(k1.algorithm, k2.public_key(), b"msg", &sig, WINDOW, 500),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn corrupted_signature_fails() {
        let k = key(Algorithm::Ed25519);
        let mut sig = sign_rrset(&k, b"msg");
        sig[0] ^= 0xff;
        assert_eq!(
            verify_rrset(k.algorithm, k.public_key(), b"msg", &sig, WINDOW, 500),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn truncated_signature_fails_with_length_error() {
        let k = key(Algorithm::Ed25519);
        let sig = sign_rrset(&k, b"msg");
        assert_eq!(
            verify_rrset(k.algorithm, k.public_key(), b"msg", &sig[..32], WINDOW, 500),
            Err(SignatureError::BadLength {
                expected: 64,
                actual: 32
            })
        );
    }

    #[test]
    fn validity_window_enforced() {
        let k = key(Algorithm::EcdsaP256Sha256);
        let sig = sign_rrset(&k, b"msg");
        assert_eq!(
            verify_rrset(k.algorithm, k.public_key(), b"msg", &sig, WINDOW, 50),
            Err(SignatureError::NotYetValid)
        );
        assert_eq!(
            verify_rrset(k.algorithm, k.public_key(), b"msg", &sig, WINDOW, 1001),
            Err(SignatureError::Expired)
        );
        // Boundaries inclusive.
        assert!(verify_rrset(k.algorithm, k.public_key(), b"msg", &sig, WINDOW, 100).is_ok());
        assert!(verify_rrset(k.algorithm, k.public_key(), b"msg", &sig, WINDOW, 1000).is_ok());
    }

    #[test]
    fn unsupported_algorithm_rejected() {
        assert_eq!(
            verify_rrset(Algorithm::Delete, b"", b"msg", b"", WINDOW, 500),
            Err(SignatureError::UnsupportedAlgorithm(0))
        );
        assert_eq!(
            verify_rrset(Algorithm::Unknown(99), b"", b"msg", b"", WINDOW, 500),
            Err(SignatureError::UnsupportedAlgorithm(99))
        );
    }

    #[test]
    #[should_panic(expected = "cannot sign")]
    fn signing_with_delete_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = KeyPair::generate(&mut rng, Algorithm::Delete, 0);
        sign_rrset(&k, b"msg");
    }

    #[test]
    fn window_around_and_contains() {
        let w = ValidityWindow::around(1000, 100, 5000);
        assert_eq!(w.inception, 900);
        assert_eq!(w.expiration, 6000);
        assert!(w.contains(1000));
        assert!(!w.contains(899));
        assert!(!w.contains(6001));
        // Saturating at zero.
        let w = ValidityWindow::around(50, 100, 10);
        assert_eq!(w.inception, 0);
    }
}
