//! SHA-256 and SHA-384 (FIPS 180-4), implemented from the specification.
//!
//! SHA-384 is SHA-512 with different initial hash values and a truncated
//! output, so both share the 64-bit compression function.

/// SHA-256 round constants (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K256: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-512 round constants.
const K512: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

/// Streaming SHA-256.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Input exhausted; the partial buffer stays as-is.
                return;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append to avoid double-counting in total_len.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, wi) in w.iter_mut().take(16).enumerate() {
            *wi = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K256[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 over the concatenation of several parts.
pub fn sha256_parts(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// SHA-512 core used by SHA-384 (streaming not needed at our sizes).
fn sha512_compress(state: &mut [u64; 8], block: &[u8; 128]) {
    let mut w = [0u64; 80];
    for (i, wi) in w.iter_mut().take(16).enumerate() {
        *wi = u64::from_be_bytes(block[i * 8..i * 8 + 8].try_into().unwrap());
    }
    for i in 16..80 {
        let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
        let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..80 {
        let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K512[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// One-shot SHA-384.
pub fn sha384(data: &[u8]) -> [u8; 48] {
    // SHA-384 initial hash values (FIPS 180-4 §5.3.4).
    let mut state: [u64; 8] = [
        0xcbbb9d5dc1059ed8,
        0x629a292a367cd507,
        0x9159015a3070dd17,
        0x152fecd8f70e5939,
        0x67332667ffc00b31,
        0x8eb44a8768581511,
        0xdb0c2e0d64f98fa7,
        0x47b5481dbefa4fa4,
    ];
    // Pad: message ‖ 0x80 ‖ zeros ‖ 128-bit bit length.
    let bit_len = (data.len() as u128) * 8;
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 128 != 112 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in padded.chunks_exact(128) {
        let mut block = [0u8; 128];
        block.copy_from_slice(chunk);
        sha512_compress(&mut state, &block);
    }
    let mut out = [0u8; 48];
    for (i, s) in state.iter().take(6).enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&s.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // NIST FIPS 180-4 test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut h = Sha256::new();
        let mut i = 0;
        for size in [1usize, 7, 63, 64, 65, 127, 128, 1000].iter().cycle() {
            if i >= data.len() {
                break;
            }
            let end = (i + size).min(data.len());
            h.update(&data[i..end]);
            i = end;
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_parts_matches_concat() {
        assert_eq!(sha256_parts(&[b"foo", b"bar"]), sha256(b"foobar"));
    }

    #[test]
    fn sha384_empty() {
        assert_eq!(
            hex(&sha384(b"")),
            "38b060a751ac96384cd9327eb1b1e36a21fdb71114be07434c0cc7bf63f6e1da274edebfe76f65fbd51ad2f14898b95b"
        );
    }

    #[test]
    fn sha384_abc() {
        assert_eq!(
            hex(&sha384(b"abc")),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed8086072ba1e7cc2358baeca134c825a7"
        );
    }

    #[test]
    fn sha384_two_block() {
        assert_eq!(
            hex(&sha384(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "09330c33f71147e83d192fc782cd1b4753111b173b3b05d22fa08086e3b0f712fcc7c71a557e2db966c3e9fa91746039"
        );
    }

    #[test]
    fn sha256_length_boundary_padding() {
        // 55/56/57-byte messages straddle the padding boundary.
        for n in [55usize, 56, 57, 63, 64, 65] {
            let data = vec![0x5a; n];
            let mut h = Sha256::new();
            h.update(&data);
            // Compare against a byte-at-a-time stream.
            let mut h2 = Sha256::new();
            for b in &data {
                h2.update(&[*b]);
            }
            assert_eq!(h.finalize(), h2.finalize(), "len {n}");
        }
    }
}
