//! Key pairs and RFC 4034 Appendix B key tags.

use crate::algorithm::Algorithm;
use crate::sha2::sha256_parts;
use rand::RngCore;

/// A simulated DNSSEC key pair.
///
/// The public key is derived from the private key by hashing, so two
/// independently generated keys never share a public key, and republishing
/// the same public key always refers to the same signer — the properties the
/// measurement relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    pub algorithm: Algorithm,
    /// DNSKEY flags this key is published with (256 = ZSK, 257 = KSK).
    pub flags: u16,
    private: Vec<u8>,
    public: Vec<u8>,
}

impl KeyPair {
    /// Generate a fresh key of `algorithm` with the given DNSKEY flags.
    pub fn generate<R: RngCore>(rng: &mut R, algorithm: Algorithm, flags: u16) -> Self {
        let mut private = vec![0u8; 32];
        rng.fill_bytes(&mut private);
        let public = derive_public(&private, algorithm);
        KeyPair {
            algorithm,
            flags,
            private,
            public,
        }
    }

    /// Public key octets as published in DNSKEY RDATA.
    pub fn public_key(&self) -> &[u8] {
        &self.public
    }

    /// Private key octets. The simulation's signing path never reads this
    /// (the signature is keyed on the *public* key, see crate docs); it is
    /// retained so the data model matches real key material.
    #[allow(dead_code)]
    pub(crate) fn private_key(&self) -> &[u8] {
        &self.private
    }

    /// The DNSKEY RDATA this key publishes: flags ‖ protocol=3 ‖ alg ‖ key.
    pub fn dnskey_rdata(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.public.len());
        out.extend_from_slice(&self.flags.to_be_bytes());
        out.push(3);
        out.push(self.algorithm.code());
        out.extend_from_slice(&self.public);
        out
    }

    /// The key tag of this key's DNSKEY record.
    pub fn key_tag(&self) -> u16 {
        key_tag(&self.dnskey_rdata())
    }

    /// Whether the SEP flag is set (key signing key).
    pub fn is_ksk(&self) -> bool {
        self.flags & 0x0001 != 0
    }
}

/// Derive the simulated public key for a private key: conventional key
/// size for the algorithm, filled from an expanding hash.
fn derive_public(private: &[u8], algorithm: Algorithm) -> Vec<u8> {
    expand(
        &[b"dnssec-sim-pub", &[algorithm.code()], private],
        algorithm.public_key_len().max(32),
    )
}

/// Expand a seed into `len` pseudo-random bytes by counter-mode hashing.
pub(crate) fn expand(parts: &[&[u8]], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let ctr = counter.to_be_bytes();
        let mut input: Vec<&[u8]> = parts.to_vec();
        input.push(&ctr);
        out.extend_from_slice(&sha256_parts(&input));
        counter += 1;
    }
    out.truncate(len);
    out
}

/// RFC 4034 Appendix B key-tag computation over DNSKEY RDATA.
pub fn key_tag(dnskey_rdata: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    for (i, &b) in dnskey_rdata.iter().enumerate() {
        if i % 2 == 0 {
            acc += (b as u32) << 8;
        } else {
            acc += b as u32;
        }
    }
    acc += (acc >> 16) & 0xffff;
    (acc & 0xffff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ka = KeyPair::generate(&mut a, Algorithm::EcdsaP256Sha256, 257);
        let kb = KeyPair::generate(&mut b, Algorithm::EcdsaP256Sha256, 257);
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let ka = KeyPair::generate(&mut a, Algorithm::EcdsaP256Sha256, 257);
        let kb = KeyPair::generate(&mut b, Algorithm::EcdsaP256Sha256, 257);
        assert_ne!(ka.public_key(), kb.public_key());
        assert_ne!(ka.key_tag(), kb.key_tag());
    }

    #[test]
    fn public_key_sizes_match_algorithm() {
        let mut rng = StdRng::seed_from_u64(3);
        for (alg, len) in [
            (Algorithm::Ed25519, 32),
            (Algorithm::EcdsaP256Sha256, 64),
            (Algorithm::RsaSha256, 260),
        ] {
            let k = KeyPair::generate(&mut rng, alg, 256);
            assert_eq!(k.public_key().len(), len, "{alg}");
        }
    }

    #[test]
    fn dnskey_rdata_layout() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = KeyPair::generate(&mut rng, Algorithm::Ed25519, 257);
        let rd = k.dnskey_rdata();
        assert_eq!(&rd[0..2], &257u16.to_be_bytes());
        assert_eq!(rd[2], 3);
        assert_eq!(rd[3], 15);
        assert_eq!(&rd[4..], k.public_key());
        assert!(k.is_ksk());
    }

    #[test]
    fn key_tag_known_value() {
        // Hand-computed: rdata [0x01, 0x01, 0x03, 0x0d] →
        // 0x0101 + 0x030d = 0x040e, no carry.
        assert_eq!(key_tag(&[0x01, 0x01, 0x03, 0x0d]), 0x040e);
        // Odd length: trailing byte counts as high octet.
        assert_eq!(key_tag(&[0x01, 0x01, 0x03]), 0x0101 + 0x0300);
    }

    #[test]
    fn key_tag_carry_folding() {
        // Force accumulation above 0xffff to exercise the fold.
        let rdata = vec![0xff; 600];
        let tag = key_tag(&rdata);
        // Reference computation in u64.
        let mut acc: u64 = 0;
        for (i, &b) in rdata.iter().enumerate() {
            acc += if i % 2 == 0 {
                (b as u64) << 8
            } else {
                b as u64
            };
        }
        acc += (acc >> 16) & 0xffff;
        assert_eq!(tag, (acc & 0xffff) as u16);
    }

    #[test]
    fn expand_lengths() {
        assert_eq!(expand(&[b"x"], 1).len(), 1);
        assert_eq!(expand(&[b"x"], 32).len(), 32);
        assert_eq!(expand(&[b"x"], 33).len(), 33);
        assert_eq!(expand(&[b"x"], 260).len(), 260);
        // Prefix property: longer expansion starts with shorter one.
        assert_eq!(expand(&[b"x"], 64)[..32], expand(&[b"x"], 32)[..]);
    }
}
