//! DNSSEC algorithm and digest-type registries (IANA), restricted to the
//! entries the measurement encounters.

use std::fmt;

/// DNSSEC signing algorithms.
///
/// Numbers match the IANA registry so wire data is faithful; the signature
/// *math* behind each is the simulated keyed-hash scheme (see crate docs),
/// differing only in conventional signature/key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 0 — the RFC 8078 "delete DS" sentinel. Never signs.
    Delete,
    /// Algorithm 8 — RSA/SHA-256 (simulated; 256-byte signatures).
    RsaSha256,
    /// Algorithm 13 — ECDSA P-256/SHA-256 (simulated; 64-byte signatures).
    EcdsaP256Sha256,
    /// Algorithm 15 — Ed25519 (simulated; 64-byte signatures).
    Ed25519,
    /// Anything else seen on the wire.
    Unknown(u8),
}

impl Algorithm {
    pub fn code(self) -> u8 {
        match self {
            Algorithm::Delete => 0,
            Algorithm::RsaSha256 => 8,
            Algorithm::EcdsaP256Sha256 => 13,
            Algorithm::Ed25519 => 15,
            Algorithm::Unknown(v) => v,
        }
    }

    pub fn from_code(v: u8) -> Self {
        match v {
            0 => Algorithm::Delete,
            8 => Algorithm::RsaSha256,
            13 => Algorithm::EcdsaP256Sha256,
            15 => Algorithm::Ed25519,
            other => Algorithm::Unknown(other),
        }
    }

    /// Whether a validator can verify signatures made with this algorithm.
    pub fn is_supported(self) -> bool {
        matches!(
            self,
            Algorithm::RsaSha256 | Algorithm::EcdsaP256Sha256 | Algorithm::Ed25519
        )
    }

    /// Conventional signature length in octets (what real implementations
    /// of the algorithm produce; the simulation matches the size).
    pub fn signature_len(self) -> usize {
        match self {
            Algorithm::RsaSha256 => 256,
            Algorithm::EcdsaP256Sha256 | Algorithm::Ed25519 => 64,
            Algorithm::Delete | Algorithm::Unknown(_) => 0,
        }
    }

    /// Conventional public-key length in octets.
    pub fn public_key_len(self) -> usize {
        match self {
            Algorithm::RsaSha256 => 260, // exponent framing + 2048-bit modulus
            Algorithm::EcdsaP256Sha256 => 64,
            Algorithm::Ed25519 => 32,
            Algorithm::Delete | Algorithm::Unknown(_) => 0,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Delete => write!(f, "DELETE"),
            Algorithm::RsaSha256 => write!(f, "RSASHA256"),
            Algorithm::EcdsaP256Sha256 => write!(f, "ECDSAP256SHA256"),
            Algorithm::Ed25519 => write!(f, "ED25519"),
            Algorithm::Unknown(v) => write!(f, "ALG{v}"),
        }
    }
}

/// DS digest types (RFC 4509, RFC 6605).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DigestType {
    /// 1 — SHA-1 (legacy).
    Sha1,
    /// 2 — SHA-256.
    Sha256,
    /// 4 — SHA-384.
    Sha384,
    Unknown(u8),
}

impl DigestType {
    pub fn code(self) -> u8 {
        match self {
            DigestType::Sha1 => 1,
            DigestType::Sha256 => 2,
            DigestType::Sha384 => 4,
            DigestType::Unknown(v) => v,
        }
    }

    pub fn from_code(v: u8) -> Self {
        match v {
            1 => DigestType::Sha1,
            2 => DigestType::Sha256,
            4 => DigestType::Sha384,
            other => DigestType::Unknown(other),
        }
    }

    /// Digest output length in octets; 0 for unknown types.
    pub fn digest_len(self) -> usize {
        match self {
            DigestType::Sha1 => 20,
            DigestType::Sha256 => 32,
            DigestType::Sha384 => 48,
            DigestType::Unknown(_) => 0,
        }
    }

    pub fn is_supported(self) -> bool {
        !matches!(self, DigestType::Unknown(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_codes_roundtrip() {
        for c in [0u8, 8, 13, 15, 7, 254] {
            assert_eq!(Algorithm::from_code(c).code(), c);
        }
    }

    #[test]
    fn delete_is_not_supported_for_signing() {
        assert!(!Algorithm::Delete.is_supported());
        assert!(!Algorithm::Unknown(200).is_supported());
        assert!(Algorithm::EcdsaP256Sha256.is_supported());
        assert!(Algorithm::Ed25519.is_supported());
        assert!(Algorithm::RsaSha256.is_supported());
    }

    #[test]
    fn signature_sizes_match_convention() {
        assert_eq!(Algorithm::EcdsaP256Sha256.signature_len(), 64);
        assert_eq!(Algorithm::Ed25519.signature_len(), 64);
        assert_eq!(Algorithm::RsaSha256.signature_len(), 256);
    }

    #[test]
    fn digest_codes_roundtrip() {
        for c in [1u8, 2, 4, 3, 99] {
            assert_eq!(DigestType::from_code(c).code(), c);
        }
    }

    #[test]
    fn digest_lengths() {
        assert_eq!(DigestType::Sha1.digest_len(), 20);
        assert_eq!(DigestType::Sha256.digest_len(), 32);
        assert_eq!(DigestType::Sha384.digest_len(), 48);
        assert_eq!(DigestType::Unknown(9).digest_len(), 0);
    }
}
