//! DS digest computation (RFC 4034 §5.1.4): the digest in a DS record is
//! `digest( canonical owner name ‖ DNSKEY RDATA )`.

use crate::algorithm::DigestType;
use crate::sha1::sha1;
use crate::sha2::{sha256, sha384};

/// Compute a DS digest over a DNSKEY.
///
/// `owner_wire` is the owner name in canonical (lowercase, uncompressed)
/// wire form; `dnskey_rdata` the full DNSKEY RDATA. Returns `None` for
/// unsupported digest types.
pub fn ds_digest(
    digest_type: DigestType,
    owner_wire: &[u8],
    dnskey_rdata: &[u8],
) -> Option<Vec<u8>> {
    let mut input = Vec::with_capacity(owner_wire.len() + dnskey_rdata.len());
    input.extend_from_slice(owner_wire);
    input.extend_from_slice(dnskey_rdata);
    Some(match digest_type {
        DigestType::Sha1 => sha1(&input).to_vec(),
        DigestType::Sha256 => sha256(&input).to_vec(),
        DigestType::Sha384 => sha384(&input).to_vec(),
        DigestType::Unknown(_) => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths_match_type() {
        let owner = b"\x07example\x00";
        let rdata = [1u8, 1, 3, 13, 9, 9, 9];
        assert_eq!(
            ds_digest(DigestType::Sha1, owner, &rdata).unwrap().len(),
            20
        );
        assert_eq!(
            ds_digest(DigestType::Sha256, owner, &rdata).unwrap().len(),
            32
        );
        assert_eq!(
            ds_digest(DigestType::Sha384, owner, &rdata).unwrap().len(),
            48
        );
        assert_eq!(ds_digest(DigestType::Unknown(9), owner, &rdata), None);
    }

    #[test]
    fn digest_depends_on_owner_and_key() {
        let rdata = [1u8, 1, 3, 13, 5];
        let a = ds_digest(DigestType::Sha256, b"\x01a\x00", &rdata).unwrap();
        let b = ds_digest(DigestType::Sha256, b"\x01b\x00", &rdata).unwrap();
        assert_ne!(a, b);
        let c = ds_digest(DigestType::Sha256, b"\x01a\x00", &[1, 1, 3, 13, 6]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn digest_is_plain_hash_of_concatenation() {
        let owner = b"\x02ch\x00";
        let rdata = [0u8, 0, 3, 13];
        let mut cat = owner.to_vec();
        cat.extend_from_slice(&rdata);
        assert_eq!(
            ds_digest(DigestType::Sha256, owner, &rdata).unwrap(),
            sha256(&cat).to_vec()
        );
    }
}
