//! The coordinator↔worker wire protocol: small fixed-layout messages
//! in CRC-framed byte frames.
//!
//! Workers run as threads today, but the protocol is process-agnostic
//! by construction: everything that crosses the channel is *encoded to
//! bytes* and decoded on the other side, so moving a worker into a
//! separate process is a transport swap (pipe → socket), not a
//! protocol change. That also means the decoder sits on an
//! untrusted-input path in the separate-process future — it is written
//! to the same panic-safety discipline as the DNS wire decoders: no
//! indexing, no unwraps, hostile or torn bytes degrade into
//! [`FrameError`], never abort.
//!
//! Frame layout: `len u32 LE | crc32(payload) u32 LE | payload`, where
//! the payload is `tag u8` followed by the message's fixed-width LE
//! fields.

use scan_journal::crc32;

/// Largest legal payload. Messages are small and fixed-layout; a frame
/// claiming more than this is corrupt, not merely unread.
pub const MAX_PAYLOAD: u32 = 256;

/// Why a worker gave a shard back instead of completing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The shard journal could not be written; the shard's state dir is
    /// still recoverable.
    JournalIo,
    /// The worker's lease was revoked mid-scan (the coordinator expired
    /// it); all journal writes after revocation were fenced off.
    Fenced,
}

/// One coordinator↔worker message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Worker announces itself (and the run it believes it's part of).
    Hello { worker: u32, run_id: u64 },
    /// Coordinator grants `lease` on `shard` of `epoch`, attempt number
    /// `attempt`. Single-epoch fabrics use `epoch: 0` throughout.
    Assign {
        epoch: u32,
        shard: u32,
        attempt: u32,
        lease: u64,
    },
    /// Worker liveness: `events` journaled so far under `lease`.
    Heartbeat {
        worker: u32,
        epoch: u32,
        shard: u32,
        lease: u64,
        events: u64,
    },
    /// Shard complete; stats are advisory (the merge reads journals,
    /// never this message).
    ShardDone {
        worker: u32,
        epoch: u32,
        shard: u32,
        lease: u64,
        zones: u64,
        queries: u64,
        duration: u64,
    },
    /// Shard given back; the coordinator decides retry vs abandon.
    ShardFailed {
        worker: u32,
        epoch: u32,
        shard: u32,
        lease: u64,
        reason: FailReason,
    },
    /// Coordinator asks the worker to exit cleanly.
    Shutdown,
}

/// A frame that could not be decoded. The channel is corrupt from this
/// point on; the peer should be treated as lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Frame length outside `1..=MAX_PAYLOAD`.
    BadLength,
    /// Payload CRC mismatch.
    BadCrc,
    /// Unknown message tag.
    BadTag,
    /// Payload shorter (or longer) than its tag's fixed layout.
    BadLayout,
}

const TAG_HELLO: u8 = 1;
const TAG_ASSIGN: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_DONE: u8 = 4;
const TAG_FAILED: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;

const REASON_JOURNAL_IO: u8 = 1;
const REASON_FENCED: u8 = 2;

/// Encode one message as a complete frame.
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48);
    match *msg {
        Msg::Hello { worker, run_id } => {
            payload.push(TAG_HELLO);
            payload.extend_from_slice(&worker.to_le_bytes());
            payload.extend_from_slice(&run_id.to_le_bytes());
        }
        Msg::Assign {
            epoch,
            shard,
            attempt,
            lease,
        } => {
            payload.push(TAG_ASSIGN);
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&attempt.to_le_bytes());
            payload.extend_from_slice(&lease.to_le_bytes());
        }
        Msg::Heartbeat {
            worker,
            epoch,
            shard,
            lease,
            events,
        } => {
            payload.push(TAG_HEARTBEAT);
            payload.extend_from_slice(&worker.to_le_bytes());
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&lease.to_le_bytes());
            payload.extend_from_slice(&events.to_le_bytes());
        }
        Msg::ShardDone {
            worker,
            epoch,
            shard,
            lease,
            zones,
            queries,
            duration,
        } => {
            payload.push(TAG_DONE);
            payload.extend_from_slice(&worker.to_le_bytes());
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&lease.to_le_bytes());
            payload.extend_from_slice(&zones.to_le_bytes());
            payload.extend_from_slice(&queries.to_le_bytes());
            payload.extend_from_slice(&duration.to_le_bytes());
        }
        Msg::ShardFailed {
            worker,
            epoch,
            shard,
            lease,
            reason,
        } => {
            payload.push(TAG_FAILED);
            payload.extend_from_slice(&worker.to_le_bytes());
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&lease.to_le_bytes());
            payload.push(match reason {
                FailReason::JournalIo => REASON_JOURNAL_IO,
                FailReason::Fenced => REASON_FENCED,
            });
        }
        Msg::Shutdown => payload.push(TAG_SHUTDOWN),
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Take the next `n` bytes off the front of `buf`, if present.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

fn take_u8(buf: &mut &[u8]) -> Option<u8> {
    take(buf, 1)?.first().copied()
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(take(buf, 4)?.try_into().ok()?))
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(take(buf, 8)?.try_into().ok()?))
}

/// Decode one payload (tag + fields). `None` maps to
/// [`FrameError::BadLayout`] at the caller.
fn decode_payload(mut p: &[u8]) -> Result<Msg, FrameError> {
    let tag = take_u8(&mut p).ok_or(FrameError::BadLayout)?;
    let msg = match tag {
        TAG_HELLO => {
            let worker = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let run_id = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            Msg::Hello { worker, run_id }
        }
        TAG_ASSIGN => {
            let epoch = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let shard = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let attempt = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let lease = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            Msg::Assign {
                epoch,
                shard,
                attempt,
                lease,
            }
        }
        TAG_HEARTBEAT => {
            let worker = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let epoch = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let shard = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let lease = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            let events = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            Msg::Heartbeat {
                worker,
                epoch,
                shard,
                lease,
                events,
            }
        }
        TAG_DONE => {
            let worker = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let epoch = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let shard = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let lease = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            let zones = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            let queries = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            let duration = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            Msg::ShardDone {
                worker,
                epoch,
                shard,
                lease,
                zones,
                queries,
                duration,
            }
        }
        TAG_FAILED => {
            let worker = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let epoch = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let shard = take_u32(&mut p).ok_or(FrameError::BadLayout)?;
            let lease = take_u64(&mut p).ok_or(FrameError::BadLayout)?;
            let reason = match take_u8(&mut p).ok_or(FrameError::BadLayout)? {
                REASON_JOURNAL_IO => FailReason::JournalIo,
                REASON_FENCED => FailReason::Fenced,
                _ => return Err(FrameError::BadLayout),
            };
            Msg::ShardFailed {
                worker,
                epoch,
                shard,
                lease,
                reason,
            }
        }
        TAG_SHUTDOWN => Msg::Shutdown,
        _ => return Err(FrameError::BadTag),
    };
    if p.is_empty() {
        Ok(msg)
    } else {
        // Trailing bytes mean the peer speaks a different layout.
        Err(FrameError::BadLayout)
    }
}

/// Incremental frame decoder: feed it byte chunks as they arrive,
/// drain complete messages with [`next`](Self::next).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily).
    pos: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // partial frame plus whatever arrived in this chunk.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, if one is buffered.
    /// `Ok(None)` means "need more bytes". Any error poisons the
    /// stream: the caller must drop the channel.
    // Not an Iterator: `Ok(None)` means "need more bytes", not "end of
    // stream", and errors must stop the caller — the Iterator contract
    // would invite silently skipping both.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Msg>, FrameError> {
        let mut view = self.buf.get(self.pos..).unwrap_or(&[]);
        let Some(len) = take_u32(&mut view) else {
            return Ok(None);
        };
        if len == 0 || len > MAX_PAYLOAD {
            return Err(FrameError::BadLength);
        }
        let Some(crc) = take_u32(&mut view) else {
            return Ok(None);
        };
        let Some(payload) = take(&mut view, len as usize) else {
            return Ok(None);
        };
        if crc32(payload) != crc {
            return Err(FrameError::BadCrc);
        }
        let msg = decode_payload(payload)?;
        self.pos += 8 + len as usize;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello {
                worker: 3,
                run_id: 0xDEAD_BEEF,
            },
            Msg::Assign {
                epoch: 5,
                shard: 7,
                attempt: 2,
                lease: 99,
            },
            Msg::Heartbeat {
                worker: 3,
                epoch: 5,
                shard: 7,
                lease: 99,
                events: 41,
            },
            Msg::ShardDone {
                worker: 3,
                epoch: 5,
                shard: 7,
                lease: 99,
                zones: 120,
                queries: 4321,
                duration: 5_000_000,
            },
            Msg::ShardFailed {
                worker: 3,
                epoch: 5,
                shard: 7,
                lease: 99,
                reason: FailReason::Fenced,
            },
            Msg::ShardFailed {
                worker: 1,
                epoch: 0,
                shard: 0,
                lease: 1,
                reason: FailReason::JournalIo,
            },
            Msg::Shutdown,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        let mut dec = FrameDecoder::new();
        for m in all_msgs() {
            dec.extend(&encode_msg(&m));
            assert_eq!(dec.next().unwrap(), Some(m));
        }
        assert_eq!(dec.next().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let msgs = all_msgs();
        let stream: Vec<u8> = msgs.iter().flat_map(encode_msg).collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn corrupt_payload_is_a_crc_error() {
        let mut frame = encode_msg(&Msg::Shutdown);
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        assert_eq!(dec.next(), Err(FrameError::BadCrc));
    }

    #[test]
    fn oversized_length_is_rejected_not_buffered() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_PAYLOAD + 1).to_le_bytes());
        dec.extend(&[0u8; 8]);
        assert_eq!(dec.next(), Err(FrameError::BadLength));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let payload = [200u8];
        let mut frame = Vec::new();
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        assert_eq!(dec.next(), Err(FrameError::BadTag));
    }

    #[test]
    fn truncated_and_oversized_layouts_are_rejected() {
        // Hello with one field missing.
        let mut payload = vec![1u8];
        payload.extend_from_slice(&3u32.to_le_bytes());
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        assert_eq!(dec.next(), Err(FrameError::BadLayout));

        // Shutdown with trailing junk.
        let payload = [6u8, 0u8];
        let mut frame = Vec::new();
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        assert_eq!(dec.next(), Err(FrameError::BadLayout));
    }
}
