//! Bounded-memory streaming merge: shard journals → one final report.
//!
//! The merge never materializes the full zone list. It loads **one
//! shard's** recovered events at a time, reduces them to
//! latest-per-zone, emits the zones in canonical order to a
//! [`MergeSink`], folds them into O(1) aggregate state ([`Figure1`],
//! degradation counters, totals, rolling digests), and drops the shard
//! before touching the next. Peak residency is therefore the largest
//! shard, regardless of world size — the property that unlocks
//! registry-scale worlds under a fixed memory ceiling
//! (`peak_resident_zones` is tracked and asserted in tests).
//!
//! **Determinism contract.** Every shard is scanned sequentially by a
//! fresh scanner, so a shard's journal content is a pure function of
//! (world, shard seed slice, policy) — independent of worker count,
//! scheduling, and how many times the shard was killed and resumed.
//! The merge visits shards in shard-id order and zones in canonical
//! order, so the [`MergedReport`] is byte-identical across worker
//! counts and fault plans (`tests/fabric_recovery.rs`).

use bootscan::report::{DegradationReport, Figure1};
use bootscan::{
    AbClass, AddrHealth, CdsClass, DnssecClass, Identified, RetryStats, ScanResults, ZoneEvent,
    ZoneScan,
};
use dns_wire::name::Name;
use netsim::Addr;
use scan_journal::fnv64;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io;

/// Receives merged zones one at a time, in canonical order.
///
/// Implementations decide how much to retain: [`NullMergeSink`] keeps
/// nothing (the aggregate report is enough for the paper's tables),
/// [`CollectSink`] materializes a full [`ScanResults`] for callers
/// that want per-zone access and can afford the memory.
pub trait MergeSink {
    fn on_zone(&mut self, zone: &ZoneScan);
}

/// Keep nothing; the aggregates in [`MergedReport`] are the output.
#[derive(Debug, Default)]
pub struct NullMergeSink;

impl MergeSink for NullMergeSink {
    fn on_zone(&mut self, _zone: &ZoneScan) {}
}

/// Materialize every merged zone (trades the memory bound away).
#[derive(Debug, Default)]
pub struct CollectSink {
    pub zones: Vec<ZoneScan>,
}

impl MergeSink for CollectSink {
    fn on_zone(&mut self, zone: &ZoneScan) {
        self.zones.push(zone.clone());
    }
}

impl CollectSink {
    /// Package the collected zones as a [`ScanResults`], using the
    /// merged report's virtual makespan as the scan duration.
    pub fn into_results(self, report: &MergedReport) -> ScanResults {
        let total_queries = self.zones.iter().map(|z| u64::from(z.queries)).sum();
        ScanResults {
            zones: self.zones,
            simulated_duration: report.virtual_makespan_us,
            total_queries,
        }
    }
}

/// The merged final report: everything the paper's analysis reads,
/// plus digests strong enough that byte-equality of two serialized
/// `MergedReport`s implies byte-equality of the full zone streams they
/// summarize.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MergedReport {
    /// Zones in the merged stream (= seed list size).
    pub zones_total: u64,
    /// Figure 1 aggregate, folded zone by zone.
    pub figure1: Figure1,
    /// Degradation counters (the per-zone degraded list is not
    /// materialized — O(1) merge state only).
    pub degradation: DegradationReport,
    pub total_queries: u64,
    /// Virtual time of the slowest shard (what a fully parallel fabric
    /// would take).
    pub virtual_makespan_us: u64,
    /// Summed virtual time across shards (what one worker would take).
    pub virtual_total_us: u64,
    /// FNV-1a over the serialized full zone records, in emission order.
    pub zone_stream_digest: u64,
    /// Same, with cost counters zeroed (the PR-4 evidence plane).
    pub evidence_digest: u64,
    /// FNV-1a over the accumulated per-address health table.
    pub health_digest: u64,
    /// Zones emitted as explicit Indeterminate placeholders because
    /// their shard exhausted its attempt budget. Never silent: each is
    /// also named in `abandoned_zones`.
    pub indeterminate_placeholders: u64,
    /// FQDNs of abandoned zones, in emission order.
    pub abandoned_zones: Vec<String>,
}

/// Operational (non-deterministic) counters for one fabric run. Kept
/// separate from [`MergedReport`] on purpose: reassignment counts vary
/// with scheduling and faults, and must never leak into the
/// byte-compared report.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FabricOps {
    pub workers_spawned: u32,
    pub workers_lost: u32,
    pub lease_expiries: u32,
    pub reassignments: u32,
    pub shards_completed: u32,
    pub shards_abandoned: u32,
    /// Attempts consumed per shard (index = shard id).
    pub attempts: Vec<u32>,
    /// Peak zones resident in the merge at any instant.
    pub peak_resident_zones: usize,
    /// Size of the largest shard — the theoretical residency bound the
    /// peak must stay within.
    pub largest_shard: usize,
}

/// Streaming merge state. Absorb shards in shard-id order, then
/// [`finish`](Self::finish).
pub struct StreamingMerge {
    report: MergedReport,
    health: BTreeMap<Addr, AddrHealth>,
    peak_resident: usize,
}

impl Default for StreamingMerge {
    fn default() -> Self {
        StreamingMerge::new()
    }
}

impl StreamingMerge {
    pub fn new() -> StreamingMerge {
        StreamingMerge {
            report: MergedReport::default(),
            health: BTreeMap::new(),
            peak_resident: 0,
        }
    }

    /// Fold one shard's recovered journal events into the merge.
    /// `zones` is the shard's seed slice in canonical order;
    /// `abandoned` marks a shard whose attempt budget ran out (its
    /// unscanned zones become explicit Indeterminate placeholders).
    /// The events are consumed and dropped before this returns — the
    /// residency bound.
    pub fn absorb_shard(
        &mut self,
        zones: &[Name],
        events: Vec<(u64, ZoneEvent)>,
        abandoned: bool,
        sink: &mut dyn MergeSink,
    ) -> io::Result<()> {
        // Latest-per-zone: a re-scan pass event supersedes the main
        // pass for the same zone, exactly like ResumeState.
        let mut latest: BTreeMap<Vec<u8>, ZoneScan> = BTreeMap::new();
        let mut shard_duration: u64 = 0;
        for (_, event) in events {
            shard_duration += event.duration_delta;
            for (addr, delta) in &event.effects.health {
                let h = self.health.entry(*addr).or_default();
                h.successes += delta.successes;
                h.failures += delta.failures;
                h.breaker_skips += delta.breaker_skips;
            }
            latest.insert(event.scan.name.to_wire(), event.scan);
        }
        self.peak_resident = self.peak_resident.max(latest.len());
        for name in zones {
            match latest.remove(&name.to_wire()) {
                Some(zone) => self.emit(&zone, sink),
                None if abandoned => {
                    let placeholder = indeterminate_placeholder(name);
                    self.report.indeterminate_placeholders += 1;
                    self.report.abandoned_zones.push(name.to_string_fqdn());
                    self.emit(&placeholder, sink);
                }
                None => {
                    // A completed shard must cover its whole slice; a
                    // hole here is journal corruption, not degradation.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("completed shard is missing zone {}", name.to_string_fqdn()),
                    ));
                }
            }
        }
        self.report.virtual_makespan_us = self.report.virtual_makespan_us.max(shard_duration);
        self.report.virtual_total_us += shard_duration;
        Ok(())
    }

    fn emit(&mut self, zone: &ZoneScan, sink: &mut dyn MergeSink) {
        self.report.zones_total += 1;
        self.report.total_queries += u64::from(zone.queries);
        self.report.figure1.absorb(zone);
        self.report.degradation.absorb_counters(zone);
        let full = serde_json::to_string(zone).unwrap_or_default();
        self.report.zone_stream_digest = fnv64(&[
            &self.report.zone_stream_digest.to_le_bytes(),
            full.as_bytes(),
        ]);
        let mut evidence = zone.clone();
        evidence.queries = 0;
        evidence.elapsed = 0;
        evidence.retry_stats = RetryStats::default();
        let ev = serde_json::to_string(&evidence).unwrap_or_default();
        self.report.evidence_digest =
            fnv64(&[&self.report.evidence_digest.to_le_bytes(), ev.as_bytes()]);
        sink.on_zone(zone);
    }

    /// Seal the report. Returns it plus the observed peak residency.
    pub fn finish(mut self) -> (MergedReport, usize) {
        let mut digest: u64 = 0;
        for (addr, h) in &self.health {
            digest = fnv64(&[
                &digest.to_le_bytes(),
                &addr.to_bytes(),
                &h.successes.to_le_bytes(),
                &h.failures.to_le_bytes(),
                &h.breaker_skips.to_le_bytes(),
            ]);
        }
        self.report.health_digest = digest;
        (self.report, self.peak_resident)
    }
}

/// The explicit "we could not scan this" record for an abandoned
/// shard's zone: Indeterminate and degraded, never silently dropped.
pub fn indeterminate_placeholder(name: &Name) -> ZoneScan {
    ZoneScan {
        name: name.clone(),
        ns_names: Vec::new(),
        parent_ds: Vec::new(),
        ns_observations: Vec::new(),
        signal_observations: Vec::new(),
        dnssec: DnssecClass::Indeterminate,
        cds: CdsClass::Absent,
        ab: AbClass::NoSignal,
        operator: Identified::Unknown,
        queries: 0,
        elapsed: 0,
        sampled: false,
        retry_stats: RetryStats::default(),
        degraded: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    fn event_for(zone: &str, queries: u32) -> (u64, ZoneEvent) {
        let scan = ZoneScan {
            queries,
            dnssec: DnssecClass::Unsigned,
            degraded: false,
            ..indeterminate_placeholder(&name!(zone))
        };
        (
            0,
            ZoneEvent {
                pass: 0,
                duration_delta: 10,
                scan,
                effects: Default::default(),
            },
        )
    }

    #[test]
    fn merge_is_order_stable_and_counts_everything() {
        let zones = vec![name!("a.example"), name!("b.example")];
        let events = vec![event_for("a.example", 3), event_for("b.example", 4)];
        let mut m = StreamingMerge::new();
        let mut sink = CollectSink::default();
        m.absorb_shard(&zones, events, false, &mut sink).unwrap();
        let (report, peak) = m.finish();
        assert_eq!(report.zones_total, 2);
        assert_eq!(report.total_queries, 7);
        assert_eq!(report.figure1.unsigned, 2);
        assert_eq!(peak, 2);
        assert_eq!(sink.zones.len(), 2);
        assert!(report.abandoned_zones.is_empty());
    }

    #[test]
    fn abandoned_shard_zones_become_explicit_placeholders() {
        let zones = vec![name!("a.example"), name!("b.example")];
        // Only a.example got scanned before the shard was abandoned.
        let events = vec![event_for("a.example", 3)];
        let mut m = StreamingMerge::new();
        let mut sink = NullMergeSink;
        m.absorb_shard(&zones, events, true, &mut sink).unwrap();
        let (report, _) = m.finish();
        assert_eq!(report.zones_total, 2);
        assert_eq!(report.indeterminate_placeholders, 1);
        assert_eq!(report.abandoned_zones, vec!["b.example.".to_string()]);
        assert_eq!(report.figure1.indeterminate, 1);
        assert_eq!(report.degradation.degraded_zones, 1);
    }

    #[test]
    fn completed_shard_with_missing_zone_is_corruption() {
        let zones = vec![name!("a.example"), name!("b.example")];
        let events = vec![event_for("a.example", 3)];
        let mut m = StreamingMerge::new();
        let err = m
            .absorb_shard(&zones, events, false, &mut NullMergeSink)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rescan_events_supersede_main_pass() {
        let zones = vec![name!("a.example")];
        let mut better = event_for("a.example", 9);
        better.0 = 1;
        better.1.pass = 1;
        let events = vec![event_for("a.example", 3), better];
        let mut m = StreamingMerge::new();
        let mut sink = CollectSink::default();
        m.absorb_shard(&zones, events, false, &mut sink).unwrap();
        assert_eq!(sink.zones.len(), 1);
        assert_eq!(sink.zones.first().map(|z| z.queries), Some(9));
    }
}
