//! The worker side of the fabric: lease-fenced shard scanning.
//!
//! A worker owns nothing between assignments. On `Assign(shard,
//! attempt, lease)` it recovers the shard's journal from the shard
//! state directory, builds a **fresh scanner** from the factory (cold
//! caches — the per-shard determinism contract), replays recovered
//! side effects, and scans the shard sequentially, journaling every
//! zone event write-ahead.
//!
//! **Fencing.** Every journal append happens while holding the
//! worker's [`Fence`] lock, and only if the append's lease has not
//! been revoked. The coordinator's revoke takes the same lock — so
//! once `revoke` returns, no append under the old lease can ever land,
//! and the shard's journal can be handed to another worker without
//! torn-write races. A fenced worker is *not* dead: it reports
//! `ShardFailed(Fenced)` and waits for new work.

use crate::channel::{PipeReader, PipeWriter};
use crate::faults::WorkerFault;
use crate::protocol::{FailReason, Msg};
use bootscan::scanner::Scanner;
use bootscan::{ProgressSink, ZoneEvent};
use dns_wire::name::Name;
use scan_journal::{recover, JournalHeader, JournalSink};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Builds a fresh scanner for one shard attempt. Fabric workers never
/// share scanner state: cold caches per shard are what make shard
/// results independent of scheduling.
pub type ScannerFactory<'a> = &'a (dyn Fn() -> Arc<Scanner> + Sync);

/// Everything one shard attempt needs, resolved by the [`ShardWork`]
/// driving the fleet. The scanner must be **fresh per attempt** (cold
/// caches apart from deterministic pre-seeding such as a distributed
/// carry ledger): shard results must be a pure function of
/// `(world, zones, pre-seeded state)`, never of scheduling history.
pub struct ShardAssignment {
    /// The shard's seed slice, in canonical order.
    pub zones: Arc<Vec<Name>>,
    /// The shard's journal directory (a [`Namespace`](scan_journal::Namespace) leaf).
    pub dir: PathBuf,
    /// The header every journal under `dir` must carry.
    pub header: JournalHeader,
    /// A fresh, deterministically pre-seeded scanner for this attempt.
    pub scanner: Arc<Scanner>,
}

/// What the fleet scans: a source of shard assignments, keyed by
/// `(epoch, shard)`. One-shot fabrics ignore the epoch (always 0);
/// the continuous service resolves each epoch's delta plan and
/// partitioned carry ledger here. `assignment` returning `None` means
/// the epoch is no longer current — the worker gives the shard back as
/// fenced, which is exactly the cross-epoch fencing guarantee (a stale
/// assignment can never append under a superseded epoch's namespace,
/// because it never gets a sink for it).
pub trait ShardWork: Sync {
    /// Resolve the assignment for `shard` of `epoch`, or `None` if that
    /// epoch is no longer scannable.
    fn assignment(&self, epoch: u32, shard: u32) -> Option<ShardAssignment>;
    /// Fault to inject for this `(epoch, shard, attempt)`, if any.
    fn fault(&self, epoch: u32, shard: u32, attempt: u32) -> Option<WorkerFault>;
    /// Whether `worker` is permanently dead (dies on first assignment).
    fn worker_dead(&self, worker: u32) -> bool;
}

/// Write fence for one worker's current lease.
#[derive(Debug, Default)]
pub struct Fence {
    /// Highest revoked lease id (leases are globally unique and
    /// monotonically increasing, so `lease <= revoked` means dead).
    revoked: Mutex<u64>,
    cv: Condvar,
}

impl Fence {
    /// Run `f` (a journal append) under the fence, unless `lease` has
    /// been revoked. Returns `None` when fenced.
    pub fn with_lease<T>(&self, lease: u64, f: impl FnOnce() -> T) -> Option<T> {
        let revoked = self.revoked.lock().unwrap_or_else(PoisonError::into_inner);
        if lease <= *revoked {
            return None;
        }
        // The lock is held across `f`: a concurrent revoke blocks until
        // this append completes, and every later append sees it.
        Some(f())
    }

    /// Revoke every lease up to and including `lease`. After this
    /// returns, no append under a revoked lease can land.
    pub fn revoke_through(&self, lease: u64) {
        let mut revoked = self.revoked.lock().unwrap_or_else(PoisonError::into_inner);
        if lease > *revoked {
            *revoked = lease;
        }
        drop(revoked);
        self.cv.notify_all();
    }

    /// Block until `lease` is revoked (used by the `Stall` fault to
    /// simulate a hung worker that only "dies" once its lease expires).
    pub fn wait_revoked(&self, lease: u64) {
        let mut revoked = self.revoked.lock().unwrap_or_else(PoisonError::into_inner);
        while lease > *revoked {
            revoked = self
                .cv
                .wait(revoked)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Why a shard attempt ended without `ShardDone`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptEnd {
    /// Injected death: the worker thread must exit (simulated SIGKILL).
    Died,
    /// Lease revoked mid-scan.
    Fenced,
    /// Shard journal unwritable.
    JournalIo,
}

struct SinkState {
    /// Events journaled by *this attempt* (resumed events don't count:
    /// fault event-indices are per-attempt, which keeps kill points
    /// meaningful on re-runs).
    events: u64,
    end: Option<AttemptEnd>,
}

/// The per-attempt [`ProgressSink`]: fence-guarded journal append,
/// heartbeats, and fault injection.
struct ShardSink<'a> {
    inner: JournalSink,
    fence: &'a Fence,
    lease: u64,
    fault: Option<WorkerFault>,
    out: &'a PipeWriter,
    worker: u32,
    epoch: u32,
    shard: u32,
    heartbeat_every: u64,
    state_dir: PathBuf,
    state: Mutex<SinkState>,
}

impl ShardSink<'_> {
    fn end(&self) -> Option<AttemptEnd> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .end
    }
}

impl ProgressSink for ShardSink<'_> {
    fn on_zone(&self, event: &ZoneEvent) -> bool {
        let k = {
            let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.events
        };
        match self.fault {
            Some(WorkerFault::Kill { at_event }) if k == at_event => {
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.end = Some(AttemptEnd::Died);
                return false;
            }
            Some(WorkerFault::Stall { at_event }) if k == at_event => {
                // Hang until the coordinator gives up on us, then die.
                self.fence.wait_revoked(self.lease);
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.end = Some(AttemptEnd::Died);
                return false;
            }
            Some(WorkerFault::SlowDrain) => std::thread::yield_now(),
            _ => {}
        }
        let fence = self.fence;
        // bootscan-allow(L003): the fence must gate append + group
        // commit atomically — a concurrent revoke has to block until
        // this in-flight on_zone lands, or a fenced-off worker could
        // write after its successor started. Holding `revoked` across
        // the sink is the fencing contract, not an oversight.
        let appended = fence.with_lease(self.lease, || self.inner.on_zone(event));
        match appended {
            None => {
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.end = Some(AttemptEnd::Fenced);
                return false;
            }
            Some(false) => {
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.end = Some(AttemptEnd::JournalIo);
                return false;
            }
            Some(true) => {}
        }
        let events = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.events += 1;
            state.events
        };
        if let Some(WorkerFault::KillDuringCheckpoint { at_event }) = self.fault {
            if k == at_event {
                // Die mid-checkpoint: the checkpoint gets written, then
                // a power-cut artifact — one bucket truncated to zero
                // length. Recovery must shrug this off (tolerated when
                // the bucket was empty; journal-first fallback when it
                // was not).
                let _ = self.inner.checkpoint_now();
                truncate_one_bucket(&self.state_dir);
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.end = Some(AttemptEnd::Died);
                return false;
            }
        }
        if self.heartbeat_every > 0 && events % self.heartbeat_every == 0 {
            self.out.send(&Msg::Heartbeat {
                worker: self.worker,
                epoch: self.epoch,
                shard: self.shard,
                lease: self.lease,
                events,
            });
        }
        true
    }
}

/// Truncate one checkpoint bucket file to zero length, preferring an
/// empty (header-only) bucket so the tolerated-debris recovery path is
/// exercised; falls back to any bucket (checkpoint invalidated, journal
/// authoritative). Best effort: a missing checkpoint truncates nothing.
fn truncate_one_bucket(dir: &Path) {
    let mut fallback: Option<PathBuf> = None;
    for k in 0..JournalSink::DEFAULT_SHARDS {
        let p = scan_journal::shard_path(dir, k);
        match fs::metadata(&p) {
            Ok(m) if m.len() == 18 => {
                let _ = fs::write(&p, b"");
                return;
            }
            Ok(_) => fallback = fallback.or(Some(p)),
            Err(_) => {}
        }
    }
    if let Some(p) = fallback {
        let _ = fs::write(&p, b"");
    }
}

/// Everything a worker thread needs.
pub(crate) struct WorkerCtx<'a> {
    pub worker: u32,
    pub run_id: u64,
    pub work: &'a dyn ShardWork,
    pub fence: &'a Fence,
    pub heartbeat_every: u64,
}

/// The worker thread body: serve assignments until shutdown or death.
/// Returning from this function drops the out-pipe writer — the
/// coordinator observes EOF, exactly like a SIGKILL'd process.
pub(crate) fn worker_main(ctx: WorkerCtx<'_>, mut inbox: PipeReader, out: PipeWriter) {
    out.send(&Msg::Hello {
        worker: ctx.worker,
        run_id: ctx.run_id,
    });
    loop {
        let msg = match inbox.recv_blocking() {
            Ok(Some(msg)) => msg,
            // Coordinator gone or channel corrupt: exit.
            Ok(None) | Err(_) => return,
        };
        let (epoch, shard, attempt, lease) = match msg {
            Msg::Shutdown => return,
            Msg::Assign {
                epoch,
                shard,
                attempt,
                lease,
            } => (epoch, shard, attempt, lease),
            // Unexpected message kinds are ignored (forward compat).
            _ => continue,
        };
        if ctx.work.worker_dead(ctx.worker) {
            // Permanently dead worker: dies the moment it gets work.
            return;
        }
        match run_shard(&ctx, &out, epoch, shard, attempt, lease) {
            Ok(Some((zones, queries, duration))) => out.send(&Msg::ShardDone {
                worker: ctx.worker,
                epoch,
                shard,
                lease,
                zones,
                queries,
                duration,
            }),
            // KillBeforeHandoff: work is journaled, report never sent.
            Ok(None) => return,
            Err(AttemptEnd::Died) => return,
            Err(AttemptEnd::Fenced) => out.send(&Msg::ShardFailed {
                worker: ctx.worker,
                epoch,
                shard,
                lease,
                reason: FailReason::Fenced,
            }),
            Err(AttemptEnd::JournalIo) => out.send(&Msg::ShardFailed {
                worker: ctx.worker,
                epoch,
                shard,
                lease,
                reason: FailReason::JournalIo,
            }),
        }
    }
}

/// One shard attempt: recover → fresh scanner → replay effects →
/// sequential scan with the fence-guarded journal sink.
fn run_shard(
    ctx: &WorkerCtx<'_>,
    out: &PipeWriter,
    epoch: u32,
    shard: u32,
    attempt: u32,
    lease: u64,
) -> Result<Option<(u64, u64, u64)>, AttemptEnd> {
    // A stale-epoch assignment resolves to no work: give the shard back
    // as fenced without ever opening a journal — epoch N−1's namespace
    // is unreachable from here by construction.
    let Some(assignment) = ctx.work.assignment(epoch, shard) else {
        return Err(AttemptEnd::Fenced);
    };
    let ShardAssignment {
        zones,
        dir,
        header,
        scanner,
    } = assignment;
    let recovery = recover(&dir, header).map_err(|_| AttemptEnd::JournalIo)?;
    recovery.apply_to(&scanner);
    let resume = recovery.resume_state();
    let inner = JournalSink::resume(&dir, &recovery).map_err(|_| AttemptEnd::JournalIo)?;
    let fault = ctx.work.fault(epoch, shard, attempt);
    let sink = ShardSink {
        inner,
        fence: ctx.fence,
        lease,
        fault,
        out,
        worker: ctx.worker,
        epoch,
        shard,
        heartbeat_every: ctx.heartbeat_every,
        state_dir: dir,
        state: Mutex::new(SinkState {
            events: 0,
            end: None,
        }),
    };
    let results = scanner.scan_shard_with(&zones, Some(&sink), Some(resume));
    if let Some(end) = sink.end() {
        return Err(end);
    }
    if matches!(fault, Some(WorkerFault::KillBeforeHandoff)) {
        return Ok(None);
    }
    Ok(Some((
        results.zones.len() as u64,
        results.total_queries,
        results.simulated_duration,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_blocks_appends_after_revoke() {
        let fence = Fence::default();
        assert_eq!(fence.with_lease(5, || 1), Some(1));
        fence.revoke_through(5);
        assert_eq!(fence.with_lease(5, || 1), None);
        // A newer lease on the same fence still works.
        assert_eq!(fence.with_lease(6, || 2), Some(2));
    }

    #[test]
    fn wait_revoked_unblocks_on_revoke() {
        let fence = Arc::new(Fence::default());
        let f2 = Arc::clone(&fence);
        let t = std::thread::spawn(move || f2.wait_revoked(3));
        fence.revoke_through(3);
        t.join().unwrap();
        // Already-revoked leases return immediately.
        fence.wait_revoked(2);
    }
}
