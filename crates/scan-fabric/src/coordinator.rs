//! The coordinator: shard dispatch, lease supervision, deterministic
//! work-stealing, and the final merge.
//!
//! The coordinator is intentionally *not* deterministic in its
//! scheduling — which worker gets which shard, when a lease expires,
//! how often a shard is retried all depend on real thread timing. The
//! fabric's determinism lives one layer down: every shard attempt is a
//! sequential scan by a fresh scanner resuming from the shard journal,
//! so the journal's final content (and therefore the merged report) is
//! a pure function of (world, shard plan, policy) no matter what the
//! coordinator did along the way. Scheduling noise lands in
//! [`FabricOps`]; the byte-compared [`MergedReport`] cannot see it.

use crate::channel::{pipe, PipeReader, PipeWriter, Polled, WakeSet};
use crate::faults::FabricFaultPlan;
use crate::merge::{FabricOps, MergeSink, MergedReport, StreamingMerge};
use crate::protocol::Msg;
use crate::shard::ShardPlan;
use crate::worker::{worker_main, Fence, ScannerFactory, WorkerCtx};
use scan_journal::{recover, shard_header, shard_state_dir};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Fabric sizing and failure-detection knobs.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Worker threads.
    pub workers: usize,
    /// Zone-space shards. More shards than workers gives the
    /// coordinator stealable units when a worker dies; shard count (not
    /// worker count) fixes the partition, so reports are comparable
    /// across fleet sizes only when `shards` matches.
    pub shards: u32,
    /// Attempts per shard before it is abandoned (its zones then
    /// surface as explicit Indeterminate placeholders).
    pub max_attempts: u32,
    /// Heartbeat every N journaled events (0 = no heartbeats).
    pub heartbeat_every: u64,
    /// Quiet poll ticks (of `poll_wait` each) before a worker's lease
    /// is revoked and its shard stolen.
    pub lease_timeout_polls: u32,
    /// How long one coordinator poll tick parks waiting for worker
    /// messages.
    pub poll_wait: Duration,
    /// Replacement workers the coordinator may spawn when workers die
    /// (each replacement gets a fresh worker id, like a new process
    /// pid). Once exhausted, losses shrink the fleet; if the fleet
    /// empties, unfinished shards are abandoned — never lost silently.
    pub max_respawns: u32,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: 4,
            shards: 8,
            max_attempts: 4,
            heartbeat_every: 1,
            lease_timeout_polls: 40,
            poll_wait: Duration::from_millis(25),
            max_respawns: 64,
        }
    }
}

/// The fabric's output: the deterministic report and the operational
/// (scheduling-dependent) counters, strictly separated.
#[derive(Debug)]
pub struct FabricOutput {
    pub report: MergedReport,
    pub ops: FabricOps,
}

/// A shard waiting to run: retry round-robin state.
#[derive(Debug, Clone, Copy)]
struct PendingShard {
    shard: u32,
    attempt: u32,
    /// Coordinator round this entry becomes eligible (retry backoff).
    ready_round: u64,
}

/// What a worker slot is doing.
struct WorkerSlot {
    tx: PipeWriter,
    rx: PipeReader,
    fence: Arc<Fence>,
    alive: bool,
    running: Option<RunningShard>,
}

#[derive(Debug, Clone, Copy)]
struct RunningShard {
    shard: u32,
    attempt: u32,
    lease: u64,
    silent_polls: u32,
}

/// Everything a spawned worker thread borrows from the fabric run.
#[derive(Clone, Copy)]
struct SpawnEnv<'env> {
    run_id: u64,
    heartbeat_every: u64,
    factory: ScannerFactory<'env>,
    plan: &'env ShardPlan,
    state_root: &'env Path,
    faults: &'env FabricFaultPlan,
}

/// Spawn one worker thread (initial fleet member or replacement) with
/// its own pipes and write fence.
fn spawn_slot<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    id: u32,
    env: SpawnEnv<'env>,
    wake: &Arc<WakeSet>,
) -> WorkerSlot {
    let (to_worker, worker_inbox) = pipe(None);
    let (worker_out, from_worker) = pipe(Some(Arc::clone(wake)));
    let fence = Arc::new(Fence::default());
    let thread_fence = Arc::clone(&fence);
    scope.spawn(move || {
        worker_main(
            WorkerCtx {
                worker: id,
                run_id: env.run_id,
                factory: env.factory,
                plan: env.plan,
                state_root: env.state_root,
                faults: env.faults,
                fence: &thread_fence,
                heartbeat_every: env.heartbeat_every,
            },
            worker_inbox,
            worker_out,
        )
    });
    WorkerSlot {
        tx: to_worker,
        rx: from_worker,
        fence,
        alive: true,
        running: None,
    }
}

/// Run a full fabric scan: shard `seeds`, dispatch to workers, survive
/// whatever `faults` injects, and stream-merge the shard journals into
/// the final report.
///
/// `state_root` holds one journal directory per shard; rerunning with
/// the same root resumes whatever a previous (killed) fabric run left
/// there, exactly like `scan-journal` resume.
pub fn run_fabric(
    factory: ScannerFactory<'_>,
    seeds: &[dns_wire::name::Name],
    state_root: &Path,
    run_id: u64,
    config: &FabricConfig,
    faults: &FabricFaultPlan,
    sink: &mut dyn MergeSink,
) -> io::Result<FabricOutput> {
    let plan = ShardPlan::new(seeds, config.shards);
    let workers = config.workers.max(1);
    let mut ops = FabricOps {
        workers_spawned: workers as u32,
        attempts: vec![0; plan.shards() as usize],
        largest_shard: plan.largest_shard(),
        ..FabricOps::default()
    };

    let wake = WakeSet::new();
    let mut abandoned: BTreeSet<u32> = BTreeSet::new();

    std::thread::scope(|scope| -> io::Result<()> {
        let env = SpawnEnv {
            run_id,
            heartbeat_every: config.heartbeat_every,
            factory,
            plan: &plan,
            state_root,
            faults,
        };
        let mut next_worker_id: u32 = 0;
        let mut respawns_left = config.max_respawns;
        let mut slots: Vec<WorkerSlot> = Vec::with_capacity(workers);
        for _ in 0..workers {
            slots.push(spawn_slot(scope, next_worker_id, env, &wake));
            next_worker_id += 1;
        }

        let mut pending: Vec<PendingShard> = (0..plan.shards())
            .map(|shard| PendingShard {
                shard,
                attempt: 0,
                ready_round: 0,
            })
            .collect();
        let mut completed: BTreeSet<u32> = BTreeSet::new();
        let mut lease_counter: u64 = 0;
        let mut round: u64 = 0;
        let mut wake_cursor: u64 = 0;

        let requeue = |pending: &mut Vec<PendingShard>,
                       abandoned: &mut BTreeSet<u32>,
                       ops: &mut FabricOps,
                       shard: u32,
                       next_attempt: u32,
                       round: u64| {
            if next_attempt >= config.max_attempts {
                abandoned.insert(shard);
                ops.shards_abandoned += 1;
            } else {
                // Exponential backoff in coordinator rounds, capped.
                let backoff = 1u64 << next_attempt.min(3);
                pending.push(PendingShard {
                    shard,
                    attempt: next_attempt,
                    ready_round: round + backoff,
                });
                ops.reassignments += 1;
            }
        };

        while (completed.len() + abandoned.len()) < plan.shards() as usize {
            // If every worker is gone, nothing pending can ever run.
            if slots.iter().all(|s| !s.alive) {
                for p in pending.drain(..) {
                    if !completed.contains(&p.shard) && abandoned.insert(p.shard) {
                        ops.shards_abandoned += 1;
                    }
                }
                break;
            }

            // Assign eligible pending shards to idle live workers,
            // lowest shard id first (deterministic preference).
            pending.sort_by_key(|p| (p.ready_round, p.shard));
            for slot in slots.iter_mut() {
                if !slot.alive || slot.running.is_some() {
                    continue;
                }
                let Some(pos) = pending.iter().position(|p| p.ready_round <= round) else {
                    break;
                };
                let p = pending.remove(pos);
                lease_counter += 1;
                if let Some(a) = ops.attempts.get_mut(p.shard as usize) {
                    *a += 1;
                }
                slot.tx.send(&Msg::Assign {
                    shard: p.shard,
                    attempt: p.attempt,
                    lease: lease_counter,
                });
                slot.running = Some(RunningShard {
                    shard: p.shard,
                    attempt: p.attempt,
                    lease: lease_counter,
                    silent_polls: 0,
                });
            }

            let woke = wake.wait(&mut wake_cursor, config.poll_wait);
            round += 1;

            // Drain every live worker's pipe.
            let mut lost_this_round = 0u32;
            for slot in slots.iter_mut() {
                if !slot.alive {
                    continue;
                }
                loop {
                    let polled = match slot.rx.try_recv() {
                        Ok(polled) => polled,
                        // Corrupt channel: treat the worker as lost.
                        Err(_) => Polled::Closed,
                    };
                    match polled {
                        Polled::Empty => break,
                        Polled::Closed => {
                            slot.alive = false;
                            ops.workers_lost += 1;
                            lost_this_round += 1;
                            if let Some(run) = slot.running.take() {
                                // Died holding a shard: fence the lease
                                // (a formality — the thread is gone) and
                                // steal the shard.
                                slot.fence.revoke_through(run.lease);
                                requeue(
                                    &mut pending,
                                    &mut abandoned,
                                    &mut ops,
                                    run.shard,
                                    run.attempt + 1,
                                    round,
                                );
                            }
                            break;
                        }
                        Polled::Msg(msg) => {
                            // Any frame proves liveness.
                            if let Some(run) = slot.running.as_mut() {
                                run.silent_polls = 0;
                            }
                            match msg {
                                Msg::ShardDone { shard, lease, .. } => {
                                    let current = slot
                                        .running
                                        .map(|r| r.lease == lease && r.shard == shard)
                                        .unwrap_or(false);
                                    if current {
                                        slot.running = None;
                                        if completed.insert(shard) {
                                            ops.shards_completed += 1;
                                        }
                                    }
                                    // Stale Done (lease already revoked):
                                    // the reassigned attempt will re-report
                                    // from the same journal; ignore.
                                }
                                Msg::ShardFailed { shard, lease, .. } => {
                                    let current = slot
                                        .running
                                        .map(|r| r.lease == lease && r.shard == shard)
                                        .unwrap_or(false);
                                    if current {
                                        let run = slot.running.take();
                                        if let Some(run) = run {
                                            slot.fence.revoke_through(run.lease);
                                            requeue(
                                                &mut pending,
                                                &mut abandoned,
                                                &mut ops,
                                                run.shard,
                                                run.attempt + 1,
                                                round,
                                            );
                                        }
                                    }
                                    // Stale failure (e.g. Fenced after we
                                    // already stole the shard): the worker
                                    // is simply idle again.
                                }
                                // Hello / Heartbeat / unexpected: liveness only.
                                _ => {}
                            }
                        }
                    }
                }
            }

            // Replace the fallen, budget permitting. Replacements get
            // fresh worker ids (like new pids), so a fault plan that
            // condemned the dead worker does not condemn its successor.
            for _ in 0..lost_this_round {
                if respawns_left == 0 {
                    break;
                }
                respawns_left -= 1;
                slots.push(spawn_slot(scope, next_worker_id, env, &wake));
                next_worker_id += 1;
                ops.workers_spawned += 1;
            }

            // Lease supervision: only quiet ticks (no worker said
            // anything at all) count toward expiry, so a busy fabric
            // never expires a slow-but-heartbeating worker.
            if !woke {
                for slot in slots.iter_mut() {
                    if !slot.alive {
                        continue;
                    }
                    let Some(run) = slot.running.as_mut() else {
                        continue;
                    };
                    run.silent_polls += 1;
                    if run.silent_polls > config.lease_timeout_polls {
                        let run = *run;
                        // Revoke first: after this, the worker cannot
                        // append under the old lease, so the shard's
                        // journal is safe to hand elsewhere.
                        slot.fence.revoke_through(run.lease);
                        slot.running = None;
                        ops.lease_expiries += 1;
                        requeue(
                            &mut pending,
                            &mut abandoned,
                            &mut ops,
                            run.shard,
                            run.attempt + 1,
                            round,
                        );
                    }
                }
            }
        }

        // Orderly shutdown; dropping the writers EOFs every inbox.
        for slot in &slots {
            if slot.alive {
                slot.tx.send(&Msg::Shutdown);
            }
        }
        drop(slots);
        Ok(())
    })?;

    // Merge phase: one shard's journal at a time, in shard-id order.
    let mut merge = StreamingMerge::new();
    for shard in 0..plan.shards() {
        let zones = plan.zones(shard);
        let dir = shard_state_dir(state_root, shard);
        let recovery = recover(&dir, shard_header(run_id, shard, zones))?;
        merge.absorb_shard(zones, recovery.events, abandoned.contains(&shard), sink)?;
    }
    let (report, peak_resident) = merge.finish();
    ops.peak_resident_zones = peak_resident;
    Ok(FabricOutput { report, ops })
}
