//! The coordinator: shard dispatch, lease supervision, deterministic
//! work-stealing, and the final merge.
//!
//! The coordinator is intentionally *not* deterministic in its
//! scheduling — which worker gets which shard, when a lease expires,
//! how often a shard is retried all depend on real thread timing. The
//! fabric's determinism lives one layer down: every shard attempt is a
//! sequential scan by a fresh scanner resuming from the shard journal,
//! so the journal's final content (and therefore the merged report) is
//! a pure function of (world, shard plan, policy) no matter what the
//! coordinator did along the way. Scheduling noise lands in
//! [`FabricOps`]; the byte-compared [`MergedReport`] cannot see it.
//!
//! Two entry points share one engine:
//!
//! * [`run_fabric`] — one epoch, one shard plan, merge at the end (the
//!   PR-6 API, unchanged).
//! * [`with_fleet`] — a persistent worker fleet the caller *drives*
//!   epoch by epoch ([`FleetHandle::drive`]); the continuous study
//!   service pipelines successive epochs through the same fleet.
//!   Leases stay globally monotonic across drives, so cross-epoch
//!   fencing composes with the per-epoch journal namespaces: a shard
//!   stolen in epoch N−1 and resumed in epoch N holds a lease no
//!   epoch-N−1 assignment can outrank, and its epoch-N−1 directory is
//!   foreign to every epoch-N header.

use crate::channel::{pipe, PipeReader, PipeWriter, Polled, WakeSet};
use crate::faults::{FabricFaultPlan, WorkerFault};
use crate::merge::{FabricOps, MergeSink, MergedReport, StreamingMerge};
use crate::protocol::Msg;
use crate::shard::ShardPlan;
use crate::worker::{worker_main, Fence, ScannerFactory, ShardAssignment, ShardWork, WorkerCtx};
use scan_journal::{recover, Namespace};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Fabric sizing and failure-detection knobs.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Worker threads.
    pub workers: usize,
    /// Zone-space shards. More shards than workers gives the
    /// coordinator stealable units when a worker dies; shard count (not
    /// worker count) fixes the partition, so reports are comparable
    /// across fleet sizes only when `shards` matches.
    pub shards: u32,
    /// Attempts per shard before it is abandoned (its zones then
    /// surface as explicit Indeterminate placeholders).
    pub max_attempts: u32,
    /// Heartbeat every N journaled events (0 = no heartbeats).
    pub heartbeat_every: u64,
    /// Quiet poll ticks (of `poll_wait` each) before a worker's lease
    /// is revoked and its shard stolen.
    pub lease_timeout_polls: u32,
    /// How long one coordinator poll tick parks waiting for worker
    /// messages.
    pub poll_wait: Duration,
    /// Replacement workers the coordinator may spawn when workers die
    /// (each replacement gets a fresh worker id, like a new process
    /// pid). Once exhausted, losses shrink the fleet; if the fleet
    /// empties, unfinished shards are abandoned — never lost silently.
    pub max_respawns: u32,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: 4,
            shards: 8,
            max_attempts: 4,
            heartbeat_every: 1,
            lease_timeout_polls: 40,
            poll_wait: Duration::from_millis(25),
            max_respawns: 64,
        }
    }
}

/// The fabric's output: the deterministic report and the operational
/// (scheduling-dependent) counters, strictly separated.
#[derive(Debug)]
pub struct FabricOutput {
    pub report: MergedReport,
    pub ops: FabricOps,
}

/// A shard waiting to run: retry round-robin state.
#[derive(Debug, Clone, Copy)]
struct PendingShard {
    shard: u32,
    attempt: u32,
    /// Coordinator round this entry becomes eligible (retry backoff).
    ready_round: u64,
}

/// What a worker slot is doing.
struct WorkerSlot {
    tx: PipeWriter,
    rx: PipeReader,
    fence: Arc<Fence>,
    alive: bool,
    running: Option<RunningShard>,
}

#[derive(Debug, Clone, Copy)]
struct RunningShard {
    epoch: u32,
    shard: u32,
    attempt: u32,
    lease: u64,
    silent_polls: u32,
}

/// Spawn one worker thread (initial fleet member or replacement) with
/// its own pipes and write fence.
fn spawn_slot<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    id: u32,
    run_id: u64,
    heartbeat_every: u64,
    work: &'env dyn ShardWork,
    wake: &Arc<WakeSet>,
) -> WorkerSlot {
    let (to_worker, worker_inbox) = pipe(None);
    let (worker_out, from_worker) = pipe(Some(Arc::clone(wake)));
    let fence = Arc::new(Fence::default());
    let thread_fence = Arc::clone(&fence);
    scope.spawn(move || {
        worker_main(
            WorkerCtx {
                worker: id,
                run_id,
                work,
                fence: &thread_fence,
                heartbeat_every,
            },
            worker_inbox,
            worker_out,
        )
    });
    WorkerSlot {
        tx: to_worker,
        rx: from_worker,
        fence,
        alive: true,
        running: None,
    }
}

/// A live worker fleet the caller drives epoch by epoch. Workers,
/// respawn budget, the lease counter, and the coordinator round all
/// persist across [`drive`](FleetHandle::drive) calls — an idle worker
/// between epochs simply parks on its inbox.
pub struct FleetHandle<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    work: &'env dyn ShardWork,
    config: &'env FabricConfig,
    run_id: u64,
    wake: Arc<WakeSet>,
    slots: Vec<WorkerSlot>,
    next_worker_id: u32,
    respawns_left: u32,
    /// Globally monotonic across epochs: an epoch-N lease always
    /// outranks every epoch-N−1 lease on the same fence.
    lease_counter: u64,
    round: u64,
    wake_cursor: u64,
}

impl<'scope, 'env> FleetHandle<'scope, 'env> {
    fn new(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        work: &'env dyn ShardWork,
        run_id: u64,
        config: &'env FabricConfig,
    ) -> FleetHandle<'scope, 'env> {
        let workers = config.workers.max(1);
        let wake = WakeSet::new();
        let mut fleet = FleetHandle {
            scope,
            work,
            config,
            run_id,
            wake,
            slots: Vec::with_capacity(workers),
            next_worker_id: 0,
            respawns_left: config.max_respawns,
            lease_counter: 0,
            round: 0,
            wake_cursor: 0,
        };
        for _ in 0..workers {
            fleet.spawn_one();
        }
        fleet
    }

    fn spawn_one(&mut self) {
        self.slots.push(spawn_slot(
            self.scope,
            self.next_worker_id,
            self.run_id,
            self.config.heartbeat_every,
            self.work,
            &self.wake,
        ));
        self.next_worker_id += 1;
    }

    /// Workers spawned so far (initial fleet plus respawns).
    pub fn workers_spawned(&self) -> u32 {
        self.next_worker_id
    }

    /// Drive one epoch to completion: dispatch shards `0..shards` of
    /// `epoch` across the fleet, supervise leases, steal from the
    /// fallen, respawn within budget. Returns the shards abandoned
    /// after `max_attempts` (their zones surface as explicit
    /// Indeterminate placeholders downstream — never silent loss).
    pub fn drive(&mut self, epoch: u32, shards: u32, ops: &mut FabricOps) -> BTreeSet<u32> {
        let config = self.config;
        if ops.attempts.len() < shards as usize {
            ops.attempts.resize(shards as usize, 0);
        }
        let mut pending: Vec<PendingShard> = (0..shards)
            .map(|shard| PendingShard {
                shard,
                attempt: 0,
                ready_round: 0,
            })
            .collect();
        let mut completed: BTreeSet<u32> = BTreeSet::new();
        let mut abandoned: BTreeSet<u32> = BTreeSet::new();

        let requeue = |pending: &mut Vec<PendingShard>,
                       abandoned: &mut BTreeSet<u32>,
                       ops: &mut FabricOps,
                       shard: u32,
                       next_attempt: u32,
                       round: u64| {
            if next_attempt >= config.max_attempts {
                abandoned.insert(shard);
                ops.shards_abandoned += 1;
            } else {
                // Exponential backoff in coordinator rounds, capped.
                let backoff = 1u64 << next_attempt.min(3);
                pending.push(PendingShard {
                    shard,
                    attempt: next_attempt,
                    ready_round: round + backoff,
                });
                ops.reassignments += 1;
            }
        };

        while (completed.len() + abandoned.len()) < shards as usize {
            // If every worker is gone, nothing pending can ever run.
            if self.slots.iter().all(|s| !s.alive) {
                for p in pending.drain(..) {
                    if !completed.contains(&p.shard) && abandoned.insert(p.shard) {
                        ops.shards_abandoned += 1;
                    }
                }
                break;
            }

            // Assign eligible pending shards to idle live workers,
            // lowest shard id first (deterministic preference).
            pending.sort_by_key(|p| (p.ready_round, p.shard));
            let round = self.round;
            for slot in self.slots.iter_mut() {
                if !slot.alive || slot.running.is_some() {
                    continue;
                }
                let Some(pos) = pending.iter().position(|p| p.ready_round <= round) else {
                    break;
                };
                let p = pending.remove(pos);
                self.lease_counter += 1;
                if let Some(a) = ops.attempts.get_mut(p.shard as usize) {
                    *a += 1;
                }
                slot.tx.send(&Msg::Assign {
                    epoch,
                    shard: p.shard,
                    attempt: p.attempt,
                    lease: self.lease_counter,
                });
                slot.running = Some(RunningShard {
                    epoch,
                    shard: p.shard,
                    attempt: p.attempt,
                    lease: self.lease_counter,
                    silent_polls: 0,
                });
            }

            let woke = self.wake.wait(&mut self.wake_cursor, config.poll_wait);
            self.round += 1;
            let round = self.round;

            // Drain every live worker's pipe.
            let mut lost_this_round = 0u32;
            for slot in self.slots.iter_mut() {
                if !slot.alive {
                    continue;
                }
                loop {
                    let polled = match slot.rx.try_recv() {
                        Ok(polled) => polled,
                        // Corrupt channel: treat the worker as lost.
                        Err(_) => Polled::Closed,
                    };
                    match polled {
                        Polled::Empty => break,
                        Polled::Closed => {
                            slot.alive = false;
                            ops.workers_lost += 1;
                            lost_this_round += 1;
                            if let Some(run) = slot.running.take() {
                                // Died holding a shard: fence the lease
                                // (a formality — the thread is gone) and
                                // steal the shard. A stale-epoch attempt
                                // (left running when an earlier drive
                                // gave up on it) is fenced but never
                                // requeued into *this* epoch's queue.
                                slot.fence.revoke_through(run.lease);
                                if run.epoch == epoch {
                                    requeue(
                                        &mut pending,
                                        &mut abandoned,
                                        ops,
                                        run.shard,
                                        run.attempt + 1,
                                        round,
                                    );
                                }
                            }
                            break;
                        }
                        Polled::Msg(msg) => {
                            // Any frame proves liveness.
                            if let Some(run) = slot.running.as_mut() {
                                run.silent_polls = 0;
                            }
                            match msg {
                                Msg::ShardDone {
                                    epoch: msg_epoch,
                                    shard,
                                    lease,
                                    ..
                                } => {
                                    let current = slot
                                        .running
                                        .map(|r| {
                                            r.lease == lease
                                                && r.shard == shard
                                                && r.epoch == msg_epoch
                                        })
                                        .unwrap_or(false);
                                    if current && msg_epoch == epoch {
                                        slot.running = None;
                                        if completed.insert(shard) {
                                            ops.shards_completed += 1;
                                        }
                                    }
                                    // Stale Done (lease already revoked, or
                                    // a previous epoch's shard): the current
                                    // attempt will re-report from the same
                                    // journal; ignore.
                                }
                                Msg::ShardFailed {
                                    epoch: msg_epoch,
                                    shard,
                                    lease,
                                    ..
                                } => {
                                    let current = slot
                                        .running
                                        .map(|r| {
                                            r.lease == lease
                                                && r.shard == shard
                                                && r.epoch == msg_epoch
                                        })
                                        .unwrap_or(false);
                                    if current && msg_epoch == epoch {
                                        let run = slot.running.take();
                                        if let Some(run) = run {
                                            slot.fence.revoke_through(run.lease);
                                            requeue(
                                                &mut pending,
                                                &mut abandoned,
                                                ops,
                                                run.shard,
                                                run.attempt + 1,
                                                round,
                                            );
                                        }
                                    }
                                    // Stale failure (e.g. Fenced after we
                                    // already stole the shard): the worker
                                    // is simply idle again.
                                }
                                // Hello / Heartbeat / unexpected: liveness only.
                                _ => {}
                            }
                        }
                    }
                }
            }

            // Replace the fallen, budget permitting. Replacements get
            // fresh worker ids (like new pids), so a fault plan that
            // condemned the dead worker does not condemn its successor.
            for _ in 0..lost_this_round {
                if self.respawns_left == 0 {
                    break;
                }
                self.respawns_left -= 1;
                self.spawn_one();
                ops.workers_spawned += 1;
            }

            // Lease supervision: only quiet ticks (no worker said
            // anything at all) count toward expiry, so a busy fabric
            // never expires a slow-but-heartbeating worker.
            if !woke {
                for slot in self.slots.iter_mut() {
                    if !slot.alive {
                        continue;
                    }
                    let Some(run) = slot.running.as_mut() else {
                        continue;
                    };
                    run.silent_polls += 1;
                    if run.silent_polls > config.lease_timeout_polls {
                        let run = *run;
                        // Revoke first: after this, the worker cannot
                        // append under the old lease, so the shard's
                        // journal is safe to hand elsewhere. As above,
                        // stale-epoch attempts are fenced, not requeued.
                        slot.fence.revoke_through(run.lease);
                        slot.running = None;
                        ops.lease_expiries += 1;
                        if run.epoch == epoch {
                            requeue(
                                &mut pending,
                                &mut abandoned,
                                ops,
                                run.shard,
                                run.attempt + 1,
                                round,
                            );
                        }
                    }
                }
            }
        }
        abandoned
    }

    /// Orderly shutdown; dropping the writers EOFs every inbox.
    fn shutdown(&mut self) {
        for slot in &self.slots {
            if slot.alive {
                slot.tx.send(&Msg::Shutdown);
            }
        }
        self.slots.clear();
    }
}

/// Run `body` against a live worker fleet scanning `work`. The fleet
/// (threads, respawn budget, monotonic lease counter) persists across
/// every [`FleetHandle::drive`] call the body makes, and is shut down
/// orderly when the body returns — even on error.
pub fn with_fleet<R>(
    work: &dyn ShardWork,
    run_id: u64,
    config: &FabricConfig,
    body: impl FnOnce(&mut FleetHandle<'_, '_>) -> io::Result<R>,
) -> io::Result<R> {
    std::thread::scope(|scope| {
        let mut fleet = FleetHandle::new(scope, work, run_id, config);
        let result = body(&mut fleet);
        fleet.shutdown();
        result
    })
}

/// The single-epoch [`ShardWork`]: a fixed shard plan under the root
/// shard namespace (`<state_root>/shard-NNNN`), a fresh cold scanner
/// per attempt.
struct OneShotWork<'a> {
    factory: ScannerFactory<'a>,
    plan: &'a ShardPlan,
    state_root: &'a Path,
    run_id: u64,
    faults: &'a FabricFaultPlan,
}

impl ShardWork for OneShotWork<'_> {
    fn assignment(&self, _epoch: u32, shard: u32) -> Option<ShardAssignment> {
        let zones = self.plan.zones(shard).to_vec();
        let ns = Namespace::root(self.state_root, self.run_id).shard(shard);
        Some(ShardAssignment {
            dir: ns.dir().to_path_buf(),
            header: ns.header(&zones),
            zones: Arc::new(zones),
            scanner: (self.factory)(),
        })
    }

    fn fault(&self, _epoch: u32, shard: u32, attempt: u32) -> Option<WorkerFault> {
        self.faults.fault_for(shard, attempt)
    }

    fn worker_dead(&self, worker: u32) -> bool {
        self.faults.worker_dead(worker)
    }
}

/// Run a full fabric scan: shard `seeds`, dispatch to workers, survive
/// whatever `faults` injects, and stream-merge the shard journals into
/// the final report.
///
/// `state_root` holds one journal directory per shard; rerunning with
/// the same root resumes whatever a previous (killed) fabric run left
/// there, exactly like `scan-journal` resume.
pub fn run_fabric(
    factory: ScannerFactory<'_>,
    seeds: &[dns_wire::name::Name],
    state_root: &Path,
    run_id: u64,
    config: &FabricConfig,
    faults: &FabricFaultPlan,
    sink: &mut dyn MergeSink,
) -> io::Result<FabricOutput> {
    let plan = ShardPlan::new(seeds, config.shards);
    let workers = config.workers.max(1);
    let mut ops = FabricOps {
        workers_spawned: workers as u32,
        attempts: vec![0; plan.shards() as usize],
        largest_shard: plan.largest_shard(),
        ..FabricOps::default()
    };

    let work = OneShotWork {
        factory,
        plan: &plan,
        state_root,
        run_id,
        faults,
    };
    let abandoned = with_fleet(&work, run_id, config, |fleet| {
        Ok(fleet.drive(0, plan.shards(), &mut ops))
    })?;

    // Merge phase: one shard's journal at a time, in shard-id order.
    let mut merge = StreamingMerge::new();
    for shard in 0..plan.shards() {
        let zones = plan.zones(shard);
        let ns = Namespace::root(state_root, run_id).shard(shard);
        let recovery = recover(ns.dir(), ns.header(zones))?;
        merge.absorb_shard(zones, recovery.events, abandoned.contains(&shard), sink)?;
    }
    let (report, peak_resident) = merge.finish();
    ops.peak_resident_zones = peak_resident;
    Ok(FabricOutput { report, ops })
}
