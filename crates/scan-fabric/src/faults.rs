//! Seeded fabric fault plans, mirroring netsim's chaos discipline:
//! every failure a test injects is a pure function of the plan, so a
//! failing seed reproduces exactly.
//!
//! Faults are keyed by **(shard, attempt)**, not by worker: which
//! worker picks up a given (shard, attempt) depends on scheduling, but
//! the fault must not. A `Kill { at_event: 3 }` on (shard 2, attempt 0)
//! kills *whoever* is scanning shard 2's first attempt right before it
//! journals its 4th event — and attempt 1, on whatever worker steals
//! the shard, proceeds from the journal those 3 events left behind.

use netsim::DeterministicDraw;
use std::collections::{BTreeMap, BTreeSet};

/// One injected worker failure, scoped to a (shard, attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Die (simulated SIGKILL: thread exits, pipes EOF) immediately
    /// before journaling event number `at_event` of this attempt.
    Kill { at_event: u64 },
    /// Journal event `at_event`, force a checkpoint, corrupt the
    /// checkpoint the way a power cut does (a bucket file truncated to
    /// zero length), then die. Exercises recovery's tolerance for
    /// empty-shard debris and its journal-first fallback.
    KillDuringCheckpoint { at_event: u64 },
    /// Complete the shard scan and its journal, then die *before*
    /// reporting `ShardDone` — the merge-handoff kill. The next
    /// attempt recovers a complete journal and re-reports instantly.
    KillBeforeHandoff,
    /// Hang (hold the shard without progress) right before journaling
    /// event `at_event`, until the coordinator revokes the lease; then
    /// die. Exercises heartbeat/lease expiry and write fencing.
    Stall { at_event: u64 },
    /// Finish, but yield the CPU between events — a slow worker that
    /// must NOT be treated as dead while it heartbeats.
    SlowDrain,
}

/// The full failure schedule for one fabric run.
#[derive(Debug, Clone, Default)]
pub struct FabricFaultPlan {
    /// Workers that die the moment they receive their first assignment
    /// (permanently dead: their shards must be stolen by survivors).
    dead_workers: BTreeSet<u32>,
    faults: BTreeMap<(u32, u32), WorkerFault>,
}

impl FabricFaultPlan {
    /// No failures.
    pub fn none() -> FabricFaultPlan {
        FabricFaultPlan::default()
    }

    /// Mark `worker` permanently dead (dies on first assignment).
    pub fn kill_worker(mut self, worker: u32) -> FabricFaultPlan {
        self.dead_workers.insert(worker);
        self
    }

    /// Inject `fault` into attempt `attempt` of `shard`.
    pub fn with_fault(mut self, shard: u32, attempt: u32, fault: WorkerFault) -> FabricFaultPlan {
        self.faults.insert((shard, attempt), fault);
        self
    }

    /// A reproducible random-looking plan: roughly half the shards get
    /// a first-attempt fault drawn from the full fault menu, with kill
    /// points spread over `0..max_event`.
    pub fn seeded(seed: u64, shards: u32, max_event: u64) -> FabricFaultPlan {
        let mut plan = FabricFaultPlan::default();
        for shard in 0..shards {
            let d = DeterministicDraw::new(seed, &[b"fabric-fault", &shard.to_le_bytes()]);
            if d.unit() >= 0.5 {
                continue;
            }
            let kind = DeterministicDraw::new(seed, &[b"fabric-kind", &shard.to_le_bytes()]);
            let at = DeterministicDraw::new(seed, &[b"fabric-at", &shard.to_le_bytes()])
                .below(max_event.max(1));
            let fault = match kind.below(4) {
                0 => WorkerFault::Kill { at_event: at },
                1 => WorkerFault::KillDuringCheckpoint { at_event: at },
                2 => WorkerFault::KillBeforeHandoff,
                _ => WorkerFault::SlowDrain,
            };
            plan.faults.insert((shard, 0), fault);
        }
        plan
    }

    /// Is `worker` scheduled to die on first assignment?
    pub fn worker_dead(&self, worker: u32) -> bool {
        self.dead_workers.contains(&worker)
    }

    /// The fault injected into (shard, attempt), if any.
    pub fn fault_for(&self, shard: u32, attempt: u32) -> Option<WorkerFault> {
        self.faults.get(&(shard, attempt)).copied()
    }

    /// Total injected faults (for test assertions on plan shape).
    pub fn injected(&self) -> usize {
        self.faults.len() + self.dead_workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FabricFaultPlan::seeded(1, 16, 40);
        let b = FabricFaultPlan::seeded(1, 16, 40);
        for shard in 0..16 {
            assert_eq!(a.fault_for(shard, 0), b.fault_for(shard, 0));
        }
        let c = FabricFaultPlan::seeded(2, 16, 40);
        let differs = (0..16).any(|s| a.fault_for(s, 0) != c.fault_for(s, 0));
        assert!(differs, "different seeds should draw different plans");
        assert!(a.injected() > 0, "16 shards at p=0.5 should fault some");
    }

    #[test]
    fn faults_key_on_shard_and_attempt() {
        let plan = FabricFaultPlan::none()
            .with_fault(3, 0, WorkerFault::Kill { at_event: 5 })
            .with_fault(3, 1, WorkerFault::KillBeforeHandoff)
            .kill_worker(2);
        assert_eq!(
            plan.fault_for(3, 0),
            Some(WorkerFault::Kill { at_event: 5 })
        );
        assert_eq!(plan.fault_for(3, 1), Some(WorkerFault::KillBeforeHandoff));
        assert_eq!(plan.fault_for(3, 2), None);
        assert_eq!(plan.fault_for(4, 0), None);
        assert!(plan.worker_dead(2));
        assert!(!plan.worker_dead(0));
        assert_eq!(plan.injected(), 3);
    }
}
