//! In-process byte channels carrying the framed protocol.
//!
//! A [`Pipe`] is a mutex-guarded byte buffer with a condvar: the
//! writer appends *encoded frames* (see [`crate::protocol`]), the
//! reader drains bytes through a [`FrameDecoder`]. Messages cross the
//! channel as bytes even between threads, so the worker transport can
//! become a real OS pipe or socket without touching either endpoint's
//! logic.
//!
//! Dropping the writer closes the pipe — the reader then observes EOF
//! exactly like the far end of a pipe whose process was SIGKILL'd.
//! That is the fabric's worker-death signal, in tests and (in the
//! separate-process future) in production alike.
//!
//! Every worker→coordinator pipe can additionally share a [`WakeSet`]:
//! a single condvar the coordinator parks on, so it can wait for
//! "*any* worker said something" with a bounded timeout (its lease
//! poll tick) without spinning.

use crate::protocol::{encode_msg, FrameDecoder, FrameError, Msg};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Shared wake signal for a set of pipes ("any of them has data").
#[derive(Debug, Default)]
pub struct WakeSet {
    stamp: Mutex<u64>,
    cv: Condvar,
}

impl WakeSet {
    pub fn new() -> Arc<WakeSet> {
        Arc::new(WakeSet::default())
    }

    fn notify(&self) {
        let mut stamp = self.stamp.lock().unwrap_or_else(PoisonError::into_inner);
        *stamp = stamp.wrapping_add(1);
        self.cv.notify_all();
    }

    /// Wait until any associated pipe signals, or `timeout` elapses.
    /// `last_seen` is the caller's cursor into the signal stream;
    /// returns `true` if something was signalled since the last call
    /// (i.e. the caller should drain its pipes), `false` on a quiet
    /// timeout (a "silent poll" for lease accounting).
    pub fn wait(&self, last_seen: &mut u64, timeout: Duration) -> bool {
        let mut stamp = self.stamp.lock().unwrap_or_else(PoisonError::into_inner);
        if *stamp != *last_seen {
            *last_seen = *stamp;
            return true;
        }
        let (guard, _timed_out) = self
            .cv
            .wait_timeout(stamp, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        stamp = guard;
        if *stamp != *last_seen {
            *last_seen = *stamp;
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Default)]
struct PipeState {
    buf: Vec<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

/// Sending half. Dropping it closes the pipe (reader sees EOF).
pub struct PipeWriter {
    pipe: Arc<Pipe>,
    wake: Option<Arc<WakeSet>>,
}

/// Receiving half (single consumer: owns the frame decoder).
pub struct PipeReader {
    pipe: Arc<Pipe>,
    decoder: FrameDecoder,
}

/// What a non-blocking receive found.
#[derive(Debug, PartialEq, Eq)]
pub enum Polled {
    /// A complete message.
    Msg(Msg),
    /// Nothing buffered; the writer is still alive.
    Empty,
    /// Writer dropped and everything buffered has been consumed: EOF.
    Closed,
}

/// Create a connected pipe. `wake` (optional) is additionally
/// signalled on every send — share one across all worker→coordinator
/// pipes so the coordinator parks on a single condvar.
pub fn pipe(wake: Option<Arc<WakeSet>>) -> (PipeWriter, PipeReader) {
    let p = Arc::new(Pipe::default());
    (
        PipeWriter {
            pipe: Arc::clone(&p),
            wake,
        },
        PipeReader {
            pipe: p,
            decoder: FrameDecoder::new(),
        },
    )
}

impl PipeWriter {
    /// Encode and enqueue one message. Sending into a pipe whose
    /// reader is gone is harmless (the bytes are simply never read).
    pub fn send(&self, msg: &Msg) {
        let frame = encode_msg(msg);
        {
            let mut state = self
                .pipe
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.buf.extend_from_slice(&frame);
        }
        self.pipe.cv.notify_all();
        if let Some(wake) = &self.wake {
            wake.notify();
        }
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut state = self
            .pipe
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.pipe.cv.notify_all();
        if let Some(wake) = &self.wake {
            wake.notify();
        }
    }
}

impl PipeReader {
    /// Drain buffered bytes into the decoder and return the next
    /// message, without blocking.
    pub fn try_recv(&mut self) -> Result<Polled, FrameError> {
        loop {
            if let Some(msg) = self.decoder.next()? {
                return Ok(Polled::Msg(msg));
            }
            let mut state = self
                .pipe
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !state.buf.is_empty() {
                self.decoder.extend(&state.buf);
                state.buf.clear();
                continue;
            }
            return if state.closed {
                Ok(Polled::Closed)
            } else {
                Ok(Polled::Empty)
            };
        }
    }

    /// Block until a message arrives or the writer is gone.
    /// `Ok(None)` is EOF.
    pub fn recv_blocking(&mut self) -> Result<Option<Msg>, FrameError> {
        loop {
            if let Some(msg) = self.decoder.next()? {
                return Ok(Some(msg));
            }
            let mut state = self
                .pipe
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if !state.buf.is_empty() {
                    self.decoder.extend(&state.buf);
                    state.buf.clear();
                    break;
                }
                if state.closed {
                    return Ok(None);
                }
                state = self
                    .pipe
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FailReason;

    #[test]
    fn messages_cross_the_pipe_in_order() {
        let (tx, mut rx) = pipe(None);
        tx.send(&Msg::Hello {
            worker: 1,
            run_id: 2,
        });
        tx.send(&Msg::Shutdown);
        assert_eq!(
            rx.try_recv().unwrap(),
            Polled::Msg(Msg::Hello {
                worker: 1,
                run_id: 2
            })
        );
        assert_eq!(rx.try_recv().unwrap(), Polled::Msg(Msg::Shutdown));
        assert_eq!(rx.try_recv().unwrap(), Polled::Empty);
    }

    #[test]
    fn dropping_the_writer_is_eof_after_drain() {
        let (tx, mut rx) = pipe(None);
        tx.send(&Msg::ShardFailed {
            worker: 0,
            epoch: 0,
            shard: 1,
            lease: 2,
            reason: FailReason::JournalIo,
        });
        drop(tx);
        assert!(matches!(rx.try_recv().unwrap(), Polled::Msg(_)));
        assert_eq!(rx.try_recv().unwrap(), Polled::Closed);
        assert_eq!(rx.recv_blocking().unwrap(), None);
    }

    #[test]
    fn wakeset_reports_activity_and_quiet_polls() {
        let wake = WakeSet::new();
        let (tx, _rx) = pipe(Some(Arc::clone(&wake)));
        let mut cursor = 0u64;
        // Nothing yet: quiet poll.
        assert!(!wake.wait(&mut cursor, Duration::from_millis(1)));
        tx.send(&Msg::Shutdown);
        assert!(wake.wait(&mut cursor, Duration::from_millis(1)));
        // Cursor caught up: quiet again.
        assert!(!wake.wait(&mut cursor, Duration::from_millis(1)));
    }

    #[test]
    fn recv_blocking_wakes_on_cross_thread_send() {
        let (tx, mut rx) = pipe(None);
        let t = std::thread::spawn(move || {
            tx.send(&Msg::Hello {
                worker: 9,
                run_id: 9,
            });
            // tx drops here → EOF after the message.
        });
        assert_eq!(
            rx.recv_blocking().unwrap(),
            Some(Msg::Hello {
                worker: 9,
                run_id: 9
            })
        );
        assert_eq!(rx.recv_blocking().unwrap(), None);
        t.join().unwrap();
    }
}
