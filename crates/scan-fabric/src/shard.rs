//! Zone-space partitioning: the deterministic shard plan the
//! coordinator dispatches from.
//!
//! Shard assignment is [`dns_ecosystem::seeds::shard_of`] — FNV-1a 64
//! of the canonical wire name mod the shard count, the same scheme
//! `scan-journal` uses for checkpoint buckets — so the partition is a
//! pure function of the seed list and the shard count: independent of
//! worker count, assignment order, and fault history. Within a shard,
//! zones are kept in canonical name order, matching the order
//! `scan_all` sorts its results into.

use dns_ecosystem::seeds::shard_of;
use dns_wire::name::Name;

/// The full partition of a seed list into shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Vec<Name>>,
    total: usize,
}

impl ShardPlan {
    /// Partition `seeds` into `shards` buckets. Duplicate names are
    /// kept (the compiled seed list is already deduplicated upstream);
    /// every name lands in exactly one bucket.
    pub fn new(seeds: &[Name], shards: u32) -> ShardPlan {
        let shards = shards.max(1);
        let mut buckets: Vec<Vec<Name>> = vec![Vec::new(); shards as usize];
        for name in seeds {
            if let Some(bucket) = buckets.get_mut(shard_of(name, shards) as usize) {
                bucket.push(name.clone());
            }
        }
        for bucket in &mut buckets {
            bucket.sort_by(|a, b| a.canonical_cmp(b));
        }
        ShardPlan {
            total: seeds.len(),
            shards: buckets,
        }
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The zones of shard `k`, in canonical name order. Out-of-range
    /// shards are empty.
    pub fn zones(&self, k: u32) -> &[Name] {
        self.shards
            .get(k as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total zones across all shards.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Size of the largest shard — the bound on how much evidence the
    /// streaming merge may ever hold at once.
    pub fn largest_shard(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    fn seeds(n: usize) -> Vec<Name> {
        (0..n).map(|i| name!(&format!("z{i}.example"))).collect()
    }

    #[test]
    fn plan_partitions_totally_and_stably() {
        let s = seeds(100);
        let plan = ShardPlan::new(&s, 8);
        assert_eq!(plan.shards(), 8);
        assert_eq!(plan.total(), 100);
        let flat: usize = (0..8).map(|k| plan.zones(k).len()).sum();
        assert_eq!(flat, 100, "every zone in exactly one shard");
        // Stable: rebuilding gives identical buckets.
        let again = ShardPlan::new(&s, 8);
        for k in 0..8 {
            assert_eq!(plan.zones(k), again.zones(k));
        }
        // Assignment agrees with shard_of.
        for k in 0..8 {
            for z in plan.zones(k) {
                assert_eq!(shard_of(z, 8), k);
            }
        }
    }

    #[test]
    fn zones_are_canonically_ordered_within_a_shard() {
        let plan = ShardPlan::new(&seeds(50), 4);
        for k in 0..4 {
            let zs = plan.zones(k);
            for w in zs.windows(2) {
                assert!(w[0].canonical_cmp(&w[1]) == std::cmp::Ordering::Less);
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = ShardPlan::new(&seeds(5), 0);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.zones(0).len(), 5);
        assert_eq!(plan.largest_shard(), 5);
    }
}
