//! scan-fabric: a fault-tolerant coordinator/worker scan fabric.
//!
//! The fabric shards the zone space with the same fnv64 bucketing the
//! checkpoint store uses, dispatches shards to N workers over a framed
//! byte protocol (threads today; the protocol is process-agnostic, so
//! separate-process workers are a transport swap, not a redesign), and
//! stream-merges per-shard journals into one report with bounded
//! memory — at most one shard's evidence plane is resident at a time.
//!
//! # Determinism contract
//!
//! Every shard attempt scans its zones **sequentially** with a **fresh
//! scanner** (cold caches), resuming from the shard's own write-ahead
//! journal. The shard journal's final contents are therefore a pure
//! function of (world, shard plan, policy) — independent of worker
//! count, scheduling, retries, and injected faults. Since the merge
//! walks shards in id order and zones in plan order, the merged report
//! is **byte-identical** across fleet sizes and fault plans (for the
//! same shard count). Scheduling-dependent observability lives in
//! [`FabricOps`], which is deliberately excluded from byte comparison.
//!
//! # Failure semantics
//!
//! Workers hold time-limited leases enforced by a write [`Fence`]: a
//! journal append lands only while its lease is live, and lease
//! revocation linearizes with appends, so a stolen shard can never see
//! a torn write from its previous owner. Dead workers (EOF on their
//! pipe) and hung workers (lease expiry after quiet heartbeat polls)
//! both cause deterministic work-stealing: the shard is requeued with
//! capped exponential backoff and resumed — not restarted — from its
//! journal. A shard that exhausts its attempt budget degrades to
//! explicit [`DnssecClass::Indeterminate`] placeholders for its zones
//! (never silent loss), named in `MergedReport::abandoned_zones`.
//!
//! [`DnssecClass::Indeterminate`]: bootscan::DnssecClass::Indeterminate

#![forbid(unsafe_code)]

mod channel;
mod coordinator;
mod faults;
mod merge;
mod protocol;
mod shard;
mod worker;

pub use channel::{pipe, PipeReader, PipeWriter, Polled, WakeSet};
pub use coordinator::{run_fabric, with_fleet, FabricConfig, FabricOutput, FleetHandle};
pub use faults::{FabricFaultPlan, WorkerFault};
pub use merge::{
    indeterminate_placeholder, CollectSink, FabricOps, MergeSink, MergedReport, NullMergeSink,
    StreamingMerge,
};
pub use protocol::{encode_msg, FailReason, FrameDecoder, FrameError, Msg, MAX_PAYLOAD};
pub use shard::ShardPlan;
pub use worker::{Fence, ScannerFactory, ShardAssignment, ShardWork};
