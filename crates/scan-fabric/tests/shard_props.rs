//! Property tests for the shard assignment (satellite of the fabric
//! PR): the fnv64 sharding must be **stable** across runs and input
//! orders, **total** (every zone lands in exactly one shard), and
//! reasonably **balanced** on the worlds the paper actually scans.

use dns_ecosystem::{build, shard_of, EcosystemConfig};
use dns_wire::name::Name;
use proptest::prelude::*;
use scan_fabric::ShardPlan;

/// Canonically sort and deduplicate, like the compiled seed lists the
/// fabric actually shards (ShardPlan keeps duplicates by design).
fn dedup(mut names: Vec<Name>) -> Vec<Name> {
    names.sort_by(|a, b| a.canonical_cmp(b));
    names.dedup();
    names
}

/// Arbitrary syntactically valid DNS names: 1–3 lowercase labels.
fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec("[a-z]{1,8}", 1..=3).prop_map(|labels| {
        Name::parse(&format!("{}.", labels.join("."))).expect("generated name parses")
    })
}

proptest! {
    /// Stability: the shard of a name is a pure function of the name
    /// and the shard count — recomputing it, or rebuilding the plan
    /// from a permuted seed list, never moves a zone.
    #[test]
    fn shard_assignment_is_stable(names in proptest::collection::vec(arb_name(), 1..80),
                                  shards in 1u32..12,
                                  rot in 0usize..80) {
        let names = dedup(names);
        let plan = ShardPlan::new(&names, shards);
        let mut rotated = names.clone();
        rotated.rotate_left(rot % names.len().max(1));
        let replanned = ShardPlan::new(&rotated, shards);
        for k in 0..shards {
            prop_assert_eq!(plan.zones(k), replanned.zones(k),
                "input order leaked into shard {}", k);
        }
        for name in &names {
            prop_assert_eq!(shard_of(name, shards), shard_of(name, shards));
        }
    }

    /// Totality: every seed is in exactly one shard, and the plan
    /// contains nothing else.
    #[test]
    fn shard_assignment_is_total(names in proptest::collection::vec(arb_name(), 1..80),
                                 shards in 1u32..12) {
        let names = dedup(names);
        let plan = ShardPlan::new(&names, shards);
        prop_assert_eq!(plan.total(), names.len(), "plan lost or invented zones");
        for name in &names {
            let home = shard_of(name, shards);
            let mut found = 0usize;
            for k in 0..shards {
                let hits = plan.zones(k).iter().filter(|z| *z == name).count();
                if k == home {
                    prop_assert_eq!(hits, 1, "zone missing from its home shard");
                } else {
                    prop_assert_eq!(hits, 0, "zone leaked into shard {}", k);
                }
                found += hits;
            }
            prop_assert_eq!(found, 1);
        }
    }

    /// Balance on bulk inputs: with enough names per bucket the fnv64
    /// partition stays within 2× of the mean (the bound the paper-world
    /// test below pins on real seed lists).
    #[test]
    fn shard_assignment_balances_bulk_inputs(salt in 0u64..1000, shards in 2u32..8) {
        // 64 names per shard on average, deterministically derived.
        let names: Vec<Name> = (0..shards as u64 * 64)
            .map(|i| Name::parse(&format!("z{}-{salt}.example.", i)).unwrap())
            .collect();
        let plan = ShardPlan::new(&names, shards);
        let mean = names.len() as f64 / shards as f64;
        for k in 0..shards {
            let size = plan.zones(k).len() as f64;
            prop_assert!(size <= 2.0 * mean,
                "shard {} holds {} zones, mean {}", k, size, mean);
        }
    }
}

/// Balance on the real paper-world seed lists: across several world
/// seeds, no shard of the compiled seed list exceeds 2× the mean.
/// Deterministic (world building is seeded), so this is a regression
/// pin rather than a statistical test.
#[test]
fn paper_world_seed_lists_shard_within_twice_the_mean() {
    for world_seed in [3u64, 7, 42] {
        let eco = build(EcosystemConfig::tiny(world_seed));
        let seeds = eco.seeds.compile(&eco.psl);
        for shards in [2u32, 4] {
            let plan = ShardPlan::new(&seeds, shards);
            let mean = seeds.len() as f64 / shards as f64;
            for k in 0..shards {
                let size = plan.zones(k).len() as f64;
                assert!(
                    size <= 2.0 * mean,
                    "world {world_seed}, {shards} shards: shard {k} holds {size} zones (mean {mean})"
                );
            }
        }
    }
}

/// The plan and the ecosystem's shard-aware seed iteration agree: a
/// worker asking the seed layer for its shard gets exactly the plan's
/// slice.
#[test]
fn shard_plan_matches_ecosystem_shard_iteration() {
    let eco = build(EcosystemConfig::tiny(42));
    let seeds = eco.seeds.compile(&eco.psl);
    for shards in [1u32, 4, 8] {
        let plan = ShardPlan::new(&seeds, shards);
        for k in 0..shards {
            let via_eco = eco.seeds.compile_shard(&eco.psl, k, shards);
            assert_eq!(
                plan.zones(k),
                via_eco.as_slice(),
                "{shards}-way shard {k} disagrees between plan and seed layer"
            );
        }
    }
}
