//! # dns-resolver — iterative resolution with DNSSEC validation
//!
//! The measurement stack's view of the DNS tree:
//!
//! * [`DnsClient`] — one authoritative exchange: EDNS+DO query, virtual
//!   timing, truncation → TCP retry.
//! * [`Resolver`] — iterative walk from the root hints: referrals chased,
//!   glue used, out-of-bailiwick NS addresses resolved recursively, and
//!   the full delegation chain recorded ([`ChainLink`] per zone cut).
//! * [`validate`] — RFC 4035 chain validation over the recorded chain:
//!   trust anchor → DS → DNSKEY → RRSIG, producing
//!   [`Security::Secure`] / [`Security::Insecure`] / [`Security::Bogus`] /
//!   [`Security::Indeterminate`] exactly as the paper's classification
//!   needs (signed, unsigned, invalid, island are derived from these plus
//!   the DS/DNSKEY presence data).

#![forbid(unsafe_code)]

pub mod cachelog;
pub mod client;
pub mod hostile;
pub mod iterate;
pub mod validate;

pub use cachelog::{CacheLog, ReferralData};
pub use client::{
    ClientError, ClientErrorKind, DnsClient, Exchange, IoCounters, QueryMeter, RetryPolicy,
};
pub use hostile::{HostileCause, HostileTally};
pub use iterate::{ChainLink, Resolution, Resolver, ResolverError, RootHints, CACHE_TTL_MICROS};
pub use validate::{validate_resolution, Security};
