//! Named causes for adversarial (Byzantine) server behaviour.
//!
//! The hardening layer never reports a generic "something was off": every
//! rejected response, refused shortcut and tripped budget carries one of
//! these causes, so a zone that an adversary managed to knock out of the
//! measurable set shows up in the report as *hostile casualty with a named
//! cause*, never as a silent misclassification (DESIGN.md §6c).

use std::fmt;

/// Why a response (or a whole resolution) was judged hostile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostileCause {
    /// Reply ID, QNAME or QTYPE did not match the question we asked.
    MismatchedReply,
    /// Records outside the answering server's bailiwick were stripped
    /// from a response (answer names off the QNAME, authority/additional
    /// names outside the zone cut).
    ForeignRecords,
    /// A referral pointed sideways, upwards, back at the current zone, or
    /// an NS hostname's address resolution re-entered itself.
    ReferralLoop,
    /// A referral fanned out past the NS-set width cap (NXNS-style
    /// amplification shape).
    WideReferral,
    /// A CNAME chain at the queried name looped or exceeded the alias
    /// chase limit.
    AliasLoop,
    /// The per-zone work budget (amplification cap) was exhausted.
    BudgetExceeded,
    /// A delegated server answered REFUSED / non-authoritatively for a
    /// zone it is listed for (lame delegation).
    LameDelegation,
}

impl HostileCause {
    /// Every cause, in [`HostileTally`] field order.
    pub const ALL: [HostileCause; 7] = [
        HostileCause::MismatchedReply,
        HostileCause::ForeignRecords,
        HostileCause::ReferralLoop,
        HostileCause::WideReferral,
        HostileCause::AliasLoop,
        HostileCause::BudgetExceeded,
        HostileCause::LameDelegation,
    ];

    /// Stable human-readable label (used in reports and `Display`).
    pub fn label(self) -> &'static str {
        match self {
            HostileCause::MismatchedReply => "mismatched-reply",
            HostileCause::ForeignRecords => "foreign-records",
            HostileCause::ReferralLoop => "referral-loop",
            HostileCause::WideReferral => "wide-referral",
            HostileCause::AliasLoop => "alias-loop",
            HostileCause::BudgetExceeded => "budget-exceeded",
            HostileCause::LameDelegation => "lame-delegation",
        }
    }

    /// Index into [`HostileCause::ALL`] / the meter's per-cause counters.
    pub fn index(self) -> usize {
        match self {
            HostileCause::MismatchedReply => 0,
            HostileCause::ForeignRecords => 1,
            HostileCause::ReferralLoop => 2,
            HostileCause::WideReferral => 3,
            HostileCause::AliasLoop => 4,
            HostileCause::BudgetExceeded => 5,
            HostileCause::LameDelegation => 6,
        }
    }
}

impl fmt::Display for HostileCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-cause hostile-event counts, snapshotted from a
/// [`QueryMeter`](crate::client::QueryMeter).
///
/// Counts are evidence, not incident totals: a detection that both notes
/// the meter and surfaces as an error may be tallied at more than one
/// layer, so treat each field as "≥ 1 means this cause was observed".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostileTally {
    pub mismatched_replies: u64,
    pub foreign_records: u64,
    pub referral_loops: u64,
    pub wide_referrals: u64,
    pub alias_loops: u64,
    pub budget_exceeded: u64,
    pub lame_delegations: u64,
}

impl HostileTally {
    /// Count for one cause.
    pub fn get(&self, cause: HostileCause) -> u64 {
        match cause {
            HostileCause::MismatchedReply => self.mismatched_replies,
            HostileCause::ForeignRecords => self.foreign_records,
            HostileCause::ReferralLoop => self.referral_loops,
            HostileCause::WideReferral => self.wide_referrals,
            HostileCause::AliasLoop => self.alias_loops,
            HostileCause::BudgetExceeded => self.budget_exceeded,
            HostileCause::LameDelegation => self.lame_delegations,
        }
    }

    /// Bump one cause.
    pub fn note(&mut self, cause: HostileCause) {
        match cause {
            HostileCause::MismatchedReply => self.mismatched_replies += 1,
            HostileCause::ForeignRecords => self.foreign_records += 1,
            HostileCause::ReferralLoop => self.referral_loops += 1,
            HostileCause::WideReferral => self.wide_referrals += 1,
            HostileCause::AliasLoop => self.alias_loops += 1,
            HostileCause::BudgetExceeded => self.budget_exceeded += 1,
            HostileCause::LameDelegation => self.lame_delegations += 1,
        }
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &HostileTally) {
        self.mismatched_replies += other.mismatched_replies;
        self.foreign_records += other.foreign_records;
        self.referral_loops += other.referral_loops;
        self.wide_referrals += other.wide_referrals;
        self.alias_loops += other.alias_loops;
        self.budget_exceeded += other.budget_exceeded;
        self.lame_delegations += other.lame_delegations;
    }

    /// Total events across all causes.
    pub fn total(&self) -> u64 {
        HostileCause::ALL.iter().map(|&c| self.get(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for cause in HostileCause::ALL {
            assert!(seen.insert(cause.label()), "duplicate label");
            assert_eq!(cause.to_string(), cause.label());
        }
    }

    #[test]
    fn indices_match_all_order() {
        for (i, cause) in HostileCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
    }

    #[test]
    fn tally_note_get_add_total() {
        let mut a = HostileTally::default();
        a.note(HostileCause::ReferralLoop);
        a.note(HostileCause::ReferralLoop);
        a.note(HostileCause::BudgetExceeded);
        assert_eq!(a.get(HostileCause::ReferralLoop), 2);
        assert_eq!(a.total(), 3);
        let mut b = HostileTally::default();
        b.note(HostileCause::AliasLoop);
        b.add(&a);
        assert_eq!(b.total(), 4);
        assert_eq!(b.get(HostileCause::ReferralLoop), 2);
    }
}
