//! RFC 4035 chain validation over a recorded [`Resolution`].

use crate::client::DnsClient;
use crate::iterate::Resolution;
use dns_crypto::UnixTime;
use dns_crypto::{ds_digest, DigestType};
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::rdata::{DnskeyData, DsData, RData, RrsigData};
use dns_wire::record::{RecordClass, RecordType, RrSet};
use dns_zone::signer::verify_rrset_with_keys;
use netsim::Addr;

/// DNSSEC security status of a resolution (RFC 4035 §4.3 terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Security {
    /// Every link from the trust anchor validated.
    Secure,
    /// A proven-unsigned delegation was crossed; data is unauthenticated
    /// but not suspect.
    Insecure,
    /// Validation failed: wrong DS, bad signature, expired signature...
    Bogus,
    /// Could not be determined (servers unreachable or erroring).
    Indeterminate,
}

/// Validate a completed resolution.
///
/// * `trust_anchors` — DS-form anchors for the root zone.
/// * `roots` — root server addresses (to fetch the root DNSKEY).
/// * `now` — virtual validation time.
///
/// Negative responses (empty answer section) validate the chain only; we
/// do not check NSEC proofs of nonexistence (the scanner checks the
/// records it *got*, as the paper's pipeline does).
pub fn validate_resolution(
    client: &DnsClient,
    trust_anchors: &[DsData],
    roots: &[Addr],
    res: &Resolution,
    now: UnixTime,
) -> Security {
    // 1. Root keys.
    let mut current_keys = match fetch_and_verify_keys(
        client,
        &Name::root(),
        roots,
        KeyCheck::Anchors(trust_anchors),
        now,
    ) {
        Ok(k) => k,
        Err(s) => return s,
    };

    // 2. Walk each recorded cut.
    for link in &res.chain {
        let Some(ds_set) = &link.ds else {
            // Insecure delegation: everything below is unsigned territory.
            return Security::Insecure;
        };
        // The DS RRset itself must be signed by the parent.
        let ds_rrset = RrSet {
            name: link.child_apex.clone(),
            class: RecordClass::In,
            rtype: RecordType::Ds,
            ttl: 300,
            rdatas: ds_set.iter().cloned().map(RData::Ds).collect(),
        };
        if verify_rrset_with_keys(&ds_rrset, &link.ds_rrsigs, &current_keys, now).is_err() {
            return Security::Bogus;
        }
        // Child DNSKEYs must chain from the DS.
        current_keys = match fetch_and_verify_keys(
            client,
            &link.child_apex,
            &link.child_servers,
            KeyCheck::Ds(ds_set),
            now,
        ) {
            Ok(k) => k,
            Err(s) => return s,
        };
    }

    // 3. Verify the answer RRsets with the answering zone's keys.
    let rrsigs: Vec<RrsigData> = res
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Rrsig(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    for set in RrSet::group(&res.answers) {
        if set.rtype == RecordType::Rrsig {
            continue;
        }
        if verify_rrset_with_keys(&set, &rrsigs, &current_keys, now).is_err() {
            return Security::Bogus;
        }
    }
    Security::Secure
}

enum KeyCheck<'a> {
    /// Root: keys must match one of these DS-form trust anchors.
    Anchors(&'a [DsData]),
    /// Interior: keys must match one of the parent's DS records.
    Ds(&'a [DsData]),
}

/// Fetch the DNSKEY RRset of `zone` from `servers`, check it against the
/// DS/anchor set, and verify its self-signature.
fn fetch_and_verify_keys(
    client: &DnsClient,
    zone: &Name,
    servers: &[Addr],
    check: KeyCheck,
    now: UnixTime,
) -> Result<Vec<DnskeyData>, Security> {
    let msg = match query_any(client, servers, zone, RecordType::Dnskey) {
        Some(m) => m,
        None => return Err(Security::Indeterminate),
    };
    let keys: Vec<DnskeyData> = msg
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Dnskey(d) if r.name == *zone => Some(d.clone()),
            _ => None,
        })
        .collect();
    if keys.is_empty() {
        // A DS (or anchor) exists but the zone serves no DNSKEY: bogus.
        return Err(Security::Bogus);
    }
    let ds_list = match check {
        KeyCheck::Anchors(a) => a,
        KeyCheck::Ds(d) => d,
    };
    let anchored = keys.iter().any(|k| key_matches_any_ds(zone, k, ds_list));
    if !anchored {
        return Err(Security::Bogus);
    }
    // Verify the DNSKEY RRset self-signature.
    let rrsigs: Vec<RrsigData> = msg
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Rrsig(s) if s.type_covered == RecordType::Dnskey.code() => Some(s.clone()),
            _ => None,
        })
        .collect();
    let ttl = msg
        .answers
        .iter()
        .find(|r| r.rtype() == RecordType::Dnskey)
        .map(|r| r.ttl)
        .unwrap_or(3600);
    let set = RrSet {
        name: zone.clone(),
        class: RecordClass::In,
        rtype: RecordType::Dnskey,
        ttl,
        rdatas: keys.iter().cloned().map(RData::Dnskey).collect(),
    };
    if verify_rrset_with_keys(&set, &rrsigs, &keys, now).is_err() {
        return Err(Security::Bogus);
    }
    Ok(keys)
}

/// Does `key` (at `zone`) match any DS in `ds_list`?
pub fn key_matches_any_ds(zone: &Name, key: &DnskeyData, ds_list: &[DsData]) -> bool {
    let mut rdata = Vec::with_capacity(4 + key.public_key.len());
    rdata.extend_from_slice(&key.flags.to_be_bytes());
    rdata.push(key.protocol);
    rdata.push(key.algorithm);
    rdata.extend_from_slice(&key.public_key);
    let tag = dns_crypto::key_tag(&rdata);
    ds_list.iter().any(|ds| {
        ds.key_tag == tag
            && ds.algorithm == key.algorithm
            && ds_digest(
                DigestType::from_code(ds.digest_type),
                &zone.to_wire(),
                &rdata,
            )
            .map(|d| d == ds.digest)
            .unwrap_or(false)
    })
}

fn query_any(
    client: &DnsClient,
    servers: &[Addr],
    qname: &Name,
    qtype: RecordType,
) -> Option<Message> {
    for &addr in servers {
        if let Ok(ex) = client.query(addr, qname, qtype, true) {
            if !ex.message.rcode().is_error() {
                return Some(ex.message);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterate::{Resolver, RootHints};
    use dns_crypto::Algorithm;
    use dns_server::{AuthServer, ZoneStore};
    use dns_wire::name;
    use dns_wire::rdata::SoaData;
    use dns_wire::record::Record;
    use dns_zone::{Corruption, Zone, ZoneKeys, ZoneSigner};
    use netsim::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    const NOW: UnixTime = 1_000_000;

    /// A miniature Internet: signed root → signed "test" TLD → leaf zones
    /// in various DNSSEC states.
    struct MiniNet {
        net: Arc<Network>,
        roots: Vec<Addr>,
        anchors: Vec<DsData>,
    }

    fn soa(apex: &Name) -> Record {
        Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns.invalid"),
                rname: name!("h.invalid"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 300,
            }),
        )
    }

    fn a(n: &Name, last: u8) -> Record {
        Record::new(n.clone(), 300, RData::A(Ipv4Addr::new(192, 0, 2, last)))
    }

    fn build() -> MiniNet {
        let mut rng = StdRng::seed_from_u64(77);
        let net = Arc::new(Network::new(9));
        let signer = ZoneSigner::new(NOW);

        // Leaf zones.
        let mk_leaf = |apex: &Name, rng: &mut StdRng| -> (Zone, ZoneKeys) {
            let mut z = Zone::new(apex.clone());
            z.add(soa(apex));
            let ns = apex.prepend_label(b"ns1").unwrap();
            z.add(Record::new(
                apex.clone(),
                300,
                RData::Ns(name!("ns1.leafhost.test")),
            ));
            let _ = ns;
            z.add(a(&apex.prepend_label(b"www").unwrap(), 80));
            let keys = ZoneKeys::generate(rng, Algorithm::EcdsaP256Sha256);
            (z, keys)
        };

        // secure.test — signed, DS in parent.
        let (mut secure, secure_keys) = mk_leaf(&name!("secure.test"), &mut rng);
        signer.sign(&mut secure, &secure_keys);
        // insecure.test — unsigned, no DS.
        let (insecure, _) = mk_leaf(&name!("insecure.test"), &mut rng);
        // bogus.test — signed with garbage signatures, DS in parent.
        let (mut bogus, bogus_keys) = mk_leaf(&name!("bogus.test"), &mut rng);
        signer
            .clone()
            .with_corruption(Corruption {
                garbage_signatures: true,
                expired: false,
                only_types: &[],
            })
            .sign(&mut bogus, &bogus_keys);
        // island.test — signed but NO DS in parent.
        let (mut island, island_keys) = mk_leaf(&name!("island.test"), &mut rng);
        signer.sign(&mut island, &island_keys);
        // leafhost.test — unsigned, hosts the shared NS hostname.
        let leafhost_apex = name!("leafhost.test");
        let mut leafhost = Zone::new(leafhost_apex.clone());
        leafhost.add(soa(&leafhost_apex));
        leafhost.add(Record::new(
            leafhost_apex.clone(),
            300,
            RData::Ns(name!("ns1.leafhost.test")),
        ));
        leafhost.add(a(&name!("ns1.leafhost.test"), 53));

        // TLD "test": delegations + DS where appropriate.
        let tld_apex = name!("test");
        let mut tld = Zone::new(tld_apex.clone());
        tld.add(soa(&tld_apex));
        tld.add(Record::new(
            tld_apex.clone(),
            300,
            RData::Ns(name!("ns1.tld-servers.net")),
        ));
        let tld_keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        for (apex, keys, with_ds) in [
            (name!("secure.test"), Some(&secure_keys), true),
            (name!("insecure.test"), None, false),
            (name!("bogus.test"), Some(&bogus_keys), true),
            (name!("island.test"), Some(&island_keys), false), // island!
            (name!("leafhost.test"), None, false),
        ] {
            tld.add(Record::new(
                apex.clone(),
                300,
                RData::Ns(name!("ns1.leafhost.test")),
            ));
            if with_ds {
                for r in keys.unwrap().ds_records(&apex, 300, DigestType::Sha256) {
                    tld.add(r);
                }
            }
        }
        signer.sign(&mut tld, &tld_keys);

        // Root zone.
        let mut root = Zone::new(Name::root());
        root.add(soa(&Name::root()));
        root.add(Record::new(
            Name::root(),
            300,
            RData::Ns(name!("a.root-servers.net")),
        ));
        root.add(Record::new(
            tld_apex.clone(),
            300,
            RData::Ns(name!("ns1.tld-servers.net")),
        ));
        for r in tld_keys.ds_records(&tld_apex, 300, DigestType::Sha256) {
            root.add(r);
        }
        let root_keys = ZoneKeys::generate(&mut rng, Algorithm::EcdsaP256Sha256);
        signer.sign(&mut root, &root_keys);
        let anchors = vec![root_keys.ds_data(&Name::root(), DigestType::Sha256)];

        // Wire up servers.
        let root_store = Arc::new(ZoneStore::new());
        root_store.insert(root);
        let root_sid = net.register(AuthServer::new(root_store));
        let root_addr = Addr::V4(Ipv4Addr::new(198, 41, 0, 4));
        net.bind_simple(root_addr, root_sid);

        let tld_store = Arc::new(ZoneStore::new());
        tld_store.insert(tld);
        let tld_sid = net.register(AuthServer::new(tld_store));
        let tld_addr = Addr::V4(Ipv4Addr::new(192, 5, 6, 30));
        net.bind_simple(tld_addr, tld_sid);

        let leaf_store = Arc::new(ZoneStore::new());
        for z in [secure, insecure, bogus, island, leafhost] {
            leaf_store.insert(z);
        }
        let leaf_sid = net.register(AuthServer::new(leaf_store));
        let leaf_addr = Addr::V4(Ipv4Addr::new(192, 0, 2, 53));
        net.bind_simple(leaf_addr, leaf_sid);

        // Glue: the TLD and root refer by name; our referral glue comes
        // from the zones' additionals only when in-bailiwick, so seed the
        // resolver address cache instead (the ecosystem does the same).
        MiniNet {
            net,
            roots: vec![root_addr],
            anchors,
        }
    }

    fn resolver(m: &MiniNet) -> Resolver {
        let client = Arc::new(DnsClient::new(Arc::clone(&m.net)));
        let r = Resolver::new(
            client,
            RootHints {
                addrs: m.roots.clone(),
            },
        );
        r.seed_address(
            name!("ns1.tld-servers.net"),
            vec![Addr::V4(Ipv4Addr::new(192, 5, 6, 30))],
        );
        r.seed_address(
            name!("ns1.leafhost.test"),
            vec![Addr::V4(Ipv4Addr::new(192, 0, 2, 53))],
        );
        r.seed_address(
            name!("a.root-servers.net"),
            vec![Addr::V4(Ipv4Addr::new(198, 41, 0, 4))],
        );
        r
    }

    fn status(m: &MiniNet, r: &Resolver, qname: &str) -> (Resolution, Security) {
        let res = r.resolve(&name!(qname), RecordType::A).unwrap();
        let sec = validate_resolution(r.client(), &m.anchors, &m.roots, &res, NOW);
        (res, sec)
    }

    #[test]
    fn secure_zone_validates() {
        let m = build();
        let r = resolver(&m);
        let (res, sec) = status(&m, &r, "www.secure.test");
        assert_eq!(res.rcode, Rcode::NoError);
        assert!(!res.answers.is_empty());
        assert_eq!(sec, Security::Secure);
        assert_eq!(res.chain.len(), 2); // root→test, test→secure.test
        assert!(res.chain[1].ds.is_some());
    }

    use dns_wire::message::Rcode;

    #[test]
    fn insecure_zone_is_insecure_not_bogus() {
        let m = build();
        let r = resolver(&m);
        let (res, sec) = status(&m, &r, "www.insecure.test");
        assert_eq!(sec, Security::Insecure);
        assert!(res.chain[1].ds.is_none());
    }

    #[test]
    fn bogus_zone_detected() {
        let m = build();
        let r = resolver(&m);
        let (_, sec) = status(&m, &r, "www.bogus.test");
        assert_eq!(sec, Security::Bogus);
    }

    #[test]
    fn island_is_insecure_from_resolver_view() {
        // Paper §2: "secure islands are to be treated as unsigned zones by
        // DNSSEC validating resolvers".
        let m = build();
        let r = resolver(&m);
        let (res, sec) = status(&m, &r, "www.island.test");
        assert_eq!(sec, Security::Insecure);
        assert!(res.chain[1].ds.is_none());
    }

    #[test]
    fn nxdomain_resolves_with_chain() {
        let m = build();
        let r = resolver(&m);
        let res = r
            .resolve(&name!("nope.secure.test"), RecordType::A)
            .unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
        let sec = validate_resolution(r.client(), &m.anchors, &m.roots, &res, NOW);
        assert_eq!(sec, Security::Secure);
    }

    #[test]
    fn wrong_anchor_makes_everything_bogus() {
        let m = build();
        let r = resolver(&m);
        let res = r.resolve(&name!("www.secure.test"), RecordType::A).unwrap();
        let bad_anchor = vec![DsData {
            key_tag: 1,
            algorithm: 13,
            digest_type: 2,
            digest: vec![0; 32],
        }];
        let sec = validate_resolution(r.client(), &bad_anchor, &m.roots, &res, NOW);
        assert_eq!(sec, Security::Bogus);
    }

    #[test]
    fn expired_view_is_bogus() {
        // Validating far in the future, after signature expiry.
        let m = build();
        let r = resolver(&m);
        let res = r.resolve(&name!("www.secure.test"), RecordType::A).unwrap();
        let future = NOW + 40 * 24 * 3600;
        let sec = validate_resolution(r.client(), &m.anchors, &m.roots, &res, future);
        assert_eq!(sec, Security::Bogus);
    }

    #[test]
    fn chain_records_ns_names_and_servers() {
        let m = build();
        let r = resolver(&m);
        let (res, _) = status(&m, &r, "www.secure.test");
        assert_eq!(res.chain[0].child_apex, name!("test"));
        assert_eq!(res.chain[0].parent_apex, Name::root());
        assert!(!res.chain[0].ns_names.is_empty());
        assert!(!res.chain[1].child_servers.is_empty());
        assert_eq!(res.zone_apex, name!("secure.test"));
    }

    #[test]
    fn elapsed_and_queries_accumulate() {
        let m = build();
        let r = resolver(&m);
        let (res, _) = status(&m, &r, "www.secure.test");
        assert!(res.queries >= 3, "{}", res.queries);
        assert!(res.elapsed > 0);
    }
}
