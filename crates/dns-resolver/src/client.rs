//! One authoritative exchange: query a specific server address.
//!
//! The client distinguishes *why* an exchange failed ([`ClientErrorKind`])
//! and reports the exact virtual time and datagram count the failure cost,
//! so callers charge real elapsed time instead of a guess. An optional
//! [`RetryPolicy`] re-sends timed-out or malformed exchanges with
//! exponential backoff and deterministic jitter.

use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::record::RecordType;
use netsim::{Addr, DeterministicDraw, NetError, Network, SimMicros, Transport};
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// The result of one logical query (possibly UDP + TCP retry).
#[derive(Debug, Clone)]
pub struct Exchange {
    pub message: Message,
    /// Virtual time spent, including retries and the TCP fallback.
    pub elapsed: SimMicros,
    /// Datagrams sent (UDP attempts + TCP attempts).
    pub attempts: u32,
    /// Whether the final answer arrived over TCP.
    pub used_tcp: bool,
    /// How many whole-exchange retries the [`RetryPolicy`] spent before
    /// this answer arrived (0 = first try succeeded).
    pub retries: u32,
}

/// Why a logical query failed, after all configured retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientErrorKind {
    /// Nothing is bound at the address; no datagram was ever sent.
    Unreachable,
    /// Every attempt timed out (loss, black-hole, outage).
    Timeout,
    /// A reply arrived but did not parse as a DNS message.
    Malformed,
}

/// A failed logical query, with exact cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientError {
    pub kind: ClientErrorKind,
    /// Virtual time burned across all attempts and backoff waits.
    pub elapsed: SimMicros,
    /// Datagrams sent across all attempts.
    pub attempts: u32,
    /// Whole-exchange retries performed (0 = failed on the first try).
    pub retries: u32,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} after {} attempt(s), {} retry(ies), {} µs",
            self.kind, self.attempts, self.retries, self.elapsed
        )
    }
}

impl std::error::Error for ClientError {}

/// Whole-exchange retry schedule: how many times to re-send a timed-out or
/// malformed query, and how long to wait in between.
///
/// The wait before retry `r` (1-based) is `backoff_base * 2^(r-1)` plus a
/// deterministic jitter in `[0, wait/2)` drawn from `(seed, query id, r)`,
/// so identical runs back off identically. `Unreachable` is never retried
/// — no server will appear mid-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra tries after the first (0 disables retrying).
    pub retries: u32,
    /// Base wait in virtual µs before the first retry; doubles each time.
    pub backoff_base: SimMicros,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retrying at all: fail on the first bad exchange.
    pub const NONE: RetryPolicy = RetryPolicy {
        retries: 0,
        backoff_base: 0,
        seed: 0,
    };

    /// The backoff wait before retry `retry` (1-based) of query `id`.
    pub fn backoff(&self, id: u16, retry: u32) -> SimMicros {
        if retry == 0 || self.backoff_base == 0 {
            return 0;
        }
        let base = self.backoff_base << (retry - 1).min(10);
        let jitter_span = (base / 2).max(1);
        let jitter = DeterministicDraw::new(
            self.seed ^ 0x0bac_0ff5,
            &[&id.to_be_bytes(), &retry.to_be_bytes()],
        )
        .below(jitter_span);
        base + jitter
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

/// A thin client over the simulated network.
///
/// Stateless apart from a query-ID counter; share freely across scanner
/// workers via `Arc`.
pub struct DnsClient {
    net: Arc<Network>,
    next_id: AtomicU16,
    retry: RetryPolicy,
}

impl DnsClient {
    pub fn new(net: Arc<Network>) -> Self {
        DnsClient {
            net,
            next_id: AtomicU16::new(1),
            retry: RetryPolicy::NONE,
        }
    }

    /// Same client, but retrying per `policy`.
    pub fn with_retry(net: Arc<Network>, policy: RetryPolicy) -> Self {
        DnsClient {
            net,
            next_id: AtomicU16::new(1),
            retry: policy,
        }
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The underlying network (for stats access).
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Send (qname, qtype) to `server`; follow truncation over TCP.
    pub fn query(
        &self,
        server: Addr,
        qname: &Name,
        qtype: RecordType,
        dnssec_ok: bool,
    ) -> Result<Exchange, ClientError> {
        self.query_at(0, server, qname, qtype, dnssec_ok)
    }

    /// Like [`query`](Self::query), but the exchange starts at virtual
    /// time `now`, so time-windowed faults and outages see when each
    /// attempt really lands.
    pub fn query_at(
        &self,
        now: SimMicros,
        server: Addr,
        qname: &Name,
        qtype: RecordType,
        dnssec_ok: bool,
    ) -> Result<Exchange, ClientError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let q = Message::query(id, qname.clone(), qtype, dnssec_ok);
        let bytes = q.to_bytes();
        let mut elapsed: SimMicros = 0;
        let mut attempts: u32 = 0;
        let mut kind = ClientErrorKind::Timeout;
        for retry in 0..=self.retry.retries {
            elapsed += self.retry.backoff(id, retry);
            match self.exchange_once(now + elapsed, server, &bytes) {
                Ok((message, e, a, used_tcp)) => {
                    return Ok(Exchange {
                        message,
                        elapsed: elapsed + e,
                        attempts: attempts + a,
                        used_tcp,
                        retries: retry,
                    });
                }
                Err((k, e, a)) => {
                    elapsed += e;
                    attempts += a;
                    kind = k;
                    // No server will appear mid-scan: don't retry.
                    if k == ClientErrorKind::Unreachable {
                        return Err(ClientError {
                            kind: k,
                            elapsed,
                            attempts,
                            retries: retry,
                        });
                    }
                }
            }
        }
        Err(ClientError {
            kind,
            elapsed,
            attempts,
            retries: self.retry.retries,
        })
    }

    /// One UDP exchange plus the TC=1 → TCP fallback, no retrying.
    #[allow(clippy::type_complexity)]
    fn exchange_once(
        &self,
        at: SimMicros,
        server: Addr,
        bytes: &[u8],
    ) -> Result<(Message, SimMicros, u32, bool), (ClientErrorKind, SimMicros, u32)> {
        let udp = self
            .net
            .query_at(at, server, bytes, Transport::Udp)
            .map_err(|f| (kind_of(f.error), f.elapsed, f.attempts))?;
        let mut elapsed = udp.elapsed;
        let mut attempts = udp.attempts;
        let msg = Message::from_bytes(&udp.reply)
            .map_err(|_| (ClientErrorKind::Malformed, elapsed, attempts))?;
        if !msg.header.flags.truncated {
            return Ok((msg, elapsed, attempts, false));
        }
        // TC=1 → retry the same question over TCP.
        let tcp = self
            .net
            .query_at(at + elapsed, server, bytes, Transport::Tcp)
            .map_err(|f| (kind_of(f.error), elapsed + f.elapsed, attempts + f.attempts))?;
        elapsed += tcp.elapsed;
        attempts += tcp.attempts;
        let msg = Message::from_bytes(&tcp.reply)
            .map_err(|_| (ClientErrorKind::Malformed, elapsed, attempts))?;
        Ok((msg, elapsed, attempts, true))
    }
}

fn kind_of(e: NetError) -> ClientErrorKind {
    match e {
        NetError::Unreachable => ClientErrorKind::Unreachable,
        NetError::Timeout => ClientErrorKind::Timeout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{AuthServer, ZoneStore};
    use dns_wire::name;
    use dns_wire::rdata::{RData, SoaData};
    use dns_wire::record::Record;
    use dns_zone::Zone;
    use netsim::{FaultKind, FaultPlan, FaultScope, FaultSpec, Window};
    use std::net::Ipv4Addr;

    fn setup() -> (Arc<Network>, Addr) {
        let net = Arc::new(Network::new(1));
        let apex = name!("t.test");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.t.test"),
                rname: name!("h.t.test"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 300,
            }),
        ));
        for i in 0..15 {
            z.add(Record::new(
                apex.clone(),
                300,
                RData::Txt(vec![vec![b'a' + i; 180]]),
            ));
        }
        z.add(Record::new(
            name!("www.t.test"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let store = Arc::new(ZoneStore::new());
        store.insert(z);
        let sid = net.register(AuthServer::new(store));
        let addr = Addr::V4(Ipv4Addr::new(192, 0, 2, 53));
        net.bind_simple(addr, sid);
        (net, addr)
    }

    #[test]
    fn simple_query() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let ex = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap();
        assert!(!ex.used_tcp);
        assert_eq!(ex.retries, 0);
        assert_eq!(ex.message.answers_of(RecordType::A).len(), 1);
        assert!(ex.elapsed > 0);
    }

    #[test]
    fn truncation_falls_back_to_tcp() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let ex = c
            .query(addr, &name!("t.test"), RecordType::Txt, true)
            .unwrap();
        assert!(ex.used_tcp);
        assert_eq!(ex.message.answers_of(RecordType::Txt).len(), 15);
        assert!(ex.attempts >= 2);
    }

    #[test]
    fn unreachable_propagates_with_zero_cost() {
        let (net, _) = setup();
        let c = DnsClient::new(net);
        let err = c
            .query(
                Addr::V4(Ipv4Addr::new(203, 0, 113, 1)),
                &name!("x.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Unreachable);
        assert_eq!(err.elapsed, 0);
        assert_eq!(err.attempts, 0);
        assert_eq!(err.retries, 0);
    }

    #[test]
    fn unreachable_is_never_retried() {
        let (net, _) = setup();
        let c = DnsClient::with_retry(
            net,
            RetryPolicy {
                retries: 3,
                backoff_base: 100_000,
                seed: 5,
            },
        );
        let err = c
            .query(
                Addr::V4(Ipv4Addr::new(203, 0, 113, 1)),
                &name!("x.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Unreachable);
        assert_eq!(err.retries, 0);
        assert_eq!(err.elapsed, 0);
    }

    #[test]
    fn ids_increment() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let a = c
            .query(addr, &name!("www.t.test"), RecordType::A, false)
            .unwrap();
        let b = c
            .query(addr, &name!("www.t.test"), RecordType::A, false)
            .unwrap();
        assert_ne!(a.message.header.id, b.message.header.id);
    }

    /// A black-hole covering exactly the first logical exchange: without
    /// retries the query dies; with retries the backoff pushes the second
    /// exchange past the outage and it succeeds.
    fn outage_plan(addr: Addr) -> FaultPlan {
        FaultPlan::new(0).with(FaultSpec {
            scope: FaultScope::to_addr(addr),
            window: Window::Interval {
                start: 0,
                end: 6_000_000,
            },
            kind: FaultKind::BlackHole,
        })
    }

    #[test]
    fn timeout_without_retry_reports_exact_cost() {
        let (net, addr) = setup();
        net.set_faults(outage_plan(addr));
        let c = DnsClient::new(Arc::clone(&net));
        let err = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Timeout);
        assert_eq!(err.retries, 0);
        assert_eq!(err.attempts, 3);
        assert_eq!(err.elapsed, 3 * 2_000_000);
    }

    #[test]
    fn retry_recovers_after_transient_outage() {
        let (net, addr) = setup();
        net.set_faults(outage_plan(addr));
        let c = DnsClient::with_retry(
            Arc::clone(&net),
            RetryPolicy {
                retries: 2,
                backoff_base: 500_000,
                seed: 7,
            },
        );
        let ex = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap();
        // First exchange burns 3 attempts inside the outage; the backoff
        // lands the second exchange after it ends.
        assert_eq!(ex.retries, 1);
        assert_eq!(ex.attempts, 4);
        assert!(ex.elapsed > 3 * 2_000_000);
        assert_eq!(ex.message.answers_of(RecordType::A).len(), 1);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy {
            retries: 4,
            backoff_base: 100_000,
            seed: 42,
        };
        assert_eq!(p.backoff(9, 0), 0);
        for r in 1..=4u32 {
            let base = 100_000u64 << (r - 1);
            let w = p.backoff(9, r);
            assert!(w >= base && w < base + base / 2, "retry {r}: {w}");
            assert_eq!(w, p.backoff(9, r), "jitter must be deterministic");
        }
        // Different query ids jitter differently somewhere.
        assert!((0..50u16).any(|id| p.backoff(id, 1) != p.backoff(id + 50, 1)));
        assert_eq!(RetryPolicy::NONE.backoff(1, 1), 0);
    }

    #[test]
    fn retried_runs_are_reproducible() {
        let run = || {
            let (net, addr) = setup();
            net.set_faults(outage_plan(addr));
            let c = DnsClient::with_retry(
                Arc::clone(&net),
                RetryPolicy {
                    retries: 2,
                    backoff_base: 500_000,
                    seed: 7,
                },
            );
            let ex = c
                .query(addr, &name!("www.t.test"), RecordType::A, true)
                .unwrap();
            (ex.elapsed, ex.attempts, ex.retries)
        };
        assert_eq!(run(), run());
    }
}
