//! One authoritative exchange: query a specific server address.

use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::record::RecordType;
use netsim::{Addr, NetError, Network, SimMicros, Transport};
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// The result of one logical query (possibly UDP + TCP retry).
#[derive(Debug, Clone)]
pub struct Exchange {
    pub message: Message,
    /// Virtual time spent, including retries and the TCP fallback.
    pub elapsed: SimMicros,
    /// Datagrams sent (UDP attempts + TCP attempts).
    pub attempts: u32,
    /// Whether the final answer arrived over TCP.
    pub used_tcp: bool,
}

/// A thin client over the simulated network.
///
/// Stateless apart from a query-ID counter; share freely across scanner
/// workers via `Arc`.
pub struct DnsClient {
    net: Arc<Network>,
    next_id: AtomicU16,
}

impl DnsClient {
    pub fn new(net: Arc<Network>) -> Self {
        DnsClient {
            net,
            next_id: AtomicU16::new(1),
        }
    }

    /// The underlying network (for stats access).
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Send (qname, qtype) to `server`; follow truncation over TCP.
    pub fn query(
        &self,
        server: Addr,
        qname: &Name,
        qtype: RecordType,
        dnssec_ok: bool,
    ) -> Result<Exchange, NetError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let q = Message::query(id, qname.clone(), qtype, dnssec_ok);
        let bytes = q.to_bytes();
        let udp = self.net.query(server, &bytes, Transport::Udp)?;
        let mut elapsed = udp.elapsed;
        let mut attempts = udp.attempts;
        let msg = Message::from_bytes(&udp.reply).map_err(|_| NetError::Timeout)?;
        if !msg.header.flags.truncated {
            return Ok(Exchange {
                message: msg,
                elapsed,
                attempts,
                used_tcp: false,
            });
        }
        // TC=1 → retry the same question over TCP.
        let tcp = self.net.query(server, &bytes, Transport::Tcp)?;
        elapsed += tcp.elapsed;
        attempts += tcp.attempts;
        let msg = Message::from_bytes(&tcp.reply).map_err(|_| NetError::Timeout)?;
        Ok(Exchange {
            message: msg,
            elapsed,
            attempts,
            used_tcp: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{AuthServer, ZoneStore};
    use dns_wire::name;
    use dns_wire::rdata::{RData, SoaData};
    use dns_wire::record::Record;
    use dns_zone::Zone;
    use std::net::Ipv4Addr;

    fn setup() -> (Arc<Network>, Addr) {
        let net = Arc::new(Network::new(1));
        let apex = name!("t.test");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.t.test"),
                rname: name!("h.t.test"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 300,
            }),
        ));
        for i in 0..15 {
            z.add(Record::new(
                apex.clone(),
                300,
                RData::Txt(vec![vec![b'a' + i; 180]]),
            ));
        }
        z.add(Record::new(
            name!("www.t.test"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let store = Arc::new(ZoneStore::new());
        store.insert(z);
        let sid = net.register(AuthServer::new(store));
        let addr = Addr::V4(Ipv4Addr::new(192, 0, 2, 53));
        net.bind_simple(addr, sid);
        (net, addr)
    }

    #[test]
    fn simple_query() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let ex = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap();
        assert!(!ex.used_tcp);
        assert_eq!(ex.message.answers_of(RecordType::A).len(), 1);
        assert!(ex.elapsed > 0);
    }

    #[test]
    fn truncation_falls_back_to_tcp() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let ex = c
            .query(addr, &name!("t.test"), RecordType::Txt, true)
            .unwrap();
        assert!(ex.used_tcp);
        assert_eq!(ex.message.answers_of(RecordType::Txt).len(), 15);
        assert!(ex.attempts >= 2);
    }

    #[test]
    fn unreachable_propagates() {
        let (net, _) = setup();
        let c = DnsClient::new(net);
        let err = c
            .query(
                Addr::V4(Ipv4Addr::new(203, 0, 113, 1)),
                &name!("x.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err, NetError::Unreachable);
    }

    #[test]
    fn ids_increment() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let a = c
            .query(addr, &name!("www.t.test"), RecordType::A, false)
            .unwrap();
        let b = c
            .query(addr, &name!("www.t.test"), RecordType::A, false)
            .unwrap();
        assert_ne!(a.message.header.id, b.message.header.id);
    }
}
