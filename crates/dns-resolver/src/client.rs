//! One authoritative exchange: query a specific server address.
//!
//! The client distinguishes *why* an exchange failed ([`ClientErrorKind`])
//! and reports the exact virtual time and datagram count the failure cost,
//! so callers charge real elapsed time instead of a guess. An optional
//! [`RetryPolicy`] re-sends timed-out or malformed exchanges with
//! exponential backoff and deterministic jitter.

use crate::cachelog::{CacheLog, ReferralData};
use crate::hostile::{HostileCause, HostileTally};
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::record::RecordType;
use netsim::{Addr, DeterministicDraw, NetError, Network, SimMicros, Transport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::Arc;

/// The result of one logical query (possibly UDP + TCP retry).
#[derive(Debug, Clone)]
pub struct Exchange {
    pub message: Message,
    /// Virtual time spent, including retries and the TCP fallback.
    pub elapsed: SimMicros,
    /// Datagrams sent (UDP attempts + TCP attempts).
    pub attempts: u32,
    /// Query bytes put on the wire across every attempt, UDP and TCP
    /// fallback alike (the fallback re-sends the same payload).
    pub bytes_sent: u64,
    /// Reply bytes actually delivered back, including truncated UDP
    /// replies that triggered the TCP fallback.
    pub bytes_received: u64,
    /// Whether the final answer arrived over TCP.
    pub used_tcp: bool,
    /// How many whole-exchange retries the [`RetryPolicy`] spent before
    /// this answer arrived (0 = first try succeeded).
    pub retries: u32,
}

/// Why a logical query failed, after all configured retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientErrorKind {
    /// Nothing is bound at the address; no datagram was ever sent.
    Unreachable,
    /// Every attempt timed out (loss, black-hole, outage).
    Timeout,
    /// A reply arrived but did not parse as a DNS message.
    Malformed,
    /// A reply parsed but failed the acceptance gate (wrong ID, QNAME or
    /// QTYPE, or not a response at all) on every attempt. Retried like
    /// `Malformed` — the mismatch may be a one-off injection.
    Rejected,
    /// The meter's per-zone work budget was exhausted before the query
    /// was sent; no datagram left, the failure costs nothing.
    BudgetExceeded,
}

/// A failed logical query, with exact cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientError {
    pub kind: ClientErrorKind,
    /// Virtual time burned across all attempts and backoff waits.
    pub elapsed: SimMicros,
    /// Datagrams sent across all attempts.
    pub attempts: u32,
    /// Query bytes put on the wire across every attempt.
    pub bytes_sent: u64,
    /// Reply bytes delivered before the failure (a malformed reply still
    /// crossed the wire; a truncated UDP reply still cost its bytes even
    /// if the TCP follow-up then timed out).
    pub bytes_received: u64,
    /// Whole-exchange retries performed (0 = failed on the first try).
    pub retries: u32,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} after {} attempt(s), {} retry(ies), {} µs",
            self.kind, self.attempts, self.retries, self.elapsed
        )
    }
}

impl std::error::Error for ClientError {}

/// Whole-exchange retry schedule: how many times to re-send a timed-out or
/// malformed query, and how long to wait in between.
///
/// The wait before retry `r` (1-based) is `backoff_base * 2^(r-1)` plus a
/// deterministic jitter in `[0, wait/2)` drawn from `(seed, query id, r)`,
/// so identical runs back off identically. `Unreachable` is never retried
/// — no server will appear mid-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra tries after the first (0 disables retrying).
    pub retries: u32,
    /// Base wait in virtual µs before the first retry; doubles each time.
    pub backoff_base: SimMicros,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retrying at all: fail on the first bad exchange.
    pub const NONE: RetryPolicy = RetryPolicy {
        retries: 0,
        backoff_base: 0,
        seed: 0,
    };

    /// The backoff wait before retry `retry` (1-based) of query `id`.
    pub fn backoff(&self, id: u16, retry: u32) -> SimMicros {
        if retry == 0 || self.backoff_base == 0 {
            return 0;
        }
        let base = self.backoff_base << (retry - 1).min(10);
        let jitter_span = (base / 2).max(1);
        let jitter = DeterministicDraw::new(
            self.seed ^ 0x0bac_0ff5,
            &[&id.to_be_bytes(), &retry.to_be_bytes()],
        )
        .below(jitter_span);
        base + jitter
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

/// Totals accumulated by a [`QueryMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Datagrams put on the wire (UDP attempts + TCP attempts, lost ones
    /// included — a lost datagram still cost its bytes).
    pub datagrams: u64,
    /// Query bytes sent across all attempts.
    pub bytes_sent: u64,
    /// Reply bytes delivered (malformed and truncated replies included).
    pub bytes_received: u64,
    /// TC=1 → TCP fallback exchanges entered.
    pub tcp_fallbacks: u64,
}

impl IoCounters {
    /// Component-wise sum.
    pub fn add(&mut self, other: IoCounters) {
        self.datagrams += other.datagrams;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.tcp_fallbacks += other.tcp_fallbacks;
    }
}

/// Per-scope I/O accounting for a group of logical queries.
///
/// The scanner creates one meter per zone so every datagram and byte —
/// including TCP-fallback retransmissions after truncation and the cost
/// of exchanges that ultimately *failed* — is charged to exactly one
/// zone's budget. The meter also owns the query-ID derivation for its
/// scope: an ID is a pure function of the meter's seed and the query's
/// (server, qname, qtype, occurrence) coordinates, so metered work draws
/// no IDs from the client's shared counter, two zones' wire traffic is
/// independent of scan order, and — crucially for the delegation cache —
/// a query's payload does not change when *other* queries in the same
/// scope are elided by a cache hit.
///
/// The meter also collects the [`CacheLog`] of resolver-cache inserts
/// performed on its behalf, so the scanner can journal each zone's exact
/// cache side effects even when workers share the caches.
#[derive(Debug)]
pub struct QueryMeter {
    /// Seed for the per-query ID derivation.
    id_seed: u64,
    /// (server, qname-hash, qtype) → how many logical queries with those
    /// coordinates have drawn an ID so far. The occurrence number keeps
    /// repeat queries (health re-probes, CNAME re-walks) distinct while
    /// staying independent of anything *between* them.
    issued: Mutex<HashMap<(Addr, u64, u16), u32>>,
    /// Resolver-cache inserts made while working under this meter.
    cache_log: Mutex<CacheLog>,
    datagrams: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    tcp_fallbacks: AtomicU64,
    /// Logical queries begun (each `query_at_with` call, before netsim
    /// retries fan out into datagrams).
    logical: AtomicU64,
    /// Hard cap on `logical`; 0 = unlimited. Once reached, further
    /// queries fail instantly with [`ClientErrorKind::BudgetExceeded`] —
    /// this is the amplification cap.
    budget: u64,
    /// Per-cause hostile-event counters, [`HostileCause::index`]-ordered.
    hostile: [AtomicU64; 7],
}

impl QueryMeter {
    /// A fresh meter deriving its query IDs from `id_seed`, no budget.
    pub fn new(id_seed: u64) -> Self {
        QueryMeter::with_budget(id_seed, 0)
    }

    /// A fresh meter with a logical-query budget (0 = unlimited).
    pub fn with_budget(id_seed: u64, budget: u64) -> Self {
        QueryMeter {
            id_seed,
            issued: Mutex::new(HashMap::new()),
            cache_log: Mutex::new(CacheLog::default()),
            datagrams: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            tcp_fallbacks: AtomicU64::new(0),
            logical: AtomicU64::new(0),
            budget,
            hostile: Default::default(),
        }
    }

    /// The ID for one logical query: a deterministic function of the
    /// meter seed and (server, qname, qtype, occurrence). Eliding a query
    /// elsewhere in the scope (a delegation-cache hit skipping the
    /// root/TLD hops) therefore never shifts the IDs — and hence the wire
    /// payloads — of the queries that do go out.
    pub fn id_for(&self, server: Addr, qname: &Name, qtype: RecordType) -> u16 {
        let occurrence = {
            let mut issued = self.issued.lock();
            let n = issued
                .entry((server, qname.fnv64(), qtype.code()))
                .or_insert(0);
            *n += 1;
            *n
        };
        DeterministicDraw::new(
            self.id_seed ^ 0x1d5e_ed00,
            &[
                &server.to_bytes(),
                &qname.fnv64().to_be_bytes(),
                &qtype.code().to_be_bytes(),
                &occurrence.to_be_bytes(),
            ],
        )
        .below(0x1_0000) as u16
    }

    /// Record an address-cache insert made on this meter's behalf.
    pub fn log_addr_insert(&self, ns: Name, addrs: Arc<Vec<Addr>>) {
        self.cache_log.lock().addr_inserts.push((ns, addrs));
    }

    /// Record a delegation-cache insert made on this meter's behalf.
    pub fn log_referral_insert(&self, cut: Name, data: Arc<ReferralData>) {
        self.cache_log.lock().referral_inserts.push((cut, data));
    }

    /// Take the cache-insert log accumulated so far, leaving it empty.
    pub fn take_cache_log(&self) -> CacheLog {
        std::mem::take(&mut *self.cache_log.lock())
    }

    /// The configured logical-query budget (0 = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Logical queries begun so far.
    pub fn logical_queries(&self) -> u64 {
        self.logical.load(Ordering::Relaxed)
    }

    /// Charge one logical query against the budget. `false` means the
    /// budget is exhausted (the exceed event is tallied once per refusal).
    fn begin_query(&self) -> bool {
        if self.budget != 0 && self.logical.load(Ordering::Relaxed) >= self.budget {
            self.note_hostile(HostileCause::BudgetExceeded);
            return false;
        }
        self.logical.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Tally a hostile event observed while working under this meter.
    pub fn note_hostile(&self, cause: HostileCause) {
        // bootscan-allow(P002): fixed-arity tally array; HostileCause::index() < ALL.len() by construction
        self.hostile[cause.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-cause hostile-event counters.
    pub fn hostile(&self) -> HostileTally {
        // bootscan-allow(P002): fixed-arity tally array; HostileCause::index() < ALL.len() by construction
        let at = |c: HostileCause| self.hostile[c.index()].load(Ordering::Relaxed);
        HostileTally {
            mismatched_replies: at(HostileCause::MismatchedReply),
            foreign_records: at(HostileCause::ForeignRecords),
            referral_loops: at(HostileCause::ReferralLoop),
            wide_referrals: at(HostileCause::WideReferral),
            alias_loops: at(HostileCause::AliasLoop),
            budget_exceeded: at(HostileCause::BudgetExceeded),
            lame_delegations: at(HostileCause::LameDelegation),
        }
    }

    fn record(&self, io: IoCounters) {
        self.datagrams.fetch_add(io.datagrams, Ordering::Relaxed);
        self.bytes_sent.fetch_add(io.bytes_sent, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(io.bytes_received, Ordering::Relaxed);
        self.tcp_fallbacks
            .fetch_add(io.tcp_fallbacks, Ordering::Relaxed);
    }

    /// Snapshot of the totals recorded so far.
    pub fn io(&self) -> IoCounters {
        IoCounters {
            datagrams: self.datagrams.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            tcp_fallbacks: self.tcp_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// A thin client over the simulated network.
///
/// Stateless apart from a query-ID counter; share freely across scanner
/// workers via `Arc`.
pub struct DnsClient {
    net: Arc<Network>,
    next_id: AtomicU16,
    retry: RetryPolicy,
}

impl DnsClient {
    pub fn new(net: Arc<Network>) -> Self {
        DnsClient {
            net,
            next_id: AtomicU16::new(1),
            retry: RetryPolicy::NONE,
        }
    }

    /// Same client, but retrying per `policy`.
    pub fn with_retry(net: Arc<Network>, policy: RetryPolicy) -> Self {
        DnsClient {
            net,
            next_id: AtomicU16::new(1),
            retry: policy,
        }
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The underlying network (for stats access).
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Send (qname, qtype) to `server`; follow truncation over TCP.
    pub fn query(
        &self,
        server: Addr,
        qname: &Name,
        qtype: RecordType,
        dnssec_ok: bool,
    ) -> Result<Exchange, ClientError> {
        self.query_at(0, server, qname, qtype, dnssec_ok)
    }

    /// Like [`query`](Self::query), but the exchange starts at virtual
    /// time `now`, so time-windowed faults and outages see when each
    /// attempt really lands.
    pub fn query_at(
        &self,
        now: SimMicros,
        server: Addr,
        qname: &Name,
        qtype: RecordType,
        dnssec_ok: bool,
    ) -> Result<Exchange, ClientError> {
        self.query_at_with(None, now, server, qname, qtype, dnssec_ok)
    }

    /// Like [`query_at`](Self::query_at), but charging IDs, datagrams and
    /// bytes to `meter` (when given) instead of the client's shared
    /// counter. Every path records into the meter — success, unreachable
    /// and exhausted-retry failures alike — so no wire traffic escapes
    /// the caller's budget.
    pub fn query_at_with(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        server: Addr,
        qname: &Name,
        qtype: RecordType,
        dnssec_ok: bool,
    ) -> Result<Exchange, ClientError> {
        if let Some(m) = meter {
            // The amplification cap: once a zone's budget is gone, no
            // further datagram leaves on its behalf.
            if !m.begin_query() {
                return Err(ClientError {
                    kind: ClientErrorKind::BudgetExceeded,
                    elapsed: 0,
                    attempts: 0,
                    bytes_sent: 0,
                    bytes_received: 0,
                    retries: 0,
                });
            }
        }
        let id = match meter {
            Some(m) => m.id_for(server, qname, qtype),
            None => self.next_id.fetch_add(1, Ordering::Relaxed),
        };
        let q = Message::query(id, qname.clone(), qtype, dnssec_ok);
        let bytes = q.to_bytes();
        let wire_len = bytes.len() as u64;
        let mut elapsed: SimMicros = 0;
        let mut attempts: u32 = 0;
        let mut bytes_received: u64 = 0;
        let mut tcp_fallbacks: u64 = 0;
        let mut kind = ClientErrorKind::Timeout;
        let mut outcome: Option<Result<Exchange, ClientError>> = None;
        for retry in 0..=self.retry.retries {
            elapsed += self.retry.backoff(id, retry);
            match self.exchange_once(now + elapsed, server, &q, &bytes) {
                Ok(once) => {
                    attempts += once.attempts;
                    bytes_received += once.bytes_received;
                    tcp_fallbacks += u64::from(once.used_tcp);
                    if once.foreign > 0 {
                        if let Some(m) = meter {
                            m.note_hostile(HostileCause::ForeignRecords);
                        }
                    }
                    outcome = Some(Ok(Exchange {
                        message: once.message,
                        elapsed: elapsed + once.elapsed,
                        attempts,
                        bytes_sent: u64::from(attempts) * wire_len,
                        bytes_received,
                        used_tcp: once.used_tcp,
                        retries: retry,
                    }));
                    break;
                }
                Err(once) => {
                    elapsed += once.elapsed;
                    attempts += once.attempts;
                    bytes_received += once.bytes_received;
                    tcp_fallbacks += u64::from(once.used_tcp);
                    kind = once.kind;
                    // No server will appear mid-scan: don't retry.
                    if once.kind == ClientErrorKind::Unreachable {
                        outcome = Some(Err(ClientError {
                            kind: once.kind,
                            elapsed,
                            attempts,
                            bytes_sent: u64::from(attempts) * wire_len,
                            bytes_received,
                            retries: retry,
                        }));
                        break;
                    }
                }
            }
        }
        let outcome = outcome.unwrap_or(Err(ClientError {
            kind,
            elapsed,
            attempts,
            bytes_sent: u64::from(attempts) * wire_len,
            bytes_received,
            retries: self.retry.retries,
        }));
        if let (Some(m), Err(e)) = (meter, &outcome) {
            if e.kind == ClientErrorKind::Rejected {
                m.note_hostile(HostileCause::MismatchedReply);
            }
        }
        if let Some(m) = meter {
            m.record(IoCounters {
                datagrams: u64::from(attempts),
                bytes_sent: u64::from(attempts) * wire_len,
                bytes_received,
                tcp_fallbacks,
            });
        }
        outcome
    }

    /// One UDP exchange plus the TC=1 → TCP fallback, no retrying.
    fn exchange_once(
        &self,
        at: SimMicros,
        server: Addr,
        query: &Message,
        bytes: &[u8],
    ) -> Result<OnceOk, OnceErr> {
        let udp = match self.net.query_at(at, server, bytes, Transport::Udp) {
            Ok(o) => o,
            Err(f) => {
                return Err(OnceErr {
                    kind: kind_of(f.error),
                    elapsed: f.elapsed,
                    attempts: f.attempts,
                    bytes_received: 0,
                    used_tcp: false,
                })
            }
        };
        let mut elapsed = udp.elapsed;
        let mut attempts = udp.attempts;
        let mut bytes_received = udp.reply.len() as u64;
        let mut msg = match Message::from_bytes(&udp.reply) {
            Ok(m) => m,
            Err(_) => {
                return Err(OnceErr {
                    kind: ClientErrorKind::Malformed,
                    elapsed,
                    attempts,
                    bytes_received,
                    used_tcp: false,
                })
            }
        };
        let mut foreign = match accept_reply(query, &mut msg) {
            Ok(n) => n,
            Err(()) => {
                return Err(OnceErr {
                    kind: ClientErrorKind::Rejected,
                    elapsed,
                    attempts,
                    bytes_received,
                    used_tcp: false,
                })
            }
        };
        if !msg.header.flags.truncated {
            return Ok(OnceOk {
                message: msg,
                elapsed,
                attempts,
                bytes_received,
                used_tcp: false,
                foreign,
            });
        }
        // TC=1 → retry the same question over TCP. The truncated UDP
        // reply already cost its bytes, and the TCP attempts cost theirs
        // whether or not the fallback ultimately succeeds.
        let tcp = match self
            .net
            .query_at(at + elapsed, server, bytes, Transport::Tcp)
        {
            Ok(o) => o,
            Err(f) => {
                return Err(OnceErr {
                    kind: kind_of(f.error),
                    elapsed: elapsed + f.elapsed,
                    attempts: attempts + f.attempts,
                    bytes_received,
                    used_tcp: true,
                })
            }
        };
        elapsed += tcp.elapsed;
        attempts += tcp.attempts;
        bytes_received += tcp.reply.len() as u64;
        let mut msg = match Message::from_bytes(&tcp.reply) {
            Ok(m) => m,
            Err(_) => {
                return Err(OnceErr {
                    kind: ClientErrorKind::Malformed,
                    elapsed,
                    attempts,
                    bytes_received,
                    used_tcp: true,
                })
            }
        };
        foreign += match accept_reply(query, &mut msg) {
            Ok(n) => n,
            Err(()) => {
                return Err(OnceErr {
                    kind: ClientErrorKind::Rejected,
                    elapsed,
                    attempts,
                    bytes_received,
                    used_tcp: true,
                })
            }
        };
        Ok(OnceOk {
            message: msg,
            elapsed,
            attempts,
            bytes_received,
            used_tcp: true,
            foreign,
        })
    }
}

/// The response-acceptance gate: a reply is only believed when it is a
/// response to the question we actually asked — QR set, same ID, exactly
/// the echoed question (QNAME + QTYPE). Anything else is `Err(())` →
/// [`ClientErrorKind::Rejected`].
///
/// Accepted replies are additionally scrubbed: answer-section records not
/// owned by the QNAME are stripped before the message reaches any cache or
/// classifier (authoritative servers answer at the name asked; off-name
/// answer records are injection, and an in-zone CNAME chase re-queries the
/// target under its own QNAME). Returns the number of stripped records.
fn accept_reply(query: &Message, reply: &mut Message) -> Result<u32, ()> {
    if !reply.header.flags.response || reply.header.id != query.header.id {
        return Err(());
    }
    let q = match query.questions.first() {
        Some(q) => q,
        None => return Err(()),
    };
    let rq = match reply.questions.first() {
        Some(rq) => rq,
        None => return Err(()),
    };
    if reply.questions.len() != 1 || rq.name != q.name || rq.rtype != q.rtype {
        return Err(());
    }
    let before = reply.answers.len();
    reply.answers.retain(|r| r.name == q.name);
    Ok((before - reply.answers.len()) as u32)
}

/// One successful UDP(+TCP) exchange, before retry accounting.
struct OnceOk {
    message: Message,
    elapsed: SimMicros,
    attempts: u32,
    bytes_received: u64,
    used_tcp: bool,
    /// Foreign answer records stripped by the acceptance gate.
    foreign: u32,
}

/// One failed UDP(+TCP) exchange, before retry accounting.
struct OnceErr {
    kind: ClientErrorKind,
    elapsed: SimMicros,
    attempts: u32,
    bytes_received: u64,
    used_tcp: bool,
}

fn kind_of(e: NetError) -> ClientErrorKind {
    match e {
        NetError::Unreachable => ClientErrorKind::Unreachable,
        NetError::Timeout => ClientErrorKind::Timeout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{AuthServer, ZoneStore};
    use dns_wire::name;
    use dns_wire::rdata::{RData, SoaData};
    use dns_wire::record::Record;
    use dns_zone::Zone;
    use netsim::{FaultKind, FaultPlan, FaultScope, FaultSpec, Window};
    use std::net::Ipv4Addr;

    fn setup() -> (Arc<Network>, Addr) {
        let net = Arc::new(Network::new(1));
        let apex = name!("t.test");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Soa(SoaData {
                mname: name!("ns1.t.test"),
                rname: name!("h.t.test"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 300,
            }),
        ));
        for i in 0..15 {
            z.add(Record::new(
                apex.clone(),
                300,
                RData::Txt(vec![vec![b'a' + i; 180]]),
            ));
        }
        z.add(Record::new(
            name!("www.t.test"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let store = Arc::new(ZoneStore::new());
        store.insert(z);
        let sid = net.register(AuthServer::new(store));
        let addr = Addr::V4(Ipv4Addr::new(192, 0, 2, 53));
        net.bind_simple(addr, sid);
        (net, addr)
    }

    #[test]
    fn simple_query() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let ex = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap();
        assert!(!ex.used_tcp);
        assert_eq!(ex.retries, 0);
        assert_eq!(ex.message.answers_of(RecordType::A).len(), 1);
        assert!(ex.elapsed > 0);
    }

    #[test]
    fn truncation_falls_back_to_tcp() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let ex = c
            .query(addr, &name!("t.test"), RecordType::Txt, true)
            .unwrap();
        assert!(ex.used_tcp);
        assert_eq!(ex.message.answers_of(RecordType::Txt).len(), 15);
        assert!(ex.attempts >= 2);
    }

    #[test]
    fn unreachable_propagates_with_zero_cost() {
        let (net, _) = setup();
        let c = DnsClient::new(net);
        let err = c
            .query(
                Addr::V4(Ipv4Addr::new(203, 0, 113, 1)),
                &name!("x.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Unreachable);
        assert_eq!(err.elapsed, 0);
        assert_eq!(err.attempts, 0);
        assert_eq!(err.retries, 0);
    }

    #[test]
    fn unreachable_is_never_retried() {
        let (net, _) = setup();
        let c = DnsClient::with_retry(
            net,
            RetryPolicy {
                retries: 3,
                backoff_base: 100_000,
                seed: 5,
            },
        );
        let err = c
            .query(
                Addr::V4(Ipv4Addr::new(203, 0, 113, 1)),
                &name!("x.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Unreachable);
        assert_eq!(err.retries, 0);
        assert_eq!(err.elapsed, 0);
    }

    #[test]
    fn ids_increment() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let a = c
            .query(addr, &name!("www.t.test"), RecordType::A, false)
            .unwrap();
        let b = c
            .query(addr, &name!("www.t.test"), RecordType::A, false)
            .unwrap();
        assert_ne!(a.message.header.id, b.message.header.id);
    }

    /// A black-hole covering exactly the first logical exchange: without
    /// retries the query dies; with retries the backoff pushes the second
    /// exchange past the outage and it succeeds.
    fn outage_plan(addr: Addr) -> FaultPlan {
        FaultPlan::new(0).with(FaultSpec {
            scope: FaultScope::to_addr(addr),
            window: Window::Interval {
                start: 0,
                end: 6_000_000,
            },
            kind: FaultKind::BlackHole,
        })
    }

    #[test]
    fn timeout_without_retry_reports_exact_cost() {
        let (net, addr) = setup();
        net.set_faults(outage_plan(addr));
        let c = DnsClient::new(Arc::clone(&net));
        let err = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Timeout);
        assert_eq!(err.retries, 0);
        assert_eq!(err.attempts, 3);
        assert_eq!(err.elapsed, 3 * 2_000_000);
    }

    #[test]
    fn retry_recovers_after_transient_outage() {
        let (net, addr) = setup();
        net.set_faults(outage_plan(addr));
        let c = DnsClient::with_retry(
            Arc::clone(&net),
            RetryPolicy {
                retries: 2,
                backoff_base: 500_000,
                seed: 7,
            },
        );
        let ex = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap();
        // First exchange burns 3 attempts inside the outage; the backoff
        // lands the second exchange after it ends.
        assert_eq!(ex.retries, 1);
        assert_eq!(ex.attempts, 4);
        assert!(ex.elapsed > 3 * 2_000_000);
        assert_eq!(ex.message.answers_of(RecordType::A).len(), 1);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy {
            retries: 4,
            backoff_base: 100_000,
            seed: 42,
        };
        assert_eq!(p.backoff(9, 0), 0);
        for r in 1..=4u32 {
            let base = 100_000u64 << (r - 1);
            let w = p.backoff(9, r);
            assert!(w >= base && w < base + base / 2, "retry {r}: {w}");
            assert_eq!(w, p.backoff(9, r), "jitter must be deterministic");
        }
        // Different query ids jitter differently somewhere.
        assert!((0..50u16).any(|id| p.backoff(id, 1) != p.backoff(id + 50, 1)));
        assert_eq!(RetryPolicy::NONE.backoff(1, 1), 0);
    }

    #[test]
    fn tcp_fallback_bytes_count_against_the_meter() {
        // The truncated TXT query is the budget-accounting regression:
        // the TCP retransmission after TC=1 must be charged to the meter
        // exactly like the UDP attempts, byte for byte.
        let (net, addr) = setup();
        let c = DnsClient::new(Arc::clone(&net));
        let meter = QueryMeter::new(900);
        let ex = c
            .query_at_with(
                Some(&meter),
                0,
                addr,
                &name!("t.test"),
                RecordType::Txt,
                true,
            )
            .unwrap();
        assert!(ex.used_tcp);
        assert!(ex.attempts >= 2);
        let io = meter.io();
        assert_eq!(io.datagrams, u64::from(ex.attempts));
        assert_eq!(io.tcp_fallbacks, 1);
        assert_eq!(io.bytes_sent, ex.bytes_sent);
        assert_eq!(io.bytes_received, ex.bytes_received);
        // Exact conservation: the client-side meter equals the wire-level
        // totals the network itself recorded — nothing double-counted,
        // nothing escaped.
        let snap = net.stats().snapshot();
        assert_eq!(io.datagrams, snap.queries);
        assert_eq!(io.bytes_sent, snap.bytes_sent);
        assert_eq!(io.bytes_received, snap.bytes_received);
    }

    #[test]
    fn metered_failures_still_charge_the_budget() {
        // Attempts burned by a timed-out exchange are charged too.
        let (net, addr) = setup();
        net.set_faults(outage_plan(addr));
        let c = DnsClient::new(Arc::clone(&net));
        let meter = QueryMeter::new(1);
        let err = c
            .query_at_with(
                Some(&meter),
                0,
                addr,
                &name!("www.t.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Timeout);
        let io = meter.io();
        assert_eq!(io.datagrams, u64::from(err.attempts));
        assert_eq!(io.bytes_sent, err.bytes_sent);
        assert_eq!(io.bytes_received, 0);
        let snap = net.stats().snapshot();
        assert_eq!(io.datagrams, snap.queries);
        assert_eq!(io.bytes_sent, snap.bytes_sent);

        // …while an unreachable address costs exactly nothing.
        let meter2 = QueryMeter::new(1);
        let err = c
            .query_at_with(
                Some(&meter2),
                0,
                Addr::V4(Ipv4Addr::new(203, 0, 113, 9)),
                &name!("www.t.test"),
                RecordType::A,
                true,
            )
            .unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Unreachable);
        assert_eq!(meter2.io(), IoCounters::default());
    }

    #[test]
    fn metered_queries_leave_the_shared_id_counter_alone() {
        let (net, addr) = setup();
        let c = DnsClient::new(net);
        let meter = QueryMeter::new(500);
        let m = c
            .query_at_with(
                Some(&meter),
                0,
                addr,
                &name!("www.t.test"),
                RecordType::A,
                true,
            )
            .unwrap();
        // A metered ID is derived, not drawn from the shared counter: a
        // second meter with the same seed reproduces it exactly.
        let meter2 = QueryMeter::new(500);
        let m2 = c
            .query_at_with(
                Some(&meter2),
                0,
                addr,
                &name!("www.t.test"),
                RecordType::A,
                true,
            )
            .unwrap();
        assert_eq!(m.message.header.id, m2.message.header.id);
        // The next unmetered query still gets the first shared ID.
        let g = c
            .query(addr, &name!("www.t.test"), RecordType::A, true)
            .unwrap();
        assert_eq!(g.message.header.id, 1);
    }

    #[test]
    fn derived_ids_are_stable_coordinates_not_a_sequence() {
        let q = name!("www.t.test");
        let a1 = Addr::V4(Ipv4Addr::new(192, 0, 2, 53));
        let a2 = Addr::V4(Ipv4Addr::new(192, 0, 2, 54));
        let m = QueryMeter::new(7);
        let first = m.id_for(a1, &q, RecordType::A);
        let other_dst = m.id_for(a2, &q, RecordType::A);
        let repeat = m.id_for(a1, &q, RecordType::A);
        // Re-asking the same question draws a fresh occurrence number.
        assert_ne!(first, repeat);
        // A different server's ID stream is independent: asking it did
        // not shift the repeat above, and eliding it entirely leaves the
        // first-server IDs untouched.
        let n = QueryMeter::new(7);
        assert_eq!(n.id_for(a1, &q, RecordType::A), first);
        assert_eq!(n.id_for(a1, &q, RecordType::A), repeat);
        let _ = other_dst;
    }

    #[test]
    fn retried_runs_are_reproducible() {
        let run = || {
            let (net, addr) = setup();
            net.set_faults(outage_plan(addr));
            let c = DnsClient::with_retry(
                Arc::clone(&net),
                RetryPolicy {
                    retries: 2,
                    backoff_base: 500_000,
                    seed: 7,
                },
            );
            let ex = c
                .query(addr, &name!("www.t.test"), RecordType::A, true)
                .unwrap();
            (ex.elapsed, ex.attempts, ex.retries)
        };
        assert_eq!(run(), run());
    }
}
