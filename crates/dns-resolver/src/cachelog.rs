//! Per-meter cache-effect log: every insert the resolver makes into its
//! shared caches while working under a [`QueryMeter`] is recorded here,
//! attributed to exactly the zone whose meter paid for the queries that
//! produced it. The scanner drains the log after each zone and writes it
//! to the crash-recovery journal, so a resumed scan can replay the exact
//! cache state the uninterrupted run would have seen — even when several
//! workers share the caches and inserts interleave.
//!
//! Entries hold `Arc`s into the live cache values, so logging costs one
//! pointer bump per insert instead of a deep clone under the cache lock.
//!
//! [`QueryMeter`]: crate::client::QueryMeter

use dns_wire::name::Name;
use dns_wire::rdata::{DsData, RrsigData};
use netsim::Addr;
use std::sync::Arc;

/// Positive referral data for one zone cut, as learned from the parent:
/// everything a later walk needs to reconstruct the crossed
/// [`ChainLink`](crate::iterate::ChainLink) without re-querying the
/// parent. `ds: None` doubles as the *negative* DS cache — the referral
/// carried no DS records, and that absence is itself an answer (an
/// insecure delegation) that repeat walks must not re-fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferralData {
    /// Apex of the zone that spoke the referral.
    pub parent_apex: Name,
    /// NS target names at the cut.
    pub ns_names: Vec<Name>,
    /// DS RRs at the parent side (`None` = insecure delegation).
    pub ds: Option<Vec<DsData>>,
    /// RRSIGs over the DS RRset.
    pub ds_rrsigs: Vec<RrsigData>,
    /// Server addresses the walk used for the child zone.
    pub child_servers: Vec<Addr>,
    /// Server addresses of the parent zone (for re-querying DS).
    pub parent_servers: Vec<Addr>,
}

/// Cache inserts performed under one meter, in insertion order.
#[derive(Debug, Default)]
pub struct CacheLog {
    /// NS hostname → resolved addresses.
    pub addr_inserts: Vec<(Name, Arc<Vec<Addr>>)>,
    /// Zone cut → referral data learned from its parent.
    pub referral_inserts: Vec<(Name, Arc<ReferralData>)>,
}

impl CacheLog {
    pub fn is_empty(&self) -> bool {
        self.addr_inserts.is_empty() && self.referral_inserts.is_empty()
    }
}
