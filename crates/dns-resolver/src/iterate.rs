//! Iterative resolution: walk referrals from the root, recording the
//! delegation chain for later DNSSEC validation.

use crate::client::{DnsClient, QueryMeter};
use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::rdata::{DsData, RData};
use dns_wire::record::{Record, RecordType};
use netsim::{Addr, SimMicros};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Root server hints: the addresses of the (simulated) root servers.
#[derive(Debug, Clone)]
pub struct RootHints {
    pub addrs: Vec<Addr>,
}

/// One crossed zone cut, recorded during the walk.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Apex of the zone that delegated.
    pub parent_apex: Name,
    /// The delegated (child) zone apex.
    pub child_apex: Name,
    /// DS RRs seen at the parent side of the cut (`None` = no DS RRs in
    /// the referral — an insecure delegation).
    pub ds: Option<Vec<DsData>>,
    /// RRSIGs over the DS RRset (for validating the DS itself).
    pub ds_rrsigs: Vec<dns_wire::rdata::RrsigData>,
    /// NS target names at the cut.
    pub ns_names: Vec<Name>,
    /// Server addresses used for the child zone.
    pub child_servers: Vec<Addr>,
    /// Server addresses of the parent zone (for re-querying DS).
    pub parent_servers: Vec<Addr>,
}

/// A completed resolution.
#[derive(Debug, Clone)]
pub struct Resolution {
    pub rcode: Rcode,
    /// Answer-section records from the final response.
    pub answers: Vec<Record>,
    /// Authority-section records from the final response (SOA/NSEC...).
    pub authorities: Vec<Record>,
    /// Zone cuts crossed, root-first.
    pub chain: Vec<ChainLink>,
    /// Apex of the zone that answered.
    pub zone_apex: Name,
    /// Servers of the answering zone.
    pub zone_servers: Vec<Addr>,
    /// Virtual time spent.
    pub elapsed: SimMicros,
    /// Queries sent (logical, after netsim-level retries are folded in).
    pub queries: u32,
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverError {
    /// No server for a zone could be reached.
    AllServersFailed(Name),
    /// Referral loop or excessive depth.
    TooManyReferrals,
    /// NS addresses could not be resolved.
    NoAddresses(Name),
}

impl fmt::Display for ResolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolverError::AllServersFailed(z) => write!(f, "all servers failed for {z}"),
            ResolverError::TooManyReferrals => write!(f, "too many referrals"),
            ResolverError::NoAddresses(n) => write!(f, "no addresses for {n}"),
        }
    }
}

impl std::error::Error for ResolverError {}

#[derive(Default)]
struct Cache {
    /// ns hostname → addresses.
    addresses: HashMap<Name, Vec<Addr>>,
    /// Inserts made by resolution (not by [`Resolver::seed_address`]),
    /// in insertion order — drained by the scanner so a recovery journal
    /// can replay exactly the cache side effects each zone produced.
    insert_log: Vec<(Name, Vec<Addr>)>,
}

/// The iterative resolver.
pub struct Resolver {
    client: Arc<DnsClient>,
    roots: RootHints,
    cache: Mutex<Cache>,
    max_referrals: usize,
    max_depth: usize,
}

impl Resolver {
    pub fn new(client: Arc<DnsClient>, roots: RootHints) -> Self {
        Resolver {
            client,
            roots,
            cache: Mutex::new(Cache::default()),
            max_referrals: 32,
            max_depth: 6,
        }
    }

    /// The underlying client (for direct per-NS queries by the scanner).
    pub fn client(&self) -> &Arc<DnsClient> {
        &self.client
    }

    /// Resolve (name, type) iteratively from the root.
    pub fn resolve(&self, qname: &Name, qtype: RecordType) -> Result<Resolution, ResolverError> {
        self.resolve_inner(None, 0, qname, qtype, 0)
    }

    /// Like [`resolve`](Self::resolve), but the walk starts at virtual
    /// time `now`, so time-windowed faults see when each query lands.
    pub fn resolve_at(
        &self,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
    ) -> Result<Resolution, ResolverError> {
        self.resolve_inner(None, now, qname, qtype, 0)
    }

    /// Like [`resolve_at`](Self::resolve_at), charging every exchange of
    /// the walk — including nested NS-address resolutions, whose cost the
    /// returned [`Resolution`] does not itemise — to `meter`.
    pub fn resolve_at_with(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
    ) -> Result<Resolution, ResolverError> {
        self.resolve_inner(meter, now, qname, qtype, 0)
    }

    fn resolve_inner(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
        depth: usize,
    ) -> Result<Resolution, ResolverError> {
        if depth > self.max_depth {
            return Err(ResolverError::TooManyReferrals);
        }
        let mut servers = self.roots.addrs.clone();
        let mut zone_apex = Name::root();
        let mut chain: Vec<ChainLink> = Vec::new();
        let mut elapsed: SimMicros = 0;
        let mut queries: u32 = 0;

        for _hop in 0..self.max_referrals {
            let (msg, ex_elapsed, ex_queries) =
                self.query_first_responsive(meter, now + elapsed, &servers, qname, qtype)?;
            elapsed += ex_elapsed;
            queries += ex_queries;

            let msg: Message = msg;
            if msg.rcode() == Rcode::NxDomain
                || msg.header.flags.authoritative
                || msg.rcode().is_error()
            {
                return Ok(Resolution {
                    rcode: msg.rcode(),
                    answers: msg.answers,
                    authorities: msg.authorities,
                    chain,
                    zone_apex,
                    zone_servers: servers,
                    elapsed,
                    queries,
                });
            }
            // Referral: find the NS RRset in authority.
            let ns_records: Vec<&Record> = msg
                .authorities
                .iter()
                .filter(|r| r.rtype() == RecordType::Ns)
                .collect();
            if ns_records.is_empty() {
                // Neither authoritative nor a referral — treat as lame.
                return Ok(Resolution {
                    rcode: msg.rcode(),
                    answers: msg.answers,
                    authorities: msg.authorities,
                    chain,
                    zone_apex,
                    zone_servers: servers,
                    elapsed,
                    queries,
                });
            }
            let cut = ns_records[0].name.clone();
            if !cut.is_strict_subdomain_of(&zone_apex) {
                // Upward or sideways referral: bogus server, stop.
                return Err(ResolverError::TooManyReferrals);
            }
            let ns_names: Vec<Name> = ns_records
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            let ds: Vec<DsData> = msg
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ds(d) if r.name == cut => Some(d.clone()),
                    _ => None,
                })
                .collect();
            let ds_rrsigs: Vec<_> = msg
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(s) if r.name == cut && s.type_covered == RecordType::Ds.code() => {
                        Some(s.clone())
                    }
                    _ => None,
                })
                .collect();
            // Addresses: glue first, then recursive resolution.
            let mut addrs: Vec<Addr> = Vec::new();
            for rec in &msg.additionals {
                match &rec.rdata {
                    RData::A(a) if ns_names.contains(&rec.name) => addrs.push(Addr::V4(*a)),
                    RData::Aaaa(a) if ns_names.contains(&rec.name) => addrs.push(Addr::V6(*a)),
                    _ => {}
                }
            }
            if addrs.is_empty() {
                for ns in &ns_names {
                    addrs.extend(self.addresses_of_inner(meter, now + elapsed, ns, depth + 1)?);
                    if !addrs.is_empty() {
                        break;
                    }
                }
            }
            if addrs.is_empty() {
                return Err(ResolverError::NoAddresses(cut));
            }
            chain.push(ChainLink {
                parent_apex: zone_apex.clone(),
                child_apex: cut.clone(),
                ds: if ds.is_empty() { None } else { Some(ds) },
                ds_rrsigs,
                ns_names,
                child_servers: addrs.clone(),
                parent_servers: servers.clone(),
            });
            zone_apex = cut;
            servers = addrs;
        }
        Err(ResolverError::TooManyReferrals)
    }

    /// Resolve the addresses of a nameserver hostname (cached).
    pub fn addresses_of(&self, ns: &Name) -> Result<Vec<Addr>, ResolverError> {
        self.addresses_of_inner(None, 0, ns, 0)
    }

    /// Like [`addresses_of`](Self::addresses_of), starting at virtual
    /// time `now`.
    pub fn addresses_of_at(&self, now: SimMicros, ns: &Name) -> Result<Vec<Addr>, ResolverError> {
        self.addresses_of_inner(None, now, ns, 0)
    }

    /// Like [`addresses_of_at`](Self::addresses_of_at), charging the
    /// lookups to `meter`.
    pub fn addresses_of_at_with(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        ns: &Name,
    ) -> Result<Vec<Addr>, ResolverError> {
        self.addresses_of_inner(meter, now, ns, 0)
    }

    fn addresses_of_inner(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        ns: &Name,
        depth: usize,
    ) -> Result<Vec<Addr>, ResolverError> {
        if let Some(a) = self.cache.lock().addresses.get(ns) {
            return Ok(a.clone());
        }
        let mut addrs = Vec::new();
        for qtype in [RecordType::A, RecordType::Aaaa] {
            if let Ok(res) = self.resolve_inner(meter, now, ns, qtype, depth) {
                for rec in &res.answers {
                    match &rec.rdata {
                        RData::A(a) if rec.name == *ns => addrs.push(Addr::V4(*a)),
                        RData::Aaaa(a) if rec.name == *ns => addrs.push(Addr::V6(*a)),
                        _ => {}
                    }
                }
            }
        }
        let mut cache = self.cache.lock();
        cache.addresses.insert(ns.clone(), addrs.clone());
        cache.insert_log.push((ns.clone(), addrs.clone()));
        Ok(addrs)
    }

    /// Pre-seed the address cache (the ecosystem does this for operator
    /// NS hostnames whose addresses are part of the ground truth; journal
    /// recovery does it when replaying logged inserts). Not logged.
    pub fn seed_address(&self, ns: Name, addrs: Vec<Addr>) {
        self.cache.lock().addresses.insert(ns, addrs);
    }

    /// Take the address-cache inserts made by resolution since the last
    /// drain, in insertion order.
    pub fn drain_address_log(&self) -> Vec<(Name, Vec<Addr>)> {
        std::mem::take(&mut self.cache.lock().insert_log)
    }

    fn query_first_responsive(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        servers: &[Addr],
        qname: &Name,
        qtype: RecordType,
    ) -> Result<(Message, SimMicros, u32), ResolverError> {
        let mut elapsed = 0;
        let mut queries = 0;
        for &addr in servers {
            queries += 1;
            match self
                .client
                .query_at_with(meter, now + elapsed, addr, qname, qtype, true)
            {
                Ok(ex) => {
                    elapsed += ex.elapsed;
                    // SERVFAIL → try the next server, as real resolvers do.
                    if ex.message.rcode() == Rcode::ServFail {
                        continue;
                    }
                    return Ok((ex.message, elapsed, queries));
                }
                Err(e) => {
                    // Charge the real cost of the failure (an unreachable
                    // address costs nothing; exhausted timeouts cost every
                    // attempt plus backoff).
                    elapsed += e.elapsed;
                }
            }
        }
        Err(ResolverError::AllServersFailed(qname.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Integration-style resolver tests live in `validate.rs` and the
    // workspace `tests/` directory where a full root→TLD→zone tree is
    // built; here we only exercise error paths that need no network.

    #[test]
    fn error_display() {
        let e = ResolverError::AllServersFailed(Name::parse("x.test").unwrap());
        assert!(e.to_string().contains("x.test"));
        assert!(ResolverError::TooManyReferrals
            .to_string()
            .contains("referrals"));
        let e = ResolverError::NoAddresses(Name::parse("ns.test").unwrap());
        assert!(e.to_string().contains("ns.test"));
    }
}
