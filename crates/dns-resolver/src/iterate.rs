//! Iterative resolution: walk referrals from the root, recording the
//! delegation chain for later DNSSEC validation.
//!
//! The walk is *hardened* by default (DESIGN.md §6c): referrals must step
//! strictly downwards along the QNAME, NS fan-out is capped, glue is only
//! believed inside the cut's bailiwick, NS-hostname address resolution
//! carries a visited set so delegation loops terminate with a named cause
//! instead of burning the depth budget, CNAME chains at the queried name
//! are chased with an alias cap, and every cache entry is tagged with the
//! zone apex that produced it so a record can never serve a name outside
//! its provenance. `Resolver::with_hardening(.., false)` restores the
//! trusting pre-hardening walk (kept for the amplification ablation).
//!
//! ## Caching (DESIGN.md §7)
//!
//! Two caches share [`CACHE_SHARDS`]-way striped storage keyed by
//! `fnv64(name) % N`, so concurrent workers rarely contend on the same
//! lock:
//!
//! * the **address cache** — NS hostname → addresses, as before, now
//!   `Arc`-shared so a hit costs a pointer bump, not a `Vec` clone;
//! * the **delegation cache** — zone cut → [`ReferralData`] (NS set, DS
//!   presence *or absence*, glue, the servers on both sides). A walk
//!   first looks up the deepest cached ancestor of its QNAME whose
//!   parent chain closes at the root, reconstructs those [`ChainLink`]s
//!   without any network traffic, and wire-walks only the remainder —
//!   root and TLD servers are hit O(distinct zone cuts) instead of
//!   O(zones × queries).
//!
//! Both caches are pure accelerators: every entry is a deterministic
//! function of the simulated world, so a hit changes *when* datagrams go
//! out, never *what* any response contains — classifications are
//! invariant under cache state. Entries carry the same provenance tags
//! as the poisoning-hardened address cache (referral data is believed
//! only when spoken by a proper ancestor of the cut), and every insert
//! made under a [`QueryMeter`] is logged to that meter's
//! [`CacheLog`](crate::cachelog::CacheLog) so the crash-recovery journal
//! can replay identical cache state on resume.

use crate::cachelog::ReferralData;
use crate::client::{ClientErrorKind, DnsClient, QueryMeter};
use crate::hostile::HostileCause;
use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::rdata::{DsData, RData};
use dns_wire::record::{Record, RecordType};
use netsim::{Addr, SimMicros};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Stripe count for the shared caches. A power of two so the modulo
/// compiles to a mask; 16 stripes keep 8 workers' collision probability
/// low without bloating the resolver.
const CACHE_SHARDS: usize = 16;

/// Validity window stamped on organic cache inserts, in virtual
/// microseconds: one hour, matching the TTL the ecosystem puts on NS
/// and address RRsets. Within a single scan every zone's virtual clock
/// stays far below this, so single-epoch behavior is unchanged; across
/// epochs (where virtual time advances by hours) stale entries stop
/// being consulted and are evicted lazily.
pub const CACHE_TTL_MICROS: SimMicros = 3_600_000_000;

/// Root server hints: the addresses of the (simulated) root servers.
#[derive(Debug, Clone)]
pub struct RootHints {
    pub addrs: Vec<Addr>,
}

/// One crossed zone cut, recorded during the walk.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Apex of the zone that delegated.
    pub parent_apex: Name,
    /// The delegated (child) zone apex.
    pub child_apex: Name,
    /// DS RRs seen at the parent side of the cut (`None` = no DS RRs in
    /// the referral — an insecure delegation).
    pub ds: Option<Vec<DsData>>,
    /// RRSIGs over the DS RRset (for validating the DS itself).
    pub ds_rrsigs: Vec<dns_wire::rdata::RrsigData>,
    /// NS target names at the cut.
    pub ns_names: Vec<Name>,
    /// Server addresses used for the child zone.
    pub child_servers: Vec<Addr>,
    /// Server addresses of the parent zone (for re-querying DS).
    pub parent_servers: Vec<Addr>,
}

/// A completed resolution.
#[derive(Debug, Clone)]
pub struct Resolution {
    pub rcode: Rcode,
    /// Answer-section records from the final response.
    pub answers: Vec<Record>,
    /// Authority-section records from the final response (SOA/NSEC...).
    pub authorities: Vec<Record>,
    /// Zone cuts crossed, root-first.
    pub chain: Vec<ChainLink>,
    /// Apex of the zone that answered.
    pub zone_apex: Name,
    /// Servers of the answering zone.
    pub zone_servers: Vec<Addr>,
    /// Virtual time spent.
    pub elapsed: SimMicros,
    /// Queries sent (logical, after netsim-level retries are folded in).
    pub queries: u32,
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverError {
    /// No server for a zone could be reached.
    AllServersFailed(Name),
    /// Referral loop or excessive depth.
    TooManyReferrals,
    /// NS addresses could not be resolved.
    NoAddresses(Name),
    /// The hardening layer rejected the walk for a named hostile cause
    /// (loop, fan-out, alias chain, exhausted budget, ...).
    Hostile(HostileCause),
}

impl fmt::Display for ResolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolverError::AllServersFailed(z) => write!(f, "all servers failed for {z}"),
            ResolverError::TooManyReferrals => write!(f, "too many referrals"),
            ResolverError::NoAddresses(n) => write!(f, "no addresses for {n}"),
            ResolverError::Hostile(c) => write!(f, "hostile: {c}"),
        }
    }
}

impl std::error::Error for ResolverError {}

/// One address-cache entry: the addresses plus the apex of the zone whose
/// servers supplied them. A cached datum is only consulted for names
/// inside that provenance, so a poisoned insert can never leak across
/// bailiwicks.
struct AddrEntry {
    addrs: Arc<Vec<Addr>>,
    provenance: Name,
    /// Virtual-time expiry: the entry is never consulted at or past
    /// this instant and is evicted lazily when a lookup finds it stale.
    expires_at: SimMicros,
}

/// One delegation-cache entry: the referral data for a zone cut plus the
/// apex of the zone that spoke it. Consulted only when the provenance is
/// a proper ancestor of the cut — the same bailiwick discipline as the
/// address cache, so an out-of-provenance insert is dead weight.
struct DelegationEntry {
    data: Arc<ReferralData>,
    provenance: Name,
    /// Virtual-time expiry, same semantics as [`AddrEntry::expires_at`].
    expires_at: SimMicros,
}

/// One stripe of the shared caches; which stripe a name lands in is
/// `fnv64(name) % CACHE_SHARDS`.
#[derive(Default)]
struct CacheShard {
    /// ns hostname → addresses, provenance-tagged.
    addresses: HashMap<Name, AddrEntry>,
    /// zone cut → referral data, provenance-tagged.
    delegations: HashMap<Name, DelegationEntry>,
}

/// The iterative resolver.
pub struct Resolver {
    client: Arc<DnsClient>,
    roots: RootHints,
    shards: Vec<Mutex<CacheShard>>,
    max_referrals: usize,
    max_depth: usize,
    hardened: bool,
    /// NS-set width cap per referral (NXNS amplification defence).
    max_ns_fanout: usize,
    /// CNAME hops chased at the queried name before declaring a loop.
    max_alias_hops: usize,
}

impl Resolver {
    pub fn new(client: Arc<DnsClient>, roots: RootHints) -> Self {
        Resolver::with_hardening(client, roots, true)
    }

    /// Like [`new`](Self::new), choosing whether the hardening layer is
    /// active. The unhardened walk trusts referrals the way the
    /// pre-adversarial resolver did; it exists for the amplification
    /// ablation bench, not for production scans.
    pub fn with_hardening(client: Arc<DnsClient>, roots: RootHints, hardened: bool) -> Self {
        Resolver {
            client,
            roots,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            max_referrals: 32,
            max_depth: 6,
            hardened,
            max_ns_fanout: 16,
            max_alias_hops: 4,
        }
    }

    /// The stripe holding `name`'s cache entries.
    fn shard(&self, name: &Name) -> &Mutex<CacheShard> {
        // bootscan-allow(P002): stripe index is fnv64 % CACHE_SHARDS and the vec holds exactly CACHE_SHARDS stripes
        &self.shards[(name.fnv64() % CACHE_SHARDS as u64) as usize]
    }

    /// Sole approved write path into the shared address cache. Every
    /// entry carries its provenance tag; audited by bootscan-lint (V001),
    /// which forbids raw map inserts anywhere else.
    fn cache_address(&self, ns: &Name, entry: AddrEntry) {
        // bootscan-allow(V001): the one approved provenance-tagged insert into the address cache
        self.shard(ns).lock().addresses.insert(ns.clone(), entry);
    }

    /// Sole approved write path into the shared delegation cache — the
    /// V001 provenance discipline, same as [`Self::cache_address`].
    fn cache_delegation(&self, cut: &Name, entry: DelegationEntry) {
        let mut shard = self.shard(cut).lock();
        // bootscan-allow(V001): the one approved provenance-tagged insert into the delegation cache
        shard.delegations.insert(cut.clone(), entry);
    }

    /// Whether the hardening layer is active.
    pub fn hardened(&self) -> bool {
        self.hardened
    }

    /// The underlying client (for direct per-NS queries by the scanner).
    pub fn client(&self) -> &Arc<DnsClient> {
        &self.client
    }

    /// Resolve (name, type) iteratively from the root.
    pub fn resolve(&self, qname: &Name, qtype: RecordType) -> Result<Resolution, ResolverError> {
        self.resolve_at_with(None, 0, qname, qtype)
    }

    /// Like [`resolve`](Self::resolve), but the walk starts at virtual
    /// time `now`, so time-windowed faults see when each query lands.
    pub fn resolve_at(
        &self,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
    ) -> Result<Resolution, ResolverError> {
        self.resolve_at_with(None, now, qname, qtype)
    }

    /// Like [`resolve_at`](Self::resolve_at), charging every exchange of
    /// the walk — including nested NS-address resolutions, whose cost the
    /// returned [`Resolution`] does not itemise — to `meter`.
    pub fn resolve_at_with(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
    ) -> Result<Resolution, ResolverError> {
        let mut visited = Vec::new();
        self.resolve_chased(meter, now, qname, qtype, 0, &mut visited)
    }

    /// Walk to (qname, qtype), then — hardened only — chase an in-answer
    /// CNAME chain under the alias cap, accumulating cost. The benign
    /// ecosystem never aliases scanner-resolved names, so the chase is
    /// pure adversary defence: a looping or over-long chain at a signal
    /// name fails with [`HostileCause::AliasLoop`] instead of silently
    /// reading as "no signal records".
    fn resolve_chased(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
        depth: usize,
        visited: &mut Vec<Name>,
    ) -> Result<Resolution, ResolverError> {
        let mut res = self.walk(meter, now, qname, qtype, depth, visited)?;
        if !self.hardened || qtype == RecordType::Cname {
            return Ok(res);
        }
        let mut aliases: Vec<Name> = vec![qname.clone()];
        let mut cur = qname.clone();
        loop {
            let direct = res
                .answers
                .iter()
                .any(|r| r.name == cur && r.rtype() == qtype);
            let target = res.answers.iter().find_map(|r| match &r.rdata {
                RData::Cname(t) if r.name == cur => Some(t.clone()),
                _ => None,
            });
            let target = match (direct, target) {
                (false, Some(t)) => t,
                _ => return Ok(res),
            };
            if aliases.contains(&target) || aliases.len() > self.max_alias_hops {
                if let Some(m) = meter {
                    m.note_hostile(HostileCause::AliasLoop);
                }
                return Err(ResolverError::Hostile(HostileCause::AliasLoop));
            }
            aliases.push(target.clone());
            let next = self.walk(meter, now + res.elapsed, &target, qtype, depth, visited)?;
            res = Resolution {
                elapsed: res.elapsed + next.elapsed,
                queries: res.queries + next.queries,
                ..next
            };
            cur = target;
        }
    }

    fn walk(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        qname: &Name,
        qtype: RecordType,
        depth: usize,
        visited: &mut Vec<Name>,
    ) -> Result<Resolution, ResolverError> {
        if depth > self.max_depth {
            return Err(ResolverError::TooManyReferrals);
        }
        // Warm start: reconstruct the deepest cached ancestor chain of
        // qname and wire-walk only the remainder. A cold walk from the
        // root and a warm one converge on identical referral data — the
        // cache elides hops, it never changes what the tail sees.
        let (mut chain, mut zone_apex, mut servers) = self.cached_descent(qname, qtype, now);
        let mut elapsed: SimMicros = 0;
        let mut queries: u32 = 0;

        for _hop in 0..self.max_referrals {
            let (msg, ex_elapsed, ex_queries) =
                self.query_first_responsive(meter, now + elapsed, &servers, qname, qtype)?;
            elapsed += ex_elapsed;
            queries += ex_queries;

            let msg: Message = msg;
            if msg.rcode() == Rcode::NxDomain
                || msg.header.flags.authoritative
                || msg.rcode().is_error()
            {
                let rcode = msg.rcode();
                let mut authorities = msg.authorities;
                if self.hardened {
                    // Final answers may only carry authority records from
                    // the answering zone's own bailiwick.
                    let before = authorities.len();
                    authorities.retain(|r| r.name.is_subdomain_of(&zone_apex));
                    if authorities.len() < before {
                        if let Some(m) = meter {
                            m.note_hostile(HostileCause::ForeignRecords);
                        }
                    }
                }
                return Ok(Resolution {
                    rcode,
                    answers: msg.answers,
                    authorities,
                    chain,
                    zone_apex,
                    zone_servers: servers,
                    elapsed,
                    queries,
                });
            }
            // Referral: find the NS RRset in authority.
            let ns_all: Vec<&Record> = msg
                .authorities
                .iter()
                .filter(|r| r.rtype() == RecordType::Ns)
                .collect();
            let Some(first_ns) = ns_all.first() else {
                // Neither authoritative nor a referral — treat as lame.
                return Ok(Resolution {
                    rcode: msg.rcode(),
                    answers: msg.answers,
                    authorities: msg.authorities,
                    chain,
                    zone_apex,
                    zone_servers: servers,
                    elapsed,
                    queries,
                });
            };
            let cut = first_ns.name.clone();
            let ns_records: Vec<&Record> = if self.hardened {
                // Only NS records owned by the cut name delegate; stray NS
                // rows at other names are injected padding.
                let kept: Vec<&Record> = ns_all.iter().copied().filter(|r| r.name == cut).collect();
                let foreign_auth = msg
                    .authorities
                    .iter()
                    .filter(|r| !r.name.is_subdomain_of(&zone_apex))
                    .count();
                if ns_all.len() - kept.len() + foreign_auth > 0 {
                    if let Some(m) = meter {
                        m.note_hostile(HostileCause::ForeignRecords);
                    }
                }
                // The cut must descend from the delegating zone AND lie on
                // the path to qname: anything else (upward, sideways, or
                // self-referral) can never make progress.
                if !cut.is_strict_subdomain_of(&zone_apex) || !qname.is_subdomain_of(&cut) {
                    if let Some(m) = meter {
                        m.note_hostile(HostileCause::ReferralLoop);
                    }
                    return Err(ResolverError::Hostile(HostileCause::ReferralLoop));
                }
                kept
            } else {
                if !cut.is_strict_subdomain_of(&zone_apex) {
                    // Upward or sideways referral: bogus server, stop.
                    return Err(ResolverError::TooManyReferrals);
                }
                ns_all
            };
            let ns_names: Vec<Name> = ns_records
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            if self.hardened && ns_names.len() > self.max_ns_fanout {
                if let Some(m) = meter {
                    m.note_hostile(HostileCause::WideReferral);
                }
                return Err(ResolverError::Hostile(HostileCause::WideReferral));
            }
            let ds: Vec<DsData> = msg
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ds(d) if r.name == cut => Some(d.clone()),
                    _ => None,
                })
                .collect();
            let ds_rrsigs: Vec<_> = msg
                .authorities
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(s) if r.name == cut && s.type_covered == RecordType::Ds.code() => {
                        Some(s.clone())
                    }
                    _ => None,
                })
                .collect();
            // Addresses: glue first, then recursive resolution. Hardened,
            // glue is only believed for NS targets inside the cut. Courtesy
            // glue for a *wanted* but out-of-bailiwick NS is normal benign
            // behaviour — ignored without suspicion; address records for
            // names that are not delegation targets at all are injected
            // padding and count as hostile evidence.
            let mut addrs: Vec<Addr> = Vec::new();
            let mut foreign_glue = 0usize;
            for rec in &msg.additionals {
                let is_addr = matches!(rec.rdata, RData::A(_) | RData::Aaaa(_));
                let wanted = ns_names.contains(&rec.name);
                let in_cut = rec.name.is_subdomain_of(&cut);
                if is_addr && wanted && (!self.hardened || in_cut) {
                    match &rec.rdata {
                        RData::A(a) => addrs.push(Addr::V4(*a)),
                        RData::Aaaa(a) => addrs.push(Addr::V6(*a)),
                        _ => {}
                    }
                } else if is_addr && self.hardened && !wanted {
                    foreign_glue += 1;
                }
            }
            if foreign_glue > 0 {
                if let Some(m) = meter {
                    m.note_hostile(HostileCause::ForeignRecords);
                }
            }
            if addrs.is_empty() {
                for ns in &ns_names {
                    let resolved =
                        self.addresses_of_inner(meter, now + elapsed, ns, depth + 1, visited)?;
                    addrs.extend(resolved.iter().copied());
                    if !addrs.is_empty() {
                        break;
                    }
                }
            }
            if addrs.is_empty() {
                return Err(ResolverError::NoAddresses(cut));
            }
            // The cut is crossed: record it in the chain and publish the
            // referral data so later walks can skip this hop. Inserts
            // overwrite (an unusable poisoned entry is replaced by the
            // organic re-fetch, exactly like the address cache) and are
            // logged to the meter for journal replay.
            let data = Arc::new(ReferralData {
                parent_apex: zone_apex.clone(),
                ns_names,
                ds: if ds.is_empty() { None } else { Some(ds) },
                ds_rrsigs,
                child_servers: addrs.clone(),
                parent_servers: std::mem::take(&mut servers),
            });
            chain.push(ChainLink {
                parent_apex: data.parent_apex.clone(),
                child_apex: cut.clone(),
                ds: data.ds.clone(),
                ds_rrsigs: data.ds_rrsigs.clone(),
                ns_names: data.ns_names.clone(),
                child_servers: data.child_servers.clone(),
                parent_servers: data.parent_servers.clone(),
            });
            self.cache_delegation(
                &cut,
                DelegationEntry {
                    data: Arc::clone(&data),
                    provenance: data.parent_apex.clone(),
                    expires_at: (now + elapsed).saturating_add(CACHE_TTL_MICROS),
                },
            );
            if let Some(m) = meter {
                m.log_referral_insert(cut.clone(), Arc::clone(&data));
            }
            zone_apex = cut;
            servers = addrs;
        }
        Err(ResolverError::TooManyReferrals)
    }

    /// The warm-start point for a walk to (qname, qtype): the deepest
    /// cached ancestor cut of qname whose parent chain closes at the
    /// root, reconstructed as ready-made [`ChainLink`]s, plus the apex
    /// and servers to resume from. Falls back to the root hints when no
    /// usable chain exists.
    ///
    /// A DS query must stop at the *parent* side of its cut (the parent
    /// answers DS authoritatively; the child never sees a referral for
    /// it), so qname itself is not a candidate cut for DS.
    fn cached_descent(
        &self,
        qname: &Name,
        qtype: RecordType,
        now: SimMicros,
    ) -> (Vec<ChainLink>, Name, Vec<Addr>) {
        let total = qname.label_count();
        let mut skip = usize::from(qtype == RecordType::Ds);
        while total > skip {
            if let Some(start) = self.chain_from(qname, total - skip, now) {
                return start;
            }
            skip += 1;
        }
        (Vec::new(), Name::root(), self.roots.addrs.clone())
    }

    /// Try to rebuild the full root→cut chain for the ancestor of
    /// `qname` with `labels` labels, following each entry's
    /// `parent_apex` upwards. `None` if any hop is missing or fails the
    /// provenance rule.
    fn chain_from(
        &self,
        qname: &Name,
        labels: usize,
        now: SimMicros,
    ) -> Option<(Vec<ChainLink>, Name, Vec<Addr>)> {
        let mut cut = qname.clone();
        while cut.label_count() > labels {
            cut = cut.parent()?;
        }
        let apex = cut.clone();
        let mut links_rev: Vec<ChainLink> = Vec::new();
        let mut servers: Option<Vec<Addr>> = None;
        loop {
            let data = {
                let mut shard = self.shard(&cut).lock();
                let e = shard.delegations.get(&cut)?;
                // Validity rule: an expired entry is never consulted and
                // is evicted on the spot (lazy eviction — DESIGN.md §10).
                if e.expires_at <= now {
                    shard.delegations.remove(&cut);
                    return None;
                }
                // Bailiwick rule, mirroring the address cache: referral
                // data for a cut is believed only when it was spoken by
                // a proper ancestor of that cut.
                if !cut.is_strict_subdomain_of(&e.provenance) {
                    return None;
                }
                Arc::clone(&e.data)
            };
            if servers.is_none() {
                servers = Some(data.child_servers.clone());
            }
            links_rev.push(ChainLink {
                parent_apex: data.parent_apex.clone(),
                child_apex: cut,
                ds: data.ds.clone(),
                ds_rrsigs: data.ds_rrsigs.clone(),
                ns_names: data.ns_names.clone(),
                child_servers: data.child_servers.clone(),
                parent_servers: data.parent_servers.clone(),
            });
            if data.parent_apex.label_count() == 0 {
                break;
            }
            cut = data.parent_apex.clone();
        }
        links_rev.reverse();
        Some((links_rev, apex, servers?))
    }

    /// Resolve the addresses of a nameserver hostname (cached).
    pub fn addresses_of(&self, ns: &Name) -> Result<Arc<Vec<Addr>>, ResolverError> {
        self.addresses_of_at_with(None, 0, ns)
    }

    /// Like [`addresses_of`](Self::addresses_of), starting at virtual
    /// time `now`.
    pub fn addresses_of_at(
        &self,
        now: SimMicros,
        ns: &Name,
    ) -> Result<Arc<Vec<Addr>>, ResolverError> {
        self.addresses_of_at_with(None, now, ns)
    }

    /// Like [`addresses_of_at`](Self::addresses_of_at), charging the
    /// lookups to `meter`.
    pub fn addresses_of_at_with(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        ns: &Name,
    ) -> Result<Arc<Vec<Addr>>, ResolverError> {
        let mut visited = Vec::new();
        self.addresses_of_inner(meter, now, ns, 0, &mut visited)
    }

    fn addresses_of_inner(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        ns: &Name,
        depth: usize,
        visited: &mut Vec<Name>,
    ) -> Result<Arc<Vec<Addr>>, ResolverError> {
        {
            let mut shard = self.shard(ns).lock();
            if let Some(e) = shard.addresses.get(ns) {
                if e.expires_at <= now {
                    // Expired: never consulted, evicted lazily.
                    shard.addresses.remove(ns);
                } else if ns.is_subdomain_of(&e.provenance) {
                    // Bailiwick rule: a cached datum only serves names
                    // inside the zone that produced it.
                    return Ok(Arc::clone(&e.addrs));
                }
            }
        }
        if self.hardened && visited.iter().any(|v| v == ns) {
            // This NS hostname's resolution is already in flight above us:
            // a delegation loop (A's servers are named under B, B's under
            // A) would recurse forever without this.
            if let Some(m) = meter {
                m.note_hostile(HostileCause::ReferralLoop);
            }
            return Err(ResolverError::Hostile(HostileCause::ReferralLoop));
        }
        visited.push(ns.clone());
        let mut addrs = Vec::new();
        let mut provenance = ns.clone();
        for qtype in [RecordType::A, RecordType::Aaaa] {
            match self.resolve_chased(meter, now, ns, qtype, depth, visited) {
                Ok(res) => {
                    for rec in &res.answers {
                        match &rec.rdata {
                            RData::A(a) if rec.name == *ns => addrs.push(Addr::V4(*a)),
                            RData::Aaaa(a) if rec.name == *ns => addrs.push(Addr::V6(*a)),
                            _ => {}
                        }
                    }
                    provenance = res.zone_apex;
                }
                Err(e @ ResolverError::Hostile(_)) => {
                    visited.pop();
                    return Err(e);
                }
                Err(_) => {}
            }
        }
        visited.pop();
        // One allocation, shared three ways: the cache entry, the meter
        // log and the caller all hold the same `Arc`. The meter append
        // happens outside the shard lock — the old global cache cloned
        // the full vector twice inside its critical section.
        let addrs = Arc::new(addrs);
        self.cache_address(
            ns,
            AddrEntry {
                addrs: Arc::clone(&addrs),
                provenance,
                expires_at: now.saturating_add(CACHE_TTL_MICROS),
            },
        );
        if let Some(m) = meter {
            m.log_addr_insert(ns.clone(), Arc::clone(&addrs));
        }
        Ok(addrs)
    }

    /// Pre-seed the address cache (the ecosystem does this for operator
    /// NS hostnames whose addresses are part of the ground truth; journal
    /// recovery does it when replaying logged inserts). Not logged. The
    /// entry's provenance is the hostname itself, so it serves exactly
    /// that name and nothing else.
    pub fn seed_address(&self, ns: Name, addrs: Vec<Addr>) {
        let provenance = ns.clone();
        self.seed_address_with_provenance(ns, addrs, provenance);
    }

    /// [`seed_address`](Self::seed_address) with an explicit virtual-time
    /// expiry — the epoch service uses this to carry cache entries across
    /// epochs with their *remaining* validity, so a carried entry expires
    /// at exactly the same virtual instant it would have in a single
    /// continuous run.
    pub fn seed_address_until(&self, ns: Name, addrs: Vec<Addr>, expires_at: SimMicros) {
        let provenance = ns.clone();
        self.cache_address(
            &ns,
            AddrEntry {
                addrs: Arc::new(addrs),
                provenance,
                expires_at,
            },
        );
    }

    /// Insert an address-cache entry with an explicit provenance tag —
    /// test hook for the cache-poisoning regression suite (a poisoned
    /// entry whose provenance does not contain the hostname must never be
    /// consulted). Seeded entries never expire: journal replay must
    /// reproduce the interrupted run's cache state verbatim.
    pub fn seed_address_with_provenance(&self, ns: Name, addrs: Vec<Addr>, provenance: Name) {
        self.cache_address(
            &ns,
            AddrEntry {
                addrs: Arc::new(addrs),
                provenance,
                expires_at: SimMicros::MAX,
            },
        );
    }

    /// Pre-seed the delegation cache with referral data for `cut`, as
    /// journal recovery does when replaying a completed zone's logged
    /// inserts. Not logged. Provenance is the parent apex, exactly as an
    /// organic insert records it.
    pub fn seed_referral(&self, cut: Name, data: ReferralData) {
        let provenance = data.parent_apex.clone();
        self.seed_referral_with_provenance(cut, data, provenance);
    }

    /// [`seed_referral`](Self::seed_referral) with an explicit
    /// virtual-time expiry — the epoch carry-over path, mirroring
    /// [`seed_address_until`](Self::seed_address_until).
    pub fn seed_referral_until(&self, cut: Name, data: ReferralData, expires_at: SimMicros) {
        let provenance = data.parent_apex.clone();
        self.cache_delegation(
            &cut,
            DelegationEntry {
                data: Arc::new(data),
                provenance,
                expires_at,
            },
        );
    }

    /// Insert a delegation-cache entry with an explicit provenance tag —
    /// test hook for the cache-poisoning regression suite (referral data
    /// whose provenance is not a proper ancestor of the cut must never
    /// be consulted). Seeded entries never expire: journal replay must
    /// reproduce the interrupted run's cache state verbatim.
    pub fn seed_referral_with_provenance(&self, cut: Name, data: ReferralData, provenance: Name) {
        self.cache_delegation(
            &cut,
            DelegationEntry {
                data: Arc::new(data),
                provenance,
                expires_at: SimMicros::MAX,
            },
        );
    }

    fn query_first_responsive(
        &self,
        meter: Option<&QueryMeter>,
        now: SimMicros,
        servers: &[Addr],
        qname: &Name,
        qtype: RecordType,
    ) -> Result<(Message, SimMicros, u32), ResolverError> {
        let mut elapsed = 0;
        let mut queries = 0;
        for &addr in servers {
            queries += 1;
            match self
                .client
                .query_at_with(meter, now + elapsed, addr, qname, qtype, true)
            {
                Ok(ex) => {
                    elapsed += ex.elapsed;
                    // SERVFAIL → try the next server, as real resolvers do.
                    if ex.message.rcode() == Rcode::ServFail {
                        continue;
                    }
                    return Ok((ex.message, elapsed, queries));
                }
                Err(e) => {
                    // An exhausted budget fails the whole walk at zero
                    // cost — cycling servers cannot refill it.
                    if e.kind == ClientErrorKind::BudgetExceeded {
                        return Err(ResolverError::Hostile(HostileCause::BudgetExceeded));
                    }
                    // Charge the real cost of the failure (an unreachable
                    // address costs nothing; exhausted timeouts cost every
                    // attempt plus backoff).
                    elapsed += e.elapsed;
                }
            }
        }
        Err(ResolverError::AllServersFailed(qname.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Integration-style resolver tests live in `validate.rs` and the
    // workspace `tests/` directory where a full root→TLD→zone tree is
    // built; here we only exercise error paths that need no network.

    #[test]
    fn error_display() {
        let e = ResolverError::AllServersFailed(Name::parse("x.test").unwrap());
        assert!(e.to_string().contains("x.test"));
        assert!(ResolverError::TooManyReferrals
            .to_string()
            .contains("referrals"));
        let e = ResolverError::NoAddresses(Name::parse("ns.test").unwrap());
        assert!(e.to_string().contains("ns.test"));
        let e = ResolverError::Hostile(HostileCause::ReferralLoop);
        assert_eq!(e.to_string(), "hostile: referral-loop");
    }
}
