//! Resolver path tests: caching, out-of-bailiwick NS chasing, truncation
//! fallback through full resolution, and referral-loop protection.

use dns_resolver::{DnsClient, Resolver, RootHints};
use dns_server::{AuthServer, ZoneStore};
use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::rdata::{RData, SoaData};
use dns_wire::record::{Record, RecordType};
use dns_zone::Zone;
use netsim::{Addr, Network, ServerHandler, ServerResponse, SimMicros, Transport};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn soa(apex: &Name) -> Record {
    Record::new(
        apex.clone(),
        300,
        RData::Soa(SoaData {
            mname: Name::parse("ns.invalid").unwrap(),
            rname: Name::parse("h.invalid").unwrap(),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 300,
        }),
    )
}

/// Unsigned world: root → test → {leaf.test, otherhost.test}, where
/// leaf.test's NS hostname lives in otherhost.test (out of bailiwick, no
/// glue anywhere).
fn build_oob_world() -> (Arc<Network>, Vec<Addr>) {
    let net = Arc::new(Network::new(31));

    // otherhost.test hosts the NS hostname's address.
    let other_apex = Name::parse("otherhost.test").unwrap();
    let mut other = Zone::new(other_apex.clone());
    other.add(soa(&other_apex));
    other.add(Record::new(
        other_apex.clone(),
        300,
        RData::Ns(Name::parse("ns1.otherhost.test").unwrap()),
    ));
    let other_addr = Addr::V4(Ipv4Addr::new(192, 0, 2, 60));
    other.add(Record::new(
        Name::parse("ns1.otherhost.test").unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 60)),
    ));
    // The out-of-bailiwick NS hostname for leaf.test:
    other.add(Record::new(
        Name::parse("dns.otherhost.test").unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 61)),
    ));
    let other_store = Arc::new(ZoneStore::new());
    other_store.insert(other);
    let other_sid = net.register(AuthServer::new(other_store));
    net.bind_simple(other_addr, other_sid);

    // leaf.test served at dns.otherhost.test's address.
    let leaf_apex = Name::parse("leaf.test").unwrap();
    let mut leaf = Zone::new(leaf_apex.clone());
    leaf.add(soa(&leaf_apex));
    leaf.add(Record::new(
        leaf_apex.clone(),
        300,
        RData::Ns(Name::parse("dns.otherhost.test").unwrap()),
    ));
    leaf.add(Record::new(
        Name::parse("www.leaf.test").unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 80)),
    ));
    let leaf_store = Arc::new(ZoneStore::new());
    leaf_store.insert(leaf);
    let leaf_sid = net.register(AuthServer::new(leaf_store));
    net.bind_simple(Addr::V4(Ipv4Addr::new(192, 0, 2, 61)), leaf_sid);

    // TLD test: delegations WITHOUT glue for leaf.test (out of
    // bailiwick), WITH glue for otherhost.test.
    let tld_apex = Name::parse("test").unwrap();
    let mut tld = Zone::new(tld_apex.clone());
    tld.add(soa(&tld_apex));
    tld.add(Record::new(
        tld_apex.clone(),
        300,
        RData::Ns(Name::parse("ns1.nic.test").unwrap()),
    ));
    tld.add(Record::new(
        leaf_apex.clone(),
        300,
        RData::Ns(Name::parse("dns.otherhost.test").unwrap()),
    ));
    tld.add(Record::new(
        other_apex.clone(),
        300,
        RData::Ns(Name::parse("ns1.otherhost.test").unwrap()),
    ));
    tld.add(Record::new(
        Name::parse("ns1.otherhost.test").unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 60)),
    ));
    let tld_addr = Addr::V4(Ipv4Addr::new(192, 5, 6, 30));
    tld.add(Record::new(
        Name::parse("ns1.nic.test").unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 5, 6, 30)),
    ));
    let tld_store = Arc::new(ZoneStore::new());
    tld_store.insert(tld);
    let tld_sid = net.register(AuthServer::new(tld_store));
    net.bind_simple(tld_addr, tld_sid);

    // Root.
    let mut root = Zone::new(Name::root());
    root.add(soa(&Name::root()));
    root.add(Record::new(
        Name::root(),
        300,
        RData::Ns(Name::parse("a.root-servers.net").unwrap()),
    ));
    root.add(Record::new(
        tld_apex,
        300,
        RData::Ns(Name::parse("ns1.nic.test").unwrap()),
    ));
    root.add(Record::new(
        Name::parse("ns1.nic.test").unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 5, 6, 30)),
    ));
    let root_store = Arc::new(ZoneStore::new());
    root_store.insert(root);
    let root_sid = net.register(AuthServer::new(root_store));
    let root_addr = Addr::V4(Ipv4Addr::new(198, 41, 0, 4));
    net.bind_simple(root_addr, root_sid);

    (net, vec![root_addr])
}

#[test]
fn out_of_bailiwick_ns_resolved_recursively() {
    let (net, roots) = build_oob_world();
    let client = Arc::new(DnsClient::new(Arc::clone(&net)));
    let resolver = Resolver::new(client, RootHints { addrs: roots });
    let res = resolver
        .resolve(&Name::parse("www.leaf.test").unwrap(), RecordType::A)
        .expect("resolves despite glueless delegation");
    assert_eq!(res.rcode, Rcode::NoError);
    assert_eq!(res.answers.len(), 1);
    assert_eq!(res.zone_apex, Name::parse("leaf.test").unwrap());
}

#[test]
fn address_cache_prevents_re_resolution() {
    let (net, roots) = build_oob_world();
    let client = Arc::new(DnsClient::new(Arc::clone(&net)));
    let resolver = Resolver::new(client, RootHints { addrs: roots });
    let ns = Name::parse("dns.otherhost.test").unwrap();
    let first = resolver.addresses_of(&ns).unwrap();
    let before = net.stats().snapshot().queries;
    let second = resolver.addresses_of(&ns).unwrap();
    let after = net.stats().snapshot().queries;
    assert_eq!(first, second);
    assert_eq!(before, after, "cached lookup must not touch the network");
}

#[test]
fn seeded_addresses_bypass_resolution() {
    let (net, roots) = build_oob_world();
    let client = Arc::new(DnsClient::new(Arc::clone(&net)));
    let resolver = Resolver::new(client, RootHints { addrs: roots });
    let fake = Addr::V4(Ipv4Addr::new(10, 9, 9, 9));
    resolver.seed_address(Name::parse("seeded.example").unwrap(), vec![fake]);
    let got = resolver
        .addresses_of(&Name::parse("seeded.example").unwrap())
        .unwrap();
    assert_eq!(*got, vec![fake]);
}

/// A malicious/broken server that answers every query with a referral to
/// a *sibling* name (never descending) — the resolver must bail out
/// rather than loop.
struct SidewaysReferrer;
impl ServerHandler for SidewaysReferrer {
    fn handle(
        &self,
        q: &[u8],
        _d: Addr,
        _t: Transport,
        _b: u32,
        _now: SimMicros,
    ) -> ServerResponse {
        let Ok(parsed) = Message::from_bytes(q) else {
            return ServerResponse::Drop;
        };
        let mut resp = Message::response_to(&parsed, Rcode::NoError);
        // Referral for a name NOT below the current zone: bogus.
        resp.authorities.push(Record::new(
            Name::parse("elsewhere.example").unwrap(),
            300,
            RData::Ns(Name::parse("ns1.elsewhere.example").unwrap()),
        ));
        resp.additionals.push(Record::new(
            Name::parse("ns1.elsewhere.example").unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
        ));
        ServerResponse::Reply(resp.to_bytes())
    }
}

#[test]
fn sideways_referrals_do_not_loop() {
    let net = Arc::new(Network::new(1));
    let sid = net.register(SidewaysReferrer);
    let root_addr = Addr::V4(Ipv4Addr::new(198, 41, 0, 4));
    net.bind_simple(root_addr, sid);
    net.bind_simple(Addr::V4(Ipv4Addr::new(192, 0, 2, 99)), sid);
    let client = Arc::new(DnsClient::new(Arc::clone(&net)));
    let resolver = Resolver::new(
        client,
        RootHints {
            addrs: vec![root_addr],
        },
    );
    // Must terminate with an error, not hang.
    let res = resolver.resolve(&Name::parse("victim.test").unwrap(), RecordType::A);
    assert!(res.is_err());
}
