//! Scan-cost accounting (paper §3 and Appendix D, experiment E7).
//!
//! The paper reports ~20 queries per nameserver per zone, a month-long
//! scan at 50 qps/NS, 6.5 TiB of raw data, and argues a registry
//! implementing AB need only scan the ~1.2 M signal-bearing zones with
//! heavy short-circuiting. These structs compute the same quantities from
//! a scan run.

use crate::scanner::ScanResults;
use crate::types::{AbClass, DnssecClass};
use netsim::StatsSnapshot;
use serde::Serialize;
use std::fmt::Write as _;

/// Cost summary of one scan run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ScanCost {
    pub zones: u64,
    pub total_queries: u64,
    pub mean_queries_per_zone: f64,
    /// Simulated wall-clock (max over workers), seconds.
    pub simulated_seconds: f64,
    /// Network-level datagrams and bytes (includes netsim retries).
    pub datagrams: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Zones where the Cloudflare sampling policy kicked in.
    pub sampled_zones: u64,
}

/// Compute the cost summary from scan results plus the network counters.
pub fn scan_cost(results: &ScanResults, net: &StatsSnapshot) -> ScanCost {
    let zones = results.zones.len() as u64;
    ScanCost {
        zones,
        total_queries: results.total_queries,
        mean_queries_per_zone: results.total_queries as f64 / zones.max(1) as f64,
        simulated_seconds: results.simulated_duration as f64 / 1e6,
        datagrams: net.queries,
        bytes_sent: net.bytes_sent,
        bytes_received: net.bytes_received,
        sampled_zones: results.zones.iter().filter(|z| z.sampled).count() as u64,
    }
}

impl ScanCost {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Scan cost (paper §3 / Appendix D)");
        let _ = writeln!(s, "  zones scanned            {:>12}", self.zones);
        let _ = writeln!(s, "  logical queries          {:>12}", self.total_queries);
        let _ = writeln!(
            s,
            "  mean queries / zone      {:>12.1}",
            self.mean_queries_per_zone
        );
        let _ = writeln!(
            s,
            "  simulated duration       {:>12.1} s",
            self.simulated_seconds
        );
        let _ = writeln!(s, "  datagrams on the wire    {:>12}", self.datagrams);
        let _ = writeln!(
            s,
            "  bytes sent / received    {:>12} / {}",
            self.bytes_sent, self.bytes_received
        );
        let _ = writeln!(s, "  zones sampled (2-of-12)  {:>12}", self.sampled_zones);
        s
    }
}

/// Appendix D's registry-feasibility estimate: how many zones a registry
/// implementing AB would actually need to scan (those with signal RRs),
/// versus the full dataset, and the short-circuit savings.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RegistryFeasibility {
    pub all_zones: u64,
    /// Zones with extant DS (excluded at zero query cost from registry
    /// data).
    pub skip_extant_ds: u64,
    /// Zones abandoned at the first query (unsigned — no DNSKEY).
    pub short_circuit_unsigned: u64,
    /// Zones that need the full AB evaluation (signal-bearing candidates).
    pub full_evaluation: u64,
}

pub fn registry_feasibility(results: &ScanResults) -> RegistryFeasibility {
    let mut f = RegistryFeasibility::default();
    for z in results.resolved() {
        f.all_zones += 1;
        match z.dnssec {
            DnssecClass::Secured | DnssecClass::Invalid => f.skip_extant_ds += 1,
            DnssecClass::Unsigned => f.short_circuit_unsigned += 1,
            DnssecClass::Island => {
                if z.ab != AbClass::NoSignal {
                    f.full_evaluation += 1;
                } else {
                    f.short_circuit_unsigned += 1;
                }
            }
            DnssecClass::Unresolvable | DnssecClass::Indeterminate => {}
        }
    }
    f
}

impl RegistryFeasibility {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Registry AB feasibility (paper Appendix D)");
        let _ = writeln!(s, "  zones in dataset              {:>10}", self.all_zones);
        let _ = writeln!(
            s,
            "  skipped via extant DS         {:>10}",
            self.skip_extant_ds
        );
        let _ = writeln!(
            s,
            "  short-circuited (no DNSSEC)   {:>10}",
            self.short_circuit_unsigned
        );
        let _ = writeln!(
            s,
            "  needing full AB evaluation    {:>10}",
            self.full_evaluation
        );
        let _ = writeln!(
            s,
            "  fraction needing full work    {:>10.3} %",
            100.0 * self.full_evaluation as f64 / self.all_zones.max(1) as f64
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Identified;
    use crate::types::{CdsClass, ZoneScan};
    use dns_wire::name;

    fn zone(n: &str, dnssec: DnssecClass, ab: AbClass, sampled: bool, queries: u32) -> ZoneScan {
        ZoneScan {
            name: name!(n),
            ns_names: vec![],
            parent_ds: vec![],
            ns_observations: vec![],
            signal_observations: vec![],
            dnssec,
            cds: CdsClass::Absent,
            ab,
            operator: Identified::Unknown,
            queries,
            elapsed: 500_000,
            sampled,
            retry_stats: crate::error::RetryStats::default(),
            degraded: false,
        }
    }

    fn results() -> ScanResults {
        ScanResults {
            zones: vec![
                zone("a.com", DnssecClass::Unsigned, AbClass::NoSignal, false, 10),
                zone(
                    "b.com",
                    DnssecClass::Secured,
                    AbClass::AlreadySecured,
                    true,
                    30,
                ),
                zone(
                    "c.com",
                    DnssecClass::Island,
                    AbClass::SignalCorrect,
                    false,
                    40,
                ),
                zone("d.com", DnssecClass::Island, AbClass::NoSignal, false, 20),
            ],
            simulated_duration: 3_000_000,
            total_queries: 100,
        }
    }

    #[test]
    fn cost_summary() {
        let net = StatsSnapshot {
            queries: 120,
            replies: 110,
            bytes_sent: 6000,
            bytes_received: 50_000,
            per_dest: Default::default(),
        };
        let c = scan_cost(&results(), &net);
        assert_eq!(c.zones, 4);
        assert_eq!(c.total_queries, 100);
        assert_eq!(c.mean_queries_per_zone, 25.0);
        assert_eq!(c.simulated_seconds, 3.0);
        assert_eq!(c.sampled_zones, 1);
        assert!(c.render().contains("mean queries"));
    }

    #[test]
    fn feasibility_short_circuits() {
        let f = registry_feasibility(&results());
        assert_eq!(f.all_zones, 4);
        assert_eq!(f.skip_extant_ds, 1);
        assert_eq!(f.short_circuit_unsigned, 2); // a.com + island w/o signal
        assert_eq!(f.full_evaluation, 1);
        assert!(f.render().contains("full AB evaluation"));
    }
}
