//! Classification: raw observations → the paper's categories.

use crate::scanner::ChainStatus;
use crate::types::*;
use dns_crypto::{ds_digest, DigestType};
use dns_wire::name::Name;
use dns_wire::rdata::DnskeyData;

/// DNSSEC status (§4.1): Secured / Invalid / Island / Unsigned.
pub fn dnssec_class(
    chain: &ChainStatus,
    observations: &[NsObservation],
    validated_zone_keys: Option<&[DnskeyData]>,
) -> DnssecClass {
    match chain {
        ChainStatus::DsPresent(_) => {
            // DS exists; the zone is Secured iff its DNSKEY set chained
            // and self-validated (the scanner already checked both).
            if validated_zone_keys.is_some() {
                DnssecClass::Secured
            } else {
                DnssecClass::Invalid
            }
        }
        ChainStatus::NoDsAtParent | ChainStatus::InsecureAbove => {
            let has_dnskey = observations.iter().any(|o| !o.dnskeys.is_empty());
            if has_dnskey {
                DnssecClass::Island
            } else {
                DnssecClass::Unsigned
            }
        }
        ChainStatus::Bogus => DnssecClass::Invalid,
        // Chain evidence could not be gathered (unreachable/erroring
        // servers): degrade explicitly rather than guess.
        ChainStatus::Indeterminate => DnssecClass::Indeterminate,
    }
}

/// CDS status (§4.2).
pub fn cds_class(
    observations: &[NsObservation],
    zone_keys: Option<&[DnskeyData]>,
    dnssec: DnssecClass,
) -> CdsClass {
    // Only NSes that answered CDS queries without error AND proved
    // authoritative (served the SOA) participate in the consistency
    // check; lame or parked servers answer everything with nothing and
    // must not masquerade as an inconsistency.
    let answering: Vec<&NsObservation> = observations
        .iter()
        .filter(|o| o.responded && o.soa_present && !o.cds_query_error)
        .collect();
    let union: Vec<CdsSeen> = {
        let mut v: Vec<CdsSeen> = Vec::new();
        for o in &answering {
            for c in &o.cds {
                if !v.contains(c) {
                    v.push(c.clone());
                }
            }
        }
        v.sort();
        v
    };
    if union.is_empty() {
        return CdsClass::Absent;
    }
    // Consistency: every answering NS must serve exactly the union.
    let consistent = answering.iter().all(|o| o.cds == union);
    if !consistent {
        return CdsClass::Inconsistent;
    }
    if union.iter().all(|c| c.is_delete()) {
        return CdsClass::Delete;
    }
    // Signature validity, when the zone is signed.
    if matches!(dnssec, DnssecClass::Secured | DnssecClass::Island) {
        if answering.iter().any(|o| o.cds_sig_valid == Some(false)) {
            return CdsClass::BadSignature;
        }
        // DNSKEY correspondence.
        let keys: Vec<DnskeyData> = zone_keys
            .map(|k| k.to_vec())
            .or_else(|| {
                answering
                    .iter()
                    .find(|o| !o.dnskeys.is_empty())
                    .map(|o| o.dnskeys.clone())
            })
            .unwrap_or_default();
        if !keys.is_empty() && !union_matches_keys(&union, &keys) {
            return CdsClass::MismatchesDnskey;
        }
    }
    CdsClass::Valid
}

/// Does any planted CDS correspond to one of the zone's DNSKEYs?
///
/// For CDNSKEY the public key must match exactly; for CDS the key tag and
/// algorithm must match a key (digest comparison needs the owner name,
/// which `cds_digest_matches` provides for callers that have it — the
/// tag + algorithm check is sufficient to separate the planted mismatch
/// cases and mirrors what a registry checks first).
fn union_matches_keys(union: &[CdsSeen], keys: &[DnskeyData]) -> bool {
    union.iter().any(|c| match c {
        CdsSeen::Cdnskey {
            algorithm,
            public_key,
            ..
        } => keys
            .iter()
            .any(|k| k.algorithm == *algorithm && k.public_key == *public_key),
        CdsSeen::Cds {
            key_tag, algorithm, ..
        } => keys.iter().any(|k| {
            if k.algorithm != *algorithm {
                return false;
            }
            let mut rdata = Vec::with_capacity(4 + k.public_key.len());
            rdata.extend_from_slice(&k.flags.to_be_bytes());
            rdata.push(k.protocol);
            rdata.push(k.algorithm);
            rdata.extend_from_slice(&k.public_key);
            dns_crypto::key_tag(&rdata) == *key_tag
        }),
    })
}

/// Full digest check of one CDS against a DNSKEY at `owner` (used by
/// registry-side bootstrap decisions, experiment E7 / the
/// `registry_bootstrap` example).
pub fn cds_digest_matches(owner: &Name, cds: &CdsSeen, key: &DnskeyData) -> bool {
    match cds {
        CdsSeen::Cdnskey {
            algorithm,
            public_key,
            ..
        } => key.algorithm == *algorithm && key.public_key == *public_key,
        CdsSeen::Cds {
            algorithm,
            digest_type,
            digest,
            ..
        } => {
            if key.algorithm != *algorithm {
                return false;
            }
            let mut rdata = Vec::with_capacity(4 + key.public_key.len());
            rdata.extend_from_slice(&key.flags.to_be_bytes());
            rdata.push(key.protocol);
            rdata.push(key.algorithm);
            rdata.extend_from_slice(&key.public_key);
            ds_digest(
                DigestType::from_code(*digest_type),
                &owner.to_wire(),
                &rdata,
            )
            .map(|d| &d == digest)
            .unwrap_or(false)
        }
    }
}

/// Authenticated-Bootstrapping status (§4.3/§4.4 waterfall, Table 3).
pub fn ab_class(
    dnssec: DnssecClass,
    cds: CdsClass,
    signals: &[SignalObservation],
    observations: &[NsObservation],
) -> AbClass {
    let any_signal = signals.iter().any(|s| !s.cds.is_empty());
    if !any_signal {
        return AbClass::NoSignal;
    }
    if dnssec == DnssecClass::Secured {
        return AbClass::AlreadySecured;
    }
    if cds == CdsClass::Delete {
        return AbClass::CannotBootstrap(CannotReason::DeletionRequest);
    }
    match dnssec {
        DnssecClass::Unsigned => {
            return AbClass::CannotBootstrap(CannotReason::ZoneUnsigned);
        }
        DnssecClass::Invalid => {
            return AbClass::CannotBootstrap(CannotReason::ZoneInvalidDnssec);
        }
        _ => {}
    }
    match cds {
        CdsClass::Inconsistent => {
            return AbClass::CannotBootstrap(CannotReason::CdsInconsistent);
        }
        CdsClass::BadSignature => {
            return AbClass::CannotBootstrap(CannotReason::CdsBadSignature);
        }
        CdsClass::MismatchesDnskey => {
            return AbClass::CannotBootstrap(CannotReason::CdsMismatch);
        }
        _ => {}
    }
    // Bootstrappable island with signal RRs: the §4.4 correctness checks,
    // in the paper's order.
    // (i) no zone cut in any signal path;
    if signals.iter().any(|s| s.zone_cut) {
        return AbClass::SignalIncorrect(SignalViolation::ZoneCut);
    }
    // (ii) signal RRs under every NS;
    if signals
        .iter()
        .any(|s| s.cds.is_empty() || s.name_unbuildable)
    {
        return AbClass::SignalIncorrect(SignalViolation::NotUnderEveryNs);
    }
    // (iii) signal DNSSEC valid;
    if signals.iter().any(|s| s.dnssec_valid != Some(true)) {
        return AbClass::SignalIncorrect(SignalViolation::InvalidDnssec);
    }
    // (iv) signal content consistent and matching the in-zone CDS.
    let in_zone: Vec<CdsSeen> = {
        let mut v: Vec<CdsSeen> = Vec::new();
        for o in observations {
            for c in &o.cds {
                if !v.contains(c) {
                    v.push(c.clone());
                }
            }
        }
        v.sort();
        v
    };
    if signals.iter().any(|s| s.cds != in_zone) {
        return AbClass::SignalIncorrect(SignalViolation::ContentMismatch);
    }
    AbClass::SignalCorrect
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;
    use netsim::Addr;
    use std::net::Ipv4Addr;

    fn key(tag_seed: u8) -> DnskeyData {
        DnskeyData {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![tag_seed; 8],
        }
    }

    fn cds_for(k: &DnskeyData) -> CdsSeen {
        let mut rdata = Vec::new();
        rdata.extend_from_slice(&k.flags.to_be_bytes());
        rdata.push(k.protocol);
        rdata.push(k.algorithm);
        rdata.extend_from_slice(&k.public_key);
        CdsSeen::Cds {
            key_tag: dns_crypto::key_tag(&rdata),
            algorithm: k.algorithm,
            digest_type: 2,
            digest: vec![1, 2, 3],
        }
    }

    fn obs(cds: Vec<CdsSeen>, keys: Vec<DnskeyData>, sig_valid: Option<bool>) -> NsObservation {
        let mut cds = cds;
        cds.sort();
        NsObservation {
            ns_name: name!("ns1.op.test"),
            addr: Addr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            responded: true,
            soa_present: true,
            cds_query_error: false,
            dnskeys: keys,
            cds,
            cds_sig_valid: sig_valid,
            csync_present: false,
        }
    }

    fn sig(cds: Vec<CdsSeen>, valid: Option<bool>, cut: bool) -> SignalObservation {
        let mut cds = cds;
        cds.sort();
        SignalObservation {
            ns_name: name!("ns1.op.test"),
            name_unbuildable: false,
            cds,
            dnssec_valid: valid,
            zone_cut: cut,
        }
    }

    #[test]
    fn dnssec_classes() {
        let k = key(1);
        let with_key = vec![obs(vec![], vec![k.clone()], None)];
        let without = vec![obs(vec![], vec![], None)];
        assert_eq!(
            dnssec_class(
                &ChainStatus::DsPresent(vec![]),
                &with_key,
                Some(std::slice::from_ref(&k))
            ),
            DnssecClass::Secured
        );
        assert_eq!(
            dnssec_class(&ChainStatus::DsPresent(vec![]), &with_key, None),
            DnssecClass::Invalid
        );
        assert_eq!(
            dnssec_class(&ChainStatus::NoDsAtParent, &with_key, None),
            DnssecClass::Island
        );
        assert_eq!(
            dnssec_class(&ChainStatus::NoDsAtParent, &without, None),
            DnssecClass::Unsigned
        );
        assert_eq!(
            dnssec_class(&ChainStatus::Bogus, &with_key, None),
            DnssecClass::Invalid
        );
        assert_eq!(
            dnssec_class(&ChainStatus::Indeterminate, &without, None),
            DnssecClass::Indeterminate
        );
    }

    #[test]
    fn cds_absent_and_valid() {
        let k = key(1);
        let c = cds_for(&k);
        assert_eq!(
            cds_class(
                &[obs(vec![], vec![k.clone()], None)],
                Some(std::slice::from_ref(&k)),
                DnssecClass::Island
            ),
            CdsClass::Absent
        );
        assert_eq!(
            cds_class(
                &[obs(vec![c.clone()], vec![k.clone()], Some(true))],
                Some(std::slice::from_ref(&k)),
                DnssecClass::Island
            ),
            CdsClass::Valid
        );
    }

    #[test]
    fn cds_inconsistent_across_ns() {
        let k = key(1);
        let c1 = cds_for(&key(1));
        let c2 = cds_for(&key(2));
        let o1 = obs(vec![c1], vec![k.clone()], Some(true));
        let o2 = obs(vec![c2], vec![k.clone()], Some(true));
        assert_eq!(
            cds_class(&[o1, o2], Some(&[k]), DnssecClass::Island),
            CdsClass::Inconsistent
        );
    }

    #[test]
    fn cds_error_ns_does_not_break_consistency() {
        let k = key(1);
        let c = cds_for(&k);
        let good = obs(vec![c], vec![k.clone()], Some(true));
        let mut legacy = obs(vec![], vec![], None);
        legacy.cds_query_error = true;
        assert_eq!(
            cds_class(&[good, legacy], Some(&[k]), DnssecClass::Island),
            CdsClass::Valid
        );
    }

    #[test]
    fn cds_delete_and_badsig_and_mismatch() {
        let k = key(1);
        let del = CdsSeen::Cds {
            key_tag: 0,
            algorithm: 0,
            digest_type: 0,
            digest: vec![0],
        };
        assert_eq!(
            cds_class(
                &[obs(vec![del], vec![k.clone()], Some(true))],
                Some(std::slice::from_ref(&k)),
                DnssecClass::Island
            ),
            CdsClass::Delete
        );
        let c = cds_for(&k);
        assert_eq!(
            cds_class(
                &[obs(vec![c.clone()], vec![k.clone()], Some(false))],
                Some(std::slice::from_ref(&k)),
                DnssecClass::Island
            ),
            CdsClass::BadSignature
        );
        let foreign = cds_for(&key(9));
        assert_eq!(
            cds_class(
                &[obs(vec![foreign], vec![k.clone()], Some(true))],
                Some(&[k]),
                DnssecClass::Island
            ),
            CdsClass::MismatchesDnskey
        );
    }

    #[test]
    fn cds_on_unsigned_zone_is_reported_by_content() {
        // Unsigned zones skip key-match/signature checks (§4.2 counts
        // them separately as "CDS in unsigned zones").
        let c = cds_for(&key(3));
        assert_eq!(
            cds_class(&[obs(vec![c], vec![], None)], None, DnssecClass::Unsigned),
            CdsClass::Valid
        );
    }

    #[test]
    fn ab_waterfall() {
        let k = key(1);
        let c = cds_for(&k);
        let zone_obs = vec![obs(vec![c.clone()], vec![k.clone()], Some(true))];

        // No signal.
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Valid,
                &[sig(vec![], None, false)],
                &zone_obs
            ),
            AbClass::NoSignal
        );
        // Already secured.
        assert_eq!(
            ab_class(
                DnssecClass::Secured,
                CdsClass::Valid,
                &[sig(vec![c.clone()], Some(true), false)],
                &zone_obs
            ),
            AbClass::AlreadySecured
        );
        // Deletion request.
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Delete,
                &[sig(vec![c.clone()], Some(true), false)],
                &zone_obs
            ),
            AbClass::CannotBootstrap(CannotReason::DeletionRequest)
        );
        // Unsigned with signal.
        assert_eq!(
            ab_class(
                DnssecClass::Unsigned,
                CdsClass::Absent,
                &[sig(vec![c.clone()], Some(true), false)],
                &zone_obs
            ),
            AbClass::CannotBootstrap(CannotReason::ZoneUnsigned)
        );
        // Fully correct.
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Valid,
                &[
                    sig(vec![c.clone()], Some(true), false),
                    sig(vec![c.clone()], Some(true), false)
                ],
                &zone_obs
            ),
            AbClass::SignalCorrect
        );
    }

    #[test]
    fn ab_violations_in_paper_order() {
        let k = key(1);
        let c = cds_for(&k);
        let zone_obs = vec![obs(vec![c.clone()], vec![k], Some(true))];
        // Zone cut wins over everything.
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Valid,
                &[
                    sig(vec![c.clone()], Some(true), true),
                    sig(vec![], None, false)
                ],
                &zone_obs
            ),
            AbClass::SignalIncorrect(SignalViolation::ZoneCut)
        );
        // Missing under one NS.
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Valid,
                &[
                    sig(vec![c.clone()], Some(true), false),
                    sig(vec![], None, false)
                ],
                &zone_obs
            ),
            AbClass::SignalIncorrect(SignalViolation::NotUnderEveryNs)
        );
        // Invalid signal DNSSEC.
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Valid,
                &[sig(vec![c.clone()], Some(false), false)],
                &zone_obs
            ),
            AbClass::SignalIncorrect(SignalViolation::InvalidDnssec)
        );
        // Content mismatch.
        let foreign = cds_for(&key(7));
        assert_eq!(
            ab_class(
                DnssecClass::Island,
                CdsClass::Valid,
                &[sig(vec![foreign], Some(true), false)],
                &zone_obs
            ),
            AbClass::SignalIncorrect(SignalViolation::ContentMismatch)
        );
    }

    #[test]
    fn digest_match_full_check() {
        use dns_zone::ZoneKeys;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let keys = ZoneKeys::generate(&mut rng, dns_crypto::Algorithm::EcdsaP256Sha256);
        let owner = name!("example.ch");
        let ds = keys.ds_data(&owner, DigestType::Sha256);
        let cds = CdsSeen::Cds {
            key_tag: ds.key_tag,
            algorithm: ds.algorithm,
            digest_type: ds.digest_type,
            digest: ds.digest.clone(),
        };
        let dnskey = DnskeyData {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: keys.ksk.public_key().to_vec(),
        };
        assert!(cds_digest_matches(&owner, &cds, &dnskey));
        // Wrong owner → digest differs.
        assert!(!cds_digest_matches(&name!("other.ch"), &cds, &dnskey));
    }
}
