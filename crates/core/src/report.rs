//! Report generation: every table and figure of the paper, regenerated
//! from scan results.

use crate::error::RetryStats;
use crate::operator::Identified;
use crate::scanner::ScanResults;
use crate::types::*;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Figure 1: DNSSEC status and bootstrapping-possibility breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Figure1 {
    pub resolved: u64,
    pub unsigned: u64,
    pub secured: u64,
    pub invalid: u64,
    pub islands: u64,
    pub island_without_cds: u64,
    pub island_cds_delete: u64,
    pub island_invalid_cds: u64,
    pub island_bootstrappable: u64,
    /// Zones excluded because transient failures left their evidence
    /// incomplete (not part of `resolved`).
    pub indeterminate: u64,
}

/// Build Figure 1 from scan results.
pub fn figure1(results: &ScanResults) -> Figure1 {
    let mut f = Figure1::default();
    for z in &results.zones {
        f.absorb(z);
    }
    f
}

impl Figure1 {
    /// Fold one zone into the figure. [`figure1`] is this over every
    /// zone; the fabric's streaming merge calls it per zone as results
    /// arrive, so the figure is assembled without ever materializing
    /// the full zone list in one memory image.
    pub fn absorb(&mut self, z: &ZoneScan) {
        match z.dnssec {
            DnssecClass::Indeterminate => {
                self.indeterminate += 1;
                return;
            }
            DnssecClass::Unresolvable => return,
            _ => {}
        }
        self.resolved += 1;
        match z.dnssec {
            DnssecClass::Unsigned => self.unsigned += 1,
            DnssecClass::Secured => self.secured += 1,
            DnssecClass::Invalid => self.invalid += 1,
            DnssecClass::Island => {
                self.islands += 1;
                match z.cds {
                    CdsClass::Absent => self.island_without_cds += 1,
                    CdsClass::Delete => self.island_cds_delete += 1,
                    CdsClass::MismatchesDnskey | CdsClass::BadSignature => {
                        self.island_invalid_cds += 1
                    }
                    CdsClass::Valid => self.island_bootstrappable += 1,
                    // NS disagreement: conservatively not bootstrappable.
                    CdsClass::Inconsistent => self.island_invalid_cds += 1,
                }
            }
            DnssecClass::Unresolvable | DnssecClass::Indeterminate => {}
        }
    }

    pub fn render(&self) -> String {
        let pct = |n: u64| {
            if self.resolved == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.resolved as f64
            }
        };
        let mut s = String::new();
        let _ = writeln!(s, "Figure 1 — DNSSEC status and bootstrapping possibility");
        let _ = writeln!(s, "  resolved zones          {:>10}", self.resolved);
        let _ = writeln!(
            s,
            "  without DNSSEC          {:>10}  ({:5.1} %)",
            self.unsigned,
            pct(self.unsigned)
        );
        let _ = writeln!(
            s,
            "  already secured         {:>10}  ({:5.1} %)",
            self.secured,
            pct(self.secured)
        );
        let _ = writeln!(
            s,
            "  invalid DNSSEC          {:>10}  ({:5.1} %)",
            self.invalid,
            pct(self.invalid)
        );
        let _ = writeln!(
            s,
            "  secure islands          {:>10}  ({:5.1} %)",
            self.islands,
            pct(self.islands)
        );
        let _ = writeln!(
            s,
            "    without CDS           {:>10}",
            self.island_without_cds
        );
        let _ = writeln!(
            s,
            "    CDS delete            {:>10}",
            self.island_cds_delete
        );
        let _ = writeln!(
            s,
            "    invalid CDS           {:>10}",
            self.island_invalid_cds
        );
        let _ = writeln!(
            s,
            "    possible to bootstrap {:>10}",
            self.island_bootstrappable
        );
        if self.indeterminate > 0 {
            let _ = writeln!(
                s,
                "  indeterminate (degraded){:>10}  (excluded)",
                self.indeterminate
            );
        }
        s
    }
}

/// A Table 1 row: DNSSEC among one operator's domains.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub operator: String,
    pub domains: u64,
    pub unsigned: u64,
    pub secured: u64,
    pub invalid: u64,
    pub islands: u64,
}

/// Table 1: DNSSEC among the top-N DNS operators by domain count.
pub fn table1(results: &ScanResults, top_n: usize) -> Vec<Table1Row> {
    let mut map: BTreeMap<String, Table1Row> = BTreeMap::new();
    for z in results.resolved() {
        let Identified::Single(op) = &z.operator else {
            continue;
        };
        let row = map.entry(op.clone()).or_insert_with(|| Table1Row {
            operator: op.clone(),
            domains: 0,
            unsigned: 0,
            secured: 0,
            invalid: 0,
            islands: 0,
        });
        row.domains += 1;
        match z.dnssec {
            DnssecClass::Unsigned => row.unsigned += 1,
            DnssecClass::Secured => row.secured += 1,
            DnssecClass::Invalid => row.invalid += 1,
            DnssecClass::Island => row.islands += 1,
            DnssecClass::Unresolvable | DnssecClass::Indeterminate => {}
        }
    }
    let mut rows: Vec<Table1Row> = map.into_values().collect();
    rows.sort_by(|a, b| b.domains.cmp(&a.domains).then(a.operator.cmp(&b.operator)));
    rows.truncate(top_n);
    rows
}

/// Render Table 1 like the paper.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1 — DNSSEC amongst the top {} DNS operators",
        rows.len()
    );
    let _ = writeln!(
        s,
        "{:<18} {:>9} {:>9}({:>5}) {:>8}({:>5}) {:>7}({:>6}) {:>7}({:>6})",
        "Operator", "Domains", "Unsigned", "%", "Secured", "%", "Invalid", "%", "Islands", "%"
    );
    for r in rows {
        let pct = |n: u64| 100.0 * n as f64 / r.domains.max(1) as f64;
        let _ = writeln!(
            s,
            "{:<18} {:>9} {:>9}({:>5.1}) {:>8}({:>5.1}) {:>7}({:>6.2}) {:>7}({:>6.2})",
            r.operator,
            r.domains,
            r.unsigned,
            pct(r.unsigned),
            r.secured,
            pct(r.secured),
            r.invalid,
            pct(r.invalid),
            r.islands,
            pct(r.islands),
        );
    }
    s
}

/// A Table 2 row: CDS publication per operator.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    pub operator: String,
    pub swiss: bool,
    pub domains_with_cds: u64,
    pub portfolio: u64,
    pub pct_of_portfolio: f64,
}

/// Table 2: the top-N operators publishing CDS RRs.
pub fn table2(results: &ScanResults, top_n: usize, swiss_ops: &[String]) -> Vec<Table2Row> {
    let mut cds: BTreeMap<String, u64> = BTreeMap::new();
    let mut portfolio: BTreeMap<String, u64> = BTreeMap::new();
    for z in results.resolved() {
        let Identified::Single(op) = &z.operator else {
            continue;
        };
        *portfolio.entry(op.clone()).or_insert(0) += 1;
        if z.cds != CdsClass::Absent {
            *cds.entry(op.clone()).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<Table2Row> = cds
        .into_iter()
        .map(|(op, n)| {
            let p = portfolio.get(&op).copied().unwrap_or(n);
            Table2Row {
                swiss: swiss_ops.contains(&op),
                domains_with_cds: n,
                portfolio: p,
                pct_of_portfolio: 100.0 * n as f64 / p.max(1) as f64,
                operator: op,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.domains_with_cds
            .cmp(&a.domains_with_cds)
            .then(a.operator.cmp(&b.operator))
    });
    rows.truncate(top_n);
    rows
}

/// Render Table 2 like the paper (Swiss operators marked with `[CH]`).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 2 — top {} DNS operators publishing CDS RRs",
        rows.len()
    );
    let _ = writeln!(
        s,
        "{:<4} {:<22} {:>10} {:>7}",
        "#", "DNS Operator", "Dom.w.CDS", "%"
    );
    for (i, r) in rows.iter().enumerate() {
        let mark = if r.swiss { " [CH]" } else { "" };
        let _ = writeln!(
            s,
            "{:<4} {:<22} {:>10} {:>7.1}",
            i + 1,
            format!("{}{}", r.operator, mark),
            r.domains_with_cds,
            r.pct_of_portfolio
        );
    }
    s
}

/// One Table 3 column (per signal-publishing operator).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table3Col {
    pub with_signal_cds: u64,
    pub already_secured: u64,
    pub cannot_bootstrap: u64,
    pub cannot_deletion: u64,
    pub cannot_invalid_dnssec: u64,
    pub potential: u64,
    pub signal_incorrect: u64,
    pub signal_correct: u64,
}

/// Table 3: signal-zone census, grouped by operator with an "Others"
/// bucket for operators outside `named`.
#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    pub columns: Vec<(String, Table3Col)>,
}

pub fn table3(results: &ScanResults, named: &[&str]) -> Table3 {
    let mut cols: BTreeMap<String, Table3Col> = BTreeMap::new();
    for z in results.resolved() {
        if z.ab == AbClass::NoSignal {
            continue;
        }
        let op = match &z.operator {
            Identified::Single(op) if named.contains(&op.as_str()) => op.clone(),
            _ => "Others".to_string(),
        };
        let col = cols.entry(op).or_default();
        col.with_signal_cds += 1;
        match z.ab {
            AbClass::AlreadySecured => col.already_secured += 1,
            AbClass::CannotBootstrap(reason) => {
                col.cannot_bootstrap += 1;
                match reason {
                    CannotReason::DeletionRequest => col.cannot_deletion += 1,
                    _ => col.cannot_invalid_dnssec += 1,
                }
            }
            AbClass::SignalIncorrect(_) => {
                col.potential += 1;
                col.signal_incorrect += 1;
            }
            AbClass::SignalCorrect => {
                col.potential += 1;
                col.signal_correct += 1;
            }
            AbClass::NoSignal => unreachable!(),
        }
    }
    let mut columns: Vec<(String, Table3Col)> = Vec::new();
    for n in named {
        if let Some(c) = cols.remove(*n) {
            columns.push((n.to_string(), c));
        }
    }
    if let Some(c) = cols.remove("Others") {
        columns.push(("Others".to_string(), c));
    }
    Table3 { columns }
}

impl Table3 {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Table 3 — DNS operators publishing CDS RRs in signal zones"
        );
        let _ = write!(s, "{:<28}", "");
        for (name, _) in &self.columns {
            let _ = write!(s, "{:>14}", name);
        }
        let total: Table3Col = self
            .columns
            .iter()
            .fold(Table3Col::default(), |mut a, (_, c)| {
                a.with_signal_cds += c.with_signal_cds;
                a.already_secured += c.already_secured;
                a.cannot_bootstrap += c.cannot_bootstrap;
                a.cannot_deletion += c.cannot_deletion;
                a.cannot_invalid_dnssec += c.cannot_invalid_dnssec;
                a.potential += c.potential;
                a.signal_incorrect += c.signal_incorrect;
                a.signal_correct += c.signal_correct;
                a
            });
        let _ = writeln!(s, "{:>14}", "Total");
        let row = |s: &mut String, label: &str, f: &dyn Fn(&Table3Col) -> u64| {
            let _ = write!(s, "{:<28}", label);
            for (_, c) in &self.columns {
                let _ = write!(s, "{:>14}", f(c));
            }
            let _ = writeln!(s, "{:>14}", f(&total));
        };
        row(&mut s, "with signal CDS", &|c| c.with_signal_cds);
        row(&mut s, "  already secured", &|c| c.already_secured);
        row(&mut s, "  cannot be bootstrapped", &|c| c.cannot_bootstrap);
        row(&mut s, "    deletion request", &|c| c.cannot_deletion);
        row(&mut s, "    invalid DNSSEC", &|c| c.cannot_invalid_dnssec);
        row(&mut s, "  potential to bootstrap", &|c| c.potential);
        row(&mut s, "    signal zone incorrect", &|c| c.signal_incorrect);
        row(&mut s, "    signal zone correct", &|c| c.signal_correct);
        s
    }
}

/// The §4.2 CDS deployment census.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CdsCensus {
    pub resolved: u64,
    pub with_cds: u64,
    pub cds_in_unsigned: u64,
    pub delete_in_unsigned: u64,
    pub delete_but_signed: u64,
    pub islands_with_delete: u64,
    pub islands_with_cds: u64,
    pub islands_consistent: u64,
    pub inconsistent: u64,
    pub inconsistent_multi_operator: u64,
    pub cds_without_matching_dnskey: u64,
    pub cds_invalid_signature: u64,
    pub cds_query_failures: u64,
    /// Zones publishing RFC 7477 CSYNC records (paper §6 future work).
    pub with_csync: u64,
}

pub fn cds_census(results: &ScanResults) -> CdsCensus {
    let mut c = CdsCensus::default();
    for z in results.resolved() {
        c.resolved += 1;
        if z.cds_query_failures() {
            c.cds_query_failures += 1;
        }
        if z.ns_observations.iter().any(|o| o.csync_present) {
            c.with_csync += 1;
        }
        if z.cds == CdsClass::Absent {
            continue;
        }
        c.with_cds += 1;
        let is_island = z.dnssec == DnssecClass::Island;
        let is_unsigned = z.dnssec == DnssecClass::Unsigned;
        if is_unsigned {
            c.cds_in_unsigned += 1;
            if z.cds == CdsClass::Delete {
                c.delete_in_unsigned += 1;
            }
        }
        if z.dnssec == DnssecClass::Secured && z.cds == CdsClass::Delete {
            c.delete_but_signed += 1;
        }
        if is_island {
            if z.cds == CdsClass::Delete {
                c.islands_with_delete += 1;
            }
            c.islands_with_cds += 1;
            if z.cds != CdsClass::Inconsistent {
                c.islands_consistent += 1;
            }
        }
        if z.cds == CdsClass::Inconsistent {
            c.inconsistent += 1;
            if matches!(z.operator, Identified::Multi(_)) {
                c.inconsistent_multi_operator += 1;
            }
        }
        if z.cds == CdsClass::MismatchesDnskey {
            c.cds_without_matching_dnskey += 1;
        }
        if z.cds == CdsClass::BadSignature {
            c.cds_invalid_signature += 1;
        }
    }
    c
}

impl CdsCensus {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "CDS deployment census (paper §4.2)");
        let _ = writeln!(
            s,
            "  zones with CDS                    {:>9}  ({:4.1} % of {})",
            self.with_cds,
            100.0 * self.with_cds as f64 / self.resolved.max(1) as f64,
            self.resolved
        );
        let _ = writeln!(
            s,
            "  CDS in unsigned zones             {:>9}",
            self.cds_in_unsigned
        );
        let _ = writeln!(
            s,
            "  CDS delete in unsigned zones      {:>9}",
            self.delete_in_unsigned
        );
        let _ = writeln!(
            s,
            "  CDS delete but still signed       {:>9}",
            self.delete_but_signed
        );
        let _ = writeln!(
            s,
            "  islands with CDS delete           {:>9}",
            self.islands_with_delete
        );
        let _ = writeln!(
            s,
            "  islands with CDS                  {:>9}",
            self.islands_with_cds
        );
        let _ = writeln!(
            s,
            "  islands with consistent CDS       {:>9}",
            self.islands_consistent
        );
        let _ = writeln!(
            s,
            "  inconsistent CDS (between NSes)   {:>9}",
            self.inconsistent
        );
        let _ = writeln!(
            s,
            "    of which multi-operator         {:>9}",
            self.inconsistent_multi_operator
        );
        let _ = writeln!(
            s,
            "  CDS matching no DNSKEY            {:>9}",
            self.cds_without_matching_dnskey
        );
        let _ = writeln!(
            s,
            "  CDS with invalid RRSIG            {:>9}",
            self.cds_invalid_signature
        );
        let _ = writeln!(
            s,
            "  NSes failing CDS-type queries     {:>9}",
            self.cds_query_failures
        );
        let _ = writeln!(
            s,
            "  zones with CSYNC (RFC 7477)       {:>9}",
            self.with_csync
        );
        s
    }
}

/// §4.3's AB-potential summary (the other half of Figure 1).
#[derive(Debug, Clone, Default, Serialize)]
pub struct AbPotential {
    pub cannot_benefit: u64,
    pub cannot_unsigned: u64,
    pub cannot_invalid: u64,
    pub cannot_island_no_cds: u64,
    pub cannot_island_delete: u64,
    pub cannot_island_bad_cds: u64,
    pub already_secured: u64,
    pub bootstrappable: u64,
}

pub fn ab_potential(results: &ScanResults) -> AbPotential {
    let mut p = AbPotential::default();
    for z in results.resolved() {
        match (z.dnssec, z.cds) {
            (DnssecClass::Secured, _) => p.already_secured += 1,
            (DnssecClass::Unsigned, _) => {
                p.cannot_benefit += 1;
                p.cannot_unsigned += 1;
            }
            (DnssecClass::Invalid, _) => {
                p.cannot_benefit += 1;
                p.cannot_invalid += 1;
            }
            (DnssecClass::Island, CdsClass::Absent) => {
                p.cannot_benefit += 1;
                p.cannot_island_no_cds += 1;
            }
            (DnssecClass::Island, CdsClass::Delete) => {
                p.cannot_benefit += 1;
                p.cannot_island_delete += 1;
            }
            (DnssecClass::Island, CdsClass::Valid) => p.bootstrappable += 1,
            (DnssecClass::Island, _) => {
                p.cannot_benefit += 1;
                p.cannot_island_bad_cds += 1;
            }
            (DnssecClass::Unresolvable | DnssecClass::Indeterminate, _) => {}
        }
    }
    p
}

impl AbPotential {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Authenticated Bootstrapping potential (paper §4.3)");
        let _ = writeln!(
            s,
            "  cannot benefit from AB       {:>10}",
            self.cannot_benefit
        );
        let _ = writeln!(
            s,
            "    unsigned                   {:>10}",
            self.cannot_unsigned
        );
        let _ = writeln!(
            s,
            "    invalid DNSSEC             {:>10}",
            self.cannot_invalid
        );
        let _ = writeln!(
            s,
            "    islands without CDS        {:>10}",
            self.cannot_island_no_cds
        );
        let _ = writeln!(
            s,
            "    islands with CDS delete    {:>10}",
            self.cannot_island_delete
        );
        let _ = writeln!(
            s,
            "    islands with broken CDS    {:>10}",
            self.cannot_island_bad_cds
        );
        let _ = writeln!(
            s,
            "  already secured              {:>10}",
            self.already_secured
        );
        let _ = writeln!(
            s,
            "  could benefit (bootstrappable){:>9}",
            self.bootstrappable
        );
        s
    }
}

/// One degraded zone in the [`DegradationReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DegradedZone {
    pub name: String,
    pub class: DnssecClass,
    pub stats: RetryStats,
}

/// Explicit degradation semantics: which zones the scan could *not*
/// classify cleanly, and the failure statistics behind each. Nothing in
/// here is folded into the substantive classes — this report is the
/// honest remainder.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct DegradationReport {
    pub total_zones: u64,
    /// Zones that saw transient failures (including recovered ones).
    pub degraded_zones: u64,
    /// Zones left entirely unclassified.
    pub indeterminate_zones: u64,
    pub total_failures: u64,
    pub total_timeouts: u64,
    pub total_malformed: u64,
    pub total_servfails: u64,
    pub total_retries: u64,
    pub total_breaker_skips: u64,
    pub total_rescans: u64,
    /// Degraded zones in name order (deterministic).
    pub zones: Vec<DegradedZone>,
}

pub fn degradation(results: &ScanResults) -> DegradationReport {
    let mut r = DegradationReport::default();
    for z in &results.zones {
        if r.absorb_counters(z) {
            r.zones.push(DegradedZone {
                name: z.name.to_string_fqdn(),
                class: z.dnssec,
                stats: z.retry_stats,
            });
        }
    }
    // zones already arrive name-sorted from scan_all; sort again so the
    // report is deterministic regardless of how results were assembled.
    r.zones.sort_by(|a, b| a.name.cmp(&b.name));
    r
}

impl DegradationReport {
    /// Fold one zone's counters into the report, *without* recording a
    /// [`DegradedZone`] entry; returns whether the zone qualifies for
    /// one. [`degradation`] is this plus the entry push; the fabric's
    /// streaming merge keeps only the counters (O(1) state per report)
    /// and lets its caller decide whether to materialize the per-zone
    /// degradation list.
    pub fn absorb_counters(&mut self, z: &ZoneScan) -> bool {
        self.total_zones += 1;
        let s = &z.retry_stats;
        self.total_failures += s.failures as u64;
        self.total_timeouts += s.timeouts as u64;
        self.total_malformed += s.malformed as u64;
        self.total_servfails += s.servfails as u64;
        self.total_retries += s.retries as u64;
        self.total_breaker_skips += s.breaker_skips as u64;
        self.total_rescans += s.rescans as u64;
        if z.dnssec == DnssecClass::Indeterminate {
            self.indeterminate_zones += 1;
        }
        let degraded = z.degraded || z.dnssec == DnssecClass::Indeterminate;
        if degraded {
            self.degraded_zones += 1;
        }
        degraded
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Degradation report — transient failures and their effect"
        );
        let _ = writeln!(s, "  zones scanned              {:>9}", self.total_zones);
        let _ = writeln!(s, "  degraded (saw failures)    {:>9}", self.degraded_zones);
        let _ = writeln!(
            s,
            "  indeterminate (unclassified){:>8}",
            self.indeterminate_zones
        );
        let _ = writeln!(s, "  query failures             {:>9}", self.total_failures);
        let _ = writeln!(s, "    timeouts                 {:>9}", self.total_timeouts);
        let _ = writeln!(
            s,
            "    malformed replies        {:>9}",
            self.total_malformed
        );
        let _ = writeln!(
            s,
            "  SERVFAIL answers           {:>9}",
            self.total_servfails
        );
        let _ = writeln!(s, "  retries spent              {:>9}", self.total_retries);
        let _ = writeln!(
            s,
            "  breaker skips              {:>9}",
            self.total_breaker_skips
        );
        let _ = writeln!(s, "  re-scan passes             {:>9}", self.total_rescans);
        for z in &self.zones {
            let _ = writeln!(
                s,
                "    {:<40} {:>14} failures={} timeouts={} retries={} rescans={}",
                z.name,
                format!("{:?}", z.class),
                z.stats.failures,
                z.stats.timeouts,
                z.stats.retries,
                z.stats.rescans,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::ScanResults;
    use dns_wire::name;

    fn zone(n: &str, op: Identified, dnssec: DnssecClass, cds: CdsClass, ab: AbClass) -> ZoneScan {
        ZoneScan {
            name: name!(n),
            ns_names: vec![],
            parent_ds: vec![],
            ns_observations: vec![],
            signal_observations: vec![],
            dnssec,
            cds,
            ab,
            operator: op,
            queries: 10,
            elapsed: 100,
            sampled: false,
            retry_stats: RetryStats::default(),
            degraded: false,
        }
    }

    fn single(op: &str) -> Identified {
        Identified::Single(op.to_string())
    }

    fn sample_results() -> ScanResults {
        ScanResults {
            zones: vec![
                zone(
                    "a.com",
                    single("OpA"),
                    DnssecClass::Unsigned,
                    CdsClass::Absent,
                    AbClass::NoSignal,
                ),
                zone(
                    "b.com",
                    single("OpA"),
                    DnssecClass::Secured,
                    CdsClass::Valid,
                    AbClass::AlreadySecured,
                ),
                zone(
                    "c.com",
                    single("OpA"),
                    DnssecClass::Island,
                    CdsClass::Valid,
                    AbClass::SignalCorrect,
                ),
                zone(
                    "d.com",
                    single("OpB"),
                    DnssecClass::Island,
                    CdsClass::Delete,
                    AbClass::CannotBootstrap(CannotReason::DeletionRequest),
                ),
                zone(
                    "e.com",
                    single("OpB"),
                    DnssecClass::Invalid,
                    CdsClass::Absent,
                    AbClass::NoSignal,
                ),
                zone(
                    "f.com",
                    Identified::Multi(vec!["OpA".into(), "OpB".into()]),
                    DnssecClass::Island,
                    CdsClass::Inconsistent,
                    AbClass::NoSignal,
                ),
                zone(
                    "g.com",
                    single("OpB"),
                    DnssecClass::Unresolvable,
                    CdsClass::Absent,
                    AbClass::NoSignal,
                ),
                zone(
                    "h.com",
                    single("OpC"),
                    DnssecClass::Island,
                    CdsClass::Valid,
                    AbClass::SignalIncorrect(SignalViolation::ZoneCut),
                ),
            ],
            simulated_duration: 1000,
            total_queries: 80,
        }
    }

    #[test]
    fn figure1_counts() {
        let f = figure1(&sample_results());
        assert_eq!(f.resolved, 7); // g.com excluded
        assert_eq!(f.unsigned, 1);
        assert_eq!(f.secured, 1);
        assert_eq!(f.invalid, 1);
        assert_eq!(f.islands, 4);
        assert_eq!(f.island_bootstrappable, 2);
        assert_eq!(f.island_cds_delete, 1);
        assert_eq!(f.island_invalid_cds, 1); // the inconsistent one
        let text = f.render();
        assert!(text.contains("possible to bootstrap"));
    }

    #[test]
    fn table1_ranks_by_domains() {
        let rows = table1(&sample_results(), 20);
        assert_eq!(rows[0].operator, "OpA");
        assert_eq!(rows[0].domains, 3);
        // Multi-operator zones excluded from per-operator rows.
        let total: u64 = rows.iter().map(|r| r.domains).sum();
        assert_eq!(total, 6); // 7 resolved - 1 multi
        assert!(render_table1(&rows).contains("OpA"));
    }

    #[test]
    fn table2_percentages() {
        let rows = table2(&sample_results(), 20, &["OpB".to_string()]);
        let opa = rows.iter().find(|r| r.operator == "OpA").unwrap();
        assert_eq!(opa.domains_with_cds, 2); // b.com + c.com
        assert_eq!(opa.portfolio, 3);
        assert!((opa.pct_of_portfolio - 66.7).abs() < 0.1);
        let opb = rows.iter().find(|r| r.operator == "OpB").unwrap();
        assert!(opb.swiss);
        assert!(render_table2(&rows).contains("[CH]"));
    }

    #[test]
    fn table3_waterfall() {
        let t = table3(&sample_results(), &["OpA", "OpC"]);
        let opa = &t.columns.iter().find(|(n, _)| n == "OpA").unwrap().1;
        assert_eq!(opa.with_signal_cds, 2); // b.com (secured) + c.com
        assert_eq!(opa.already_secured, 1);
        assert_eq!(opa.signal_correct, 1);
        let opc = &t.columns.iter().find(|(n, _)| n == "OpC").unwrap().1;
        assert_eq!(opc.signal_incorrect, 1);
        assert_eq!(opc.potential, 1);
        // OpB's deletion-request zone lands in Others.
        let others = &t.columns.iter().find(|(n, _)| n == "Others").unwrap().1;
        assert_eq!(others.cannot_deletion, 1);
        assert!(t.render().contains("signal zone correct"));
    }

    #[test]
    fn cds_census_counts_exact() {
        let c = cds_census(&sample_results());
        assert_eq!(c.resolved, 7);
        assert_eq!(c.with_cds, 5);
        assert_eq!(c.islands_with_delete, 1);
        assert_eq!(c.inconsistent, 1);
        assert_eq!(c.inconsistent_multi_operator, 1);
        assert_eq!(c.islands_with_cds, 4);
        assert_eq!(c.islands_consistent, 3);
        assert!(c.render().contains("multi-operator"));
    }

    #[test]
    fn ab_potential_counts() {
        let p = ab_potential(&sample_results());
        assert_eq!(p.already_secured, 1);
        assert_eq!(p.bootstrappable, 2);
        assert_eq!(p.cannot_island_delete, 1);
        assert_eq!(p.cannot_unsigned, 1);
        assert_eq!(p.cannot_invalid, 1);
        assert_eq!(p.cannot_island_bad_cds, 1);
        assert_eq!(
            p.cannot_benefit,
            p.cannot_unsigned
                + p.cannot_invalid
                + p.cannot_island_no_cds
                + p.cannot_island_delete
                + p.cannot_island_bad_cds
        );
        assert!(p.render().contains("bootstrappable"));
    }

    #[test]
    fn degradation_report_lists_only_degraded_zones_sorted() {
        let mut r = sample_results();
        // Mark two zones degraded, one of them fully indeterminate.
        r.zones[4].degraded = true;
        r.zones[4].retry_stats.timeouts = 3;
        r.zones[4].retry_stats.failures = 3;
        r.zones[4].retry_stats.rescans = 1;
        r.zones[1].dnssec = DnssecClass::Indeterminate;
        r.zones[1].retry_stats.breaker_skips = 2;
        let d = degradation(&r);
        assert_eq!(d.total_zones, 8);
        assert_eq!(d.degraded_zones, 2);
        assert_eq!(d.indeterminate_zones, 1);
        assert_eq!(d.total_timeouts, 3);
        assert_eq!(d.total_breaker_skips, 2);
        assert_eq!(d.total_rescans, 1);
        assert_eq!(d.zones.len(), 2);
        assert!(d.zones[0].name < d.zones[1].name);
        let text = d.render();
        assert!(text.contains("indeterminate"));
        assert!(text.contains("e.com."));
        // The indeterminate zone no longer counts as resolved anywhere.
        let f = figure1(&r);
        assert_eq!(f.resolved, 6);
        assert_eq!(f.indeterminate, 1);
        assert!(serde_json::to_string(&d).unwrap().contains("breaker_skips"));
    }

    #[test]
    fn reports_serialize_to_json() {
        let r = sample_results();
        let f = figure1(&r);
        let json = serde_json::to_string(&f).unwrap();
        assert!(json.contains("island_bootstrappable"));
        let t3 = table3(&r, &["OpA"]);
        assert!(serde_json::to_string(&t3)
            .unwrap()
            .contains("with_signal_cds"));
    }
}
