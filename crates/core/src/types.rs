//! Observation and classification types produced by the scanner.

use crate::error::RetryStats;
use dns_wire::name::Name;
use dns_wire::rdata::{DnskeyData, DsData};
use netsim::{Addr, SimMicros};
use serde::Serialize;

/// Serialize a [`Name`] as its presentation string.
fn ser_name<S: serde::Serializer>(n: &Name, s: S) -> Result<S::Ok, S::Error> {
    s.serialize_str(&n.to_string_fqdn())
}

/// Serialize a list of [`Name`]s as presentation strings.
fn ser_names<S: serde::Serializer>(v: &[Name], s: S) -> Result<S::Ok, S::Error> {
    use serde::ser::SerializeSeq;
    let mut seq = s.serialize_seq(Some(v.len()))?;
    for n in v {
        seq.serialize_element(&n.to_string_fqdn())?;
    }
    seq.end()
}

/// One CDS-shaped record observed on the wire (CDS or CDNSKEY), reduced
/// to a comparable form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum CdsSeen {
    Cds {
        key_tag: u16,
        algorithm: u8,
        digest_type: u8,
        digest: Vec<u8>,
    },
    Cdnskey {
        flags: u16,
        algorithm: u8,
        public_key: Vec<u8>,
    },
}

impl CdsSeen {
    pub fn from_ds(d: &DsData) -> Self {
        CdsSeen::Cds {
            key_tag: d.key_tag,
            algorithm: d.algorithm,
            digest_type: d.digest_type,
            digest: d.digest.clone(),
        }
    }

    pub fn from_dnskey(k: &DnskeyData) -> Self {
        CdsSeen::Cdnskey {
            flags: k.flags,
            algorithm: k.algorithm,
            public_key: k.public_key.clone(),
        }
    }

    /// RFC 8078 deletion sentinel?
    pub fn is_delete(&self) -> bool {
        match self {
            CdsSeen::Cds { algorithm, .. } => *algorithm == 0,
            CdsSeen::Cdnskey { algorithm, .. } => *algorithm == 0,
        }
    }
}

/// What one nameserver address said when asked about a zone.
#[derive(Debug, Clone, Serialize)]
pub struct NsObservation {
    /// NS hostname this address belongs to.
    #[serde(serialize_with = "ser_name")]
    pub ns_name: Name,
    #[serde(skip)]
    pub addr: Addr,
    /// The server answered (vs timeout/unreachable).
    pub responded: bool,
    /// The server answered the SOA query with an actual SOA record —
    /// lame/parked servers (which answer everything but serve nothing)
    /// fail this and are excluded from consistency checks.
    pub soa_present: bool,
    /// The server returned an error rcode for CDS-type queries (the
    /// pre-RFC 3597 behaviour of §4.2).
    pub cds_query_error: bool,
    /// DNSKEY records returned.
    #[serde(skip)]
    pub dnskeys: Vec<DnskeyData>,
    /// CDS/CDNSKEY content returned (sorted for comparison).
    pub cds: Vec<CdsSeen>,
    /// The RRSIGs over the CDS RRset verified against the zone's DNSKEYs.
    pub cds_sig_valid: Option<bool>,
    /// The zone publishes an RFC 7477 CSYNC record (the paper's §6
    /// future-work synchronisation channel).
    pub csync_present: bool,
}

/// What the scanner saw for one signal name
/// (`_dsboot.<zone>._signal.<ns>`).
#[derive(Debug, Clone, Serialize)]
pub struct SignalObservation {
    /// The NS hostname whose signal subtree was probed.
    #[serde(serialize_with = "ser_name")]
    pub ns_name: Name,
    /// The signal name could not even be formed (overlong /
    /// in-domain NS).
    pub name_unbuildable: bool,
    /// Signal CDS content found (empty = nothing published there).
    pub cds: Vec<CdsSeen>,
    /// The signal records' DNSSEC chain validated end to end.
    pub dnssec_valid: Option<bool>,
    /// An (apparent) zone cut was detected on the signal path.
    pub zone_cut: bool,
}

/// DNSSEC status per paper §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DnssecClass {
    Unsigned,
    Secured,
    Invalid,
    Island,
    /// The zone did not resolve at all (excluded from §4.1 percentages).
    Unresolvable,
    /// Transient failures left the evidence incomplete: the zone exists
    /// but could not be classified this pass. Explicitly degraded, never
    /// folded into a substantive class; excluded from §4.1 percentages
    /// like `Unresolvable`, but reported separately with retry
    /// statistics.
    Indeterminate,
}

/// CDS status per paper §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CdsClass {
    /// No CDS anywhere.
    Absent,
    /// Present, consistent across NSes, matches a DNSKEY, validly signed
    /// (where the zone is signed).
    Valid,
    /// Present and consistent, but a deletion request.
    Delete,
    /// NSes disagree about the CDS content.
    Inconsistent,
    /// CDS corresponds to no DNSKEY in the zone.
    MismatchesDnskey,
    /// The RRSIG over the CDS does not verify.
    BadSignature,
}

/// Authenticated-Bootstrapping status per paper §4.3/§4.4 (Table 3's
/// waterfall).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AbClass {
    /// No signal RRs anywhere.
    NoSignal,
    /// Signal RRs exist but the zone is already secured.
    AlreadySecured,
    /// Signal RRs exist but the zone cannot be bootstrapped (deletion
    /// request, unsigned, invalid, inconsistent/bad CDS).
    CannotBootstrap(CannotReason),
    /// Bootstrappable and signal RRs exist, but the signal setup violates
    /// RFC 9615.
    SignalIncorrect(SignalViolation),
    /// Bootstrappable with a fully correct signal setup.
    SignalCorrect,
}

/// Why a signal-bearing zone cannot be bootstrapped (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CannotReason {
    DeletionRequest,
    ZoneUnsigned,
    ZoneInvalidDnssec,
    CdsInconsistent,
    CdsBadSignature,
    CdsMismatch,
}

/// Which RFC 9615 requirement the signal setup violates (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SignalViolation {
    /// A zone cut inside the signal zone path.
    ZoneCut,
    /// Signal RRs not published under every NS.
    NotUnderEveryNs,
    /// Signal records' DNSSEC did not validate (bad or expired).
    InvalidDnssec,
    /// Signal content disagrees between NSes or with the in-zone CDS.
    ContentMismatch,
}

/// Everything measured about one zone.
#[derive(Debug, Clone, Serialize)]
pub struct ZoneScan {
    #[serde(serialize_with = "ser_name")]
    pub name: Name,
    /// NS hostnames per the registry (parent zone).
    #[serde(serialize_with = "ser_names")]
    pub ns_names: Vec<Name>,
    /// DS records at the parent.
    #[serde(skip)]
    pub parent_ds: Vec<DsData>,
    /// Per-address observations.
    pub ns_observations: Vec<NsObservation>,
    /// Per-NS-hostname signal observations.
    pub signal_observations: Vec<SignalObservation>,
    /// Classifications.
    pub dnssec: DnssecClass,
    pub cds: CdsClass,
    pub ab: AbClass,
    /// Operator identification.
    pub operator: crate::operator::Identified,
    /// Scan cost.
    pub queries: u32,
    pub elapsed: SimMicros,
    /// Whether Cloudflare-style address sampling was applied.
    pub sampled: bool,
    /// Failure/retry accounting for this zone's scan.
    pub retry_stats: RetryStats,
    /// Transient failures reduced the evidence for this zone (even if a
    /// classification was still reached).
    pub degraded: bool,
}

impl ZoneScan {
    /// All distinct CDS contents seen in-zone (union over NSes).
    pub fn cds_union(&self) -> Vec<CdsSeen> {
        let mut v: Vec<CdsSeen> = Vec::new();
        for o in &self.ns_observations {
            for c in &o.cds {
                if !v.contains(c) {
                    v.push(c.clone());
                }
            }
        }
        v.sort();
        v
    }

    /// Whether any NS failed/errored on CDS queries (§4.2 "lack of
    /// support for CDS").
    pub fn cds_query_failures(&self) -> bool {
        self.ns_observations
            .iter()
            .any(|o| !o.responded || o.cds_query_error)
    }

    /// Whether any signal RRs were observed.
    pub fn has_signal(&self) -> bool {
        self.signal_observations.iter().any(|s| !s.cds.is_empty())
    }
}

// Manual Serialize for Identified so reports can dump JSON.
impl Serialize for crate::operator::Identified {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            crate::operator::Identified::Single(n) => s.serialize_str(n),
            crate::operator::Identified::Multi(v) => s.serialize_str(&v.join("+")),
            crate::operator::Identified::Unknown => s.serialize_str("unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    fn obs(ns: &str, cds: Vec<CdsSeen>) -> NsObservation {
        NsObservation {
            ns_name: name!(ns),
            addr: Addr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1)),
            responded: true,
            soa_present: true,
            cds_query_error: false,
            dnskeys: vec![],
            cds,
            cds_sig_valid: None,
            csync_present: false,
        }
    }

    fn seen(tag: u16) -> CdsSeen {
        CdsSeen::Cds {
            key_tag: tag,
            algorithm: 13,
            digest_type: 2,
            digest: vec![tag as u8; 4],
        }
    }

    #[test]
    fn delete_detection() {
        let d = CdsSeen::Cds {
            key_tag: 0,
            algorithm: 0,
            digest_type: 0,
            digest: vec![0],
        };
        assert!(d.is_delete());
        assert!(!seen(7).is_delete());
        let k = CdsSeen::Cdnskey {
            flags: 0,
            algorithm: 0,
            public_key: vec![0],
        };
        assert!(k.is_delete());
    }

    #[test]
    fn cds_union_dedupes_and_sorts() {
        let scan = ZoneScan {
            name: name!("z.test"),
            ns_names: vec![],
            parent_ds: vec![],
            ns_observations: vec![
                obs("ns1.a.test", vec![seen(2), seen(1)]),
                obs("ns2.a.test", vec![seen(1)]),
            ],
            signal_observations: vec![],
            dnssec: DnssecClass::Island,
            cds: CdsClass::Valid,
            ab: AbClass::NoSignal,
            operator: crate::operator::Identified::Unknown,
            queries: 0,
            elapsed: 0,
            sampled: false,
            retry_stats: RetryStats::default(),
            degraded: false,
        };
        let u = scan.cds_union();
        assert_eq!(u.len(), 2);
        assert!(u[0] < u[1]);
    }

    #[test]
    fn query_failures_flagged() {
        let mut scan = ZoneScan {
            name: name!("z.test"),
            ns_names: vec![],
            parent_ds: vec![],
            ns_observations: vec![obs("ns1.a.test", vec![])],
            signal_observations: vec![],
            dnssec: DnssecClass::Unsigned,
            cds: CdsClass::Absent,
            ab: AbClass::NoSignal,
            operator: crate::operator::Identified::Unknown,
            queries: 0,
            elapsed: 0,
            sampled: false,
            retry_stats: RetryStats::default(),
            degraded: false,
        };
        assert!(!scan.cds_query_failures());
        scan.ns_observations[0].cds_query_error = true;
        assert!(scan.cds_query_failures());
    }
}
