//! Per-nameserver health tracking and circuit breaking.
//!
//! Two layers with deliberately different scopes:
//!
//! * [`CircuitBreaker`] — *per zone scan*, keyed on the scan's own virtual
//!   clock. After `threshold` consecutive failures against one address,
//!   further queries to it are skipped for `cooldown` µs of scan-local
//!   virtual time, then one probe is let through (half-open). Because the
//!   breaker's state never leaves the zone scan, results stay independent
//!   of the order in which zones are scanned — byte-identical reports
//!   regardless of worker interleaving.
//! * [`HealthTracker`] — *global*, pure observation. Aggregates
//!   per-address success/failure counts across the whole scan for the
//!   degradation report. It feeds no decision, so sharing it across
//!   threads cannot perturb determinism.

use netsim::{Addr, SimMicros};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<SimMicros>,
}

/// A deterministic per-scan circuit breaker over server addresses.
#[derive(Debug)]
pub struct CircuitBreaker {
    /// Consecutive failures that open the breaker (0 = disabled).
    threshold: u32,
    /// Virtual µs the breaker stays open before a half-open probe.
    cooldown: SimMicros,
    state: BTreeMap<Addr, BreakerState>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: SimMicros) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            state: BTreeMap::new(),
        }
    }

    /// Forget all per-address state, restoring the just-constructed
    /// breaker (threshold and cooldown are kept). Lets workers pool one
    /// breaker across zone scans — breaker state is zone-scoped, so it
    /// must be wiped between zones, but the map's capacity is worth
    /// keeping.
    pub fn reset(&mut self) {
        self.state.clear();
    }

    /// May we query `addr` at scan-local time `now`? `false` = skip (the
    /// breaker is open and still cooling down).
    pub fn allows(&mut self, addr: Addr, now: SimMicros) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.state.get(&addr).and_then(|s| s.open_until) {
            Some(until) if now < until => false,
            // Past the cooldown: half-open, let one probe through. The
            // deadline is cleared so only a fresh failure re-opens it.
            Some(_) => {
                self.state.get_mut(&addr).unwrap().open_until = None;
                true
            }
            None => true,
        }
    }

    /// Record a successful exchange with `addr`: close the breaker.
    pub fn record_success(&mut self, addr: Addr) {
        if let Some(s) = self.state.get_mut(&addr) {
            *s = BreakerState::default();
        }
    }

    /// Record a failed exchange with `addr` at scan-local time `now`.
    pub fn record_failure(&mut self, addr: Addr, now: SimMicros) {
        if self.threshold == 0 {
            return;
        }
        let s = self.state.entry(addr).or_default();
        s.consecutive_failures += 1;
        if s.consecutive_failures >= self.threshold {
            s.open_until = Some(now + self.cooldown);
        }
    }

    /// Sorted snapshot of the per-address state, for checkpointing.
    pub fn snapshot(&self) -> Vec<BreakerEntry> {
        let mut v: Vec<BreakerEntry> = self
            .state
            .iter()
            .map(|(a, s)| BreakerEntry {
                addr: *a,
                consecutive_failures: s.consecutive_failures,
                open_until: s.open_until,
            })
            .collect();
        v.sort_by_key(|e| e.addr);
        v
    }

    /// Rebuild a breaker from a checkpoint snapshot. The restored breaker
    /// behaves identically to the live one it was taken from: same allow
    /// decisions, same reopen-on-half-open-failure semantics.
    pub fn restore(threshold: u32, cooldown: SimMicros, entries: &[BreakerEntry]) -> Self {
        let mut b = CircuitBreaker::new(threshold, cooldown);
        for e in entries {
            b.state.insert(
                e.addr,
                BreakerState {
                    consecutive_failures: e.consecutive_failures,
                    open_until: e.open_until,
                },
            );
        }
        b
    }
}

/// One address's circuit-breaker state, as checkpointed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerEntry {
    pub addr: Addr,
    pub consecutive_failures: u32,
    pub open_until: Option<SimMicros>,
}

/// Aggregate health of one server address over the whole scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AddrHealth {
    pub successes: u64,
    pub failures: u64,
    pub breaker_skips: u64,
}

/// Global, observation-only per-address health statistics.
#[derive(Debug, Default)]
pub struct HealthTracker {
    map: Mutex<BTreeMap<Addr, AddrHealth>>,
}

impl HealthTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_success(&self, addr: Addr) {
        self.map.lock().entry(addr).or_default().successes += 1;
    }

    pub fn record_failure(&self, addr: Addr) {
        self.map.lock().entry(addr).or_default().failures += 1;
    }

    pub fn record_skip(&self, addr: Addr) {
        self.map.lock().entry(addr).or_default().breaker_skips += 1;
    }

    /// Fold a per-zone delta into the global tracker. The scanner records
    /// health probe-locally and merges at end of zone, so journal replay
    /// of the same deltas rebuilds an identical tracker.
    pub fn merge(&self, addr: Addr, delta: AddrHealth) {
        let mut map = self.map.lock();
        let h = map.entry(addr).or_default();
        h.successes += delta.successes;
        h.failures += delta.failures;
        h.breaker_skips += delta.breaker_skips;
    }

    /// Sorted snapshot (deterministic order for reports).
    pub fn snapshot(&self) -> Vec<(Addr, AddrHealth)> {
        let mut v: Vec<(Addr, AddrHealth)> =
            self.map.lock().iter().map(|(a, h)| (*a, *h)).collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// Addresses that failed at least once, sorted.
    pub fn unhealthy(&self) -> Vec<(Addr, AddrHealth)> {
        self.snapshot()
            .into_iter()
            .filter(|(_, h)| h.failures > 0 || h.breaker_skips > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(x: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(192, 0, 2, x))
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut b = CircuitBreaker::new(3, 1_000_000);
        let a = addr(1);
        for now in [0, 10, 20] {
            assert!(b.allows(a, now));
            b.record_failure(a, now);
        }
        assert!(!b.allows(a, 30), "open after 3 consecutive failures");
        assert!(!b.allows(a, 1_000_019), "still inside cooldown");
        assert!(b.allows(a, 1_000_020), "half-open after cooldown");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(3, 1_000_000);
        let a = addr(1);
        b.record_failure(a, 0);
        b.record_failure(a, 1);
        b.record_success(a);
        b.record_failure(a, 2);
        b.record_failure(a, 3);
        assert!(b.allows(a, 4), "streak was reset by the success");
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(2, 1_000);
        let a = addr(1);
        b.record_failure(a, 0);
        b.record_failure(a, 0);
        assert!(!b.allows(a, 500));
        assert!(b.allows(a, 2_000), "half-open probe allowed");
        // The probe fails: the streak is still ≥ threshold, so one more
        // failure re-opens without needing `threshold` fresh ones.
        b.record_failure(a, 2_000);
        assert!(!b.allows(a, 2_500));
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let mut b = CircuitBreaker::new(0, 1_000_000);
        let a = addr(1);
        for i in 0..50 {
            b.record_failure(a, i);
            assert!(b.allows(a, i));
        }
    }

    #[test]
    fn breakers_are_per_address() {
        let mut b = CircuitBreaker::new(1, 1_000);
        b.record_failure(addr(1), 0);
        assert!(!b.allows(addr(1), 10));
        assert!(b.allows(addr(2), 10));
    }

    #[test]
    fn full_transition_cycle_closed_open_half_open_closed() {
        let mut b = CircuitBreaker::new(3, 1_000);
        let a = addr(1);
        // Closed: everything allowed.
        assert!(b.allows(a, 0));
        // Closed → open at the threshold.
        for now in [0, 1, 2] {
            b.record_failure(a, now);
        }
        assert!(!b.allows(a, 3), "open");
        // Open → half-open after the cooldown: one probe allowed.
        assert!(b.allows(a, 1_002), "half-open probe");
        // Half-open → closed on probe success: a single new failure must
        // NOT re-open (the streak was fully reset).
        b.record_success(a);
        b.record_failure(a, 1_010);
        assert!(
            b.allows(a, 1_011),
            "closed again; one failure is not enough"
        );
        // ... but a fresh full streak re-opens as from scratch.
        b.record_failure(a, 1_012);
        b.record_failure(a, 1_013);
        assert!(
            !b.allows(a, 1_014),
            "re-opened after a fresh threshold streak"
        );
    }

    /// Drive a live breaker and a restored-from-snapshot copy through
    /// the same event script: every allow decision and every subsequent
    /// snapshot must match. This is what guarantees a scan resumed from
    /// a checkpoint treats flaky servers exactly like the uninterrupted
    /// run would have.
    #[test]
    fn restored_breaker_is_indistinguishable_from_live() {
        // Build a live breaker holding every phase at once: a1 open and
        // cooling, a2 mid-streak (closed), a3 past its cooldown
        // (half-open eligible).
        let mut live = CircuitBreaker::new(2, 1_000);
        live.record_failure(addr(1), 500);
        live.record_failure(addr(1), 500); // open until 1_500
        live.record_failure(addr(2), 600); // streak 1, still closed
        live.record_failure(addr(3), 0);
        live.record_failure(addr(3), 0); // open until 1_000 → half-open soon

        let mut restored = CircuitBreaker::restore(2, 1_000, &live.snapshot());
        assert_eq!(live.snapshot(), restored.snapshot());

        // Identical decisions at every probe point, including the
        // half-open transition (which mutates state) ...
        for (a, now) in [
            (addr(1), 700),   // still open
            (addr(3), 1_200), // half-open: probe allowed, deadline cleared
            (addr(3), 1_250), // allowed again (deadline was cleared)
            (addr(2), 700),   // closed
            (addr(1), 1_499), // still open
            (addr(1), 1_500), // half-open boundary
        ] {
            assert_eq!(
                live.allows(a, now),
                restored.allows(a, now),
                "diverged at {a:?} t={now}"
            );
            assert_eq!(live.snapshot(), restored.snapshot());
        }

        // ... and identical re-open behaviour when the half-open probe
        // fails: a3's streak survived the snapshot, so one failure
        // re-opens both immediately.
        live.record_failure(addr(3), 1_300);
        restored.record_failure(addr(3), 1_300);
        assert!(!live.allows(addr(3), 1_400));
        assert!(!restored.allows(addr(3), 1_400));
        assert_eq!(live.snapshot(), restored.snapshot());
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut b = CircuitBreaker::new(4, 2_000);
        b.record_failure(addr(2), 10);
        b.record_failure(addr(7), 20);
        for _ in 0..4 {
            b.record_failure(addr(9), 30);
        }
        let snap = b.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].addr < w[1].addr));
        let restored = CircuitBreaker::restore(4, 2_000, &snap);
        assert_eq!(restored.snapshot(), snap);
        // The open entry carried its deadline across.
        let e9 = snap.iter().find(|e| e.addr == addr(9)).unwrap();
        assert_eq!(e9.open_until, Some(2_030));
        assert_eq!(e9.consecutive_failures, 4);
    }

    /// Merging per-zone deltas (what journal replay does) must rebuild
    /// the same tracker as live recording.
    #[test]
    fn merged_deltas_rebuild_the_live_tracker() {
        let live = HealthTracker::new();
        live.record_success(addr(1));
        live.record_success(addr(1));
        live.record_failure(addr(1));
        live.record_skip(addr(2));
        live.record_failure(addr(3));

        let replayed = HealthTracker::new();
        replayed.merge(
            addr(1),
            AddrHealth {
                successes: 2,
                failures: 1,
                breaker_skips: 0,
            },
        );
        replayed.merge(
            addr(2),
            AddrHealth {
                successes: 0,
                failures: 0,
                breaker_skips: 1,
            },
        );
        replayed.merge(
            addr(3),
            AddrHealth {
                successes: 0,
                failures: 1,
                breaker_skips: 0,
            },
        );
        assert_eq!(live.snapshot(), replayed.snapshot());
        // Merge is additive, not overwriting.
        replayed.merge(
            addr(3),
            AddrHealth {
                successes: 5,
                failures: 0,
                breaker_skips: 0,
            },
        );
        let snap = replayed.snapshot();
        let e3 = snap.iter().find(|(a, _)| *a == addr(3)).unwrap();
        assert_eq!(
            e3.1,
            AddrHealth {
                successes: 5,
                failures: 1,
                breaker_skips: 0
            }
        );
    }

    #[test]
    fn tracker_snapshots_sorted_and_filters_unhealthy() {
        let t = HealthTracker::new();
        t.record_success(addr(9));
        t.record_failure(addr(3));
        t.record_skip(addr(5));
        t.record_success(addr(3));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
        let bad = t.unhealthy();
        assert_eq!(bad.len(), 2);
        assert_eq!(
            bad[0].1,
            AddrHealth {
                successes: 1,
                failures: 1,
                breaker_skips: 0
            }
        );
    }
}
