//! Per-nameserver health tracking and circuit breaking.
//!
//! Two layers with deliberately different scopes:
//!
//! * [`CircuitBreaker`] — *per zone scan*, keyed on the scan's own virtual
//!   clock. After `threshold` consecutive failures against one address,
//!   further queries to it are skipped for `cooldown` µs of scan-local
//!   virtual time, then one probe is let through (half-open). Because the
//!   breaker's state never leaves the zone scan, results stay independent
//!   of the order in which zones are scanned — byte-identical reports
//!   regardless of worker interleaving.
//! * [`HealthTracker`] — *global*, pure observation. Aggregates
//!   per-address success/failure counts across the whole scan for the
//!   degradation report. It feeds no decision, so sharing it across
//!   threads cannot perturb determinism.

use netsim::{Addr, SimMicros};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<SimMicros>,
}

/// A deterministic per-scan circuit breaker over server addresses.
#[derive(Debug)]
pub struct CircuitBreaker {
    /// Consecutive failures that open the breaker (0 = disabled).
    threshold: u32,
    /// Virtual µs the breaker stays open before a half-open probe.
    cooldown: SimMicros,
    state: HashMap<Addr, BreakerState>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: SimMicros) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            state: HashMap::new(),
        }
    }

    /// May we query `addr` at scan-local time `now`? `false` = skip (the
    /// breaker is open and still cooling down).
    pub fn allows(&mut self, addr: Addr, now: SimMicros) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.state.get(&addr).and_then(|s| s.open_until) {
            Some(until) if now < until => false,
            // Past the cooldown: half-open, let one probe through. The
            // deadline is cleared so only a fresh failure re-opens it.
            Some(_) => {
                self.state.get_mut(&addr).unwrap().open_until = None;
                true
            }
            None => true,
        }
    }

    /// Record a successful exchange with `addr`: close the breaker.
    pub fn record_success(&mut self, addr: Addr) {
        if let Some(s) = self.state.get_mut(&addr) {
            *s = BreakerState::default();
        }
    }

    /// Record a failed exchange with `addr` at scan-local time `now`.
    pub fn record_failure(&mut self, addr: Addr, now: SimMicros) {
        if self.threshold == 0 {
            return;
        }
        let s = self.state.entry(addr).or_default();
        s.consecutive_failures += 1;
        if s.consecutive_failures >= self.threshold {
            s.open_until = Some(now + self.cooldown);
        }
    }
}

/// Aggregate health of one server address over the whole scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AddrHealth {
    pub successes: u64,
    pub failures: u64,
    pub breaker_skips: u64,
}

/// Global, observation-only per-address health statistics.
#[derive(Debug, Default)]
pub struct HealthTracker {
    map: Mutex<HashMap<Addr, AddrHealth>>,
}

impl HealthTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_success(&self, addr: Addr) {
        self.map.lock().entry(addr).or_default().successes += 1;
    }

    pub fn record_failure(&self, addr: Addr) {
        self.map.lock().entry(addr).or_default().failures += 1;
    }

    pub fn record_skip(&self, addr: Addr) {
        self.map.lock().entry(addr).or_default().breaker_skips += 1;
    }

    /// Sorted snapshot (deterministic order for reports).
    pub fn snapshot(&self) -> Vec<(Addr, AddrHealth)> {
        let mut v: Vec<(Addr, AddrHealth)> =
            self.map.lock().iter().map(|(a, h)| (*a, *h)).collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// Addresses that failed at least once, sorted.
    pub fn unhealthy(&self) -> Vec<(Addr, AddrHealth)> {
        self.snapshot()
            .into_iter()
            .filter(|(_, h)| h.failures > 0 || h.breaker_skips > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(x: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(192, 0, 2, x))
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut b = CircuitBreaker::new(3, 1_000_000);
        let a = addr(1);
        for now in [0, 10, 20] {
            assert!(b.allows(a, now));
            b.record_failure(a, now);
        }
        assert!(!b.allows(a, 30), "open after 3 consecutive failures");
        assert!(!b.allows(a, 1_000_019), "still inside cooldown");
        assert!(b.allows(a, 1_000_020), "half-open after cooldown");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(3, 1_000_000);
        let a = addr(1);
        b.record_failure(a, 0);
        b.record_failure(a, 1);
        b.record_success(a);
        b.record_failure(a, 2);
        b.record_failure(a, 3);
        assert!(b.allows(a, 4), "streak was reset by the success");
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(2, 1_000);
        let a = addr(1);
        b.record_failure(a, 0);
        b.record_failure(a, 0);
        assert!(!b.allows(a, 500));
        assert!(b.allows(a, 2_000), "half-open probe allowed");
        // The probe fails: the streak is still ≥ threshold, so one more
        // failure re-opens without needing `threshold` fresh ones.
        b.record_failure(a, 2_000);
        assert!(!b.allows(a, 2_500));
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let mut b = CircuitBreaker::new(0, 1_000_000);
        let a = addr(1);
        for i in 0..50 {
            b.record_failure(a, i);
            assert!(b.allows(a, i));
        }
    }

    #[test]
    fn breakers_are_per_address() {
        let mut b = CircuitBreaker::new(1, 1_000);
        b.record_failure(addr(1), 0);
        assert!(!b.allows(addr(1), 10));
        assert!(b.allows(addr(2), 10));
    }

    #[test]
    fn tracker_snapshots_sorted_and_filters_unhealthy() {
        let t = HealthTracker::new();
        t.record_success(addr(9));
        t.record_failure(addr(3));
        t.record_skip(addr(5));
        t.record_success(addr(3));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
        let bad = t.unhealthy();
        assert_eq!(bad.len(), 2);
        assert_eq!(
            bad[0].1,
            AddrHealth {
                successes: 1,
                failures: 1,
                breaker_skips: 0
            }
        );
    }
}
