//! Zone-granular scan progress: the event stream a write-ahead journal
//! persists, and the resume state a recovered journal feeds back in.
//!
//! [`Scanner::scan_all_with`](crate::scanner::Scanner::scan_all_with)
//! emits one [`ZoneEvent`] per finished zone scan (main pass and re-scan
//! passes alike) to an optional [`ProgressSink`] *before* folding the
//! result into its in-memory state — write-ahead discipline, so a crash
//! can never leave a zone counted in memory but missing from the journal.
//!
//! Each event carries not just the [`ZoneScan`] but the scan's *side
//! effects* on shared scanner state ([`ZoneEffects`]): validated-key
//! cache inserts, resolver address-cache inserts, and per-address health
//! deltas. Replaying events in order therefore rebuilds the scanner's
//! shared caches exactly, which is what makes resumption deterministic:
//! a resumed zone scan sees the same cache hits and misses it would have
//! seen in the uninterrupted run.

use crate::health::AddrHealth;
use crate::types::ZoneScan;
use dns_resolver::ReferralData;
use dns_wire::name::Name;
use dns_wire::rdata::DnskeyData;
use netsim::{Addr, SimMicros};
use std::sync::Arc;

/// Side effects one zone scan had on shared scanner state.
///
/// The resolver-cache entries hold `Arc`s into the live cache values:
/// sealing a zone's effects costs one pointer bump per insert, and only
/// the (rare) journal-replay path ever deep-clones them.
#[derive(Debug, Clone, Default)]
pub struct ZoneEffects {
    /// Validated-DNSKEY cache inserts (zone apex → keys), in order.
    pub key_inserts: Vec<(Name, Vec<DnskeyData>)>,
    /// Resolver address-cache inserts (NS hostname → addrs), in order.
    pub addr_inserts: Vec<(Name, Arc<Vec<Addr>>)>,
    /// Resolver delegation-cache inserts (zone cut → referral data
    /// learned from its parent), in order.
    pub referral_inserts: Vec<(Name, Arc<ReferralData>)>,
    /// Per-address health deltas recorded during this zone scan, sorted
    /// by address.
    pub health: Vec<(Addr, AddrHealth)>,
}

/// One finished zone scan, as emitted to a [`ProgressSink`].
#[derive(Debug, Clone)]
pub struct ZoneEvent {
    /// 0 = main pass; `p ≥ 1` = re-scan pass `p`. A re-scan event's
    /// `scan` is the *kept* (merged) result, while its `effects` are
    /// those of the fresh probe that actually ran.
    pub pass: u32,
    pub scan: ZoneScan,
    pub effects: ZoneEffects,
    /// This event's contribution to `simulated_duration` (the fresh
    /// probe's elapsed virtual time).
    pub duration_delta: SimMicros,
}

/// Receives zone events as they complete. Implementations must be
/// `Sync`: workers call `on_zone` concurrently when `parallelism > 1`.
///
/// Returning `false` stops the scan (used by the journal sink on I/O
/// errors, and by the crash harness to simulate process death); the
/// event that got `false` is *not* folded into the in-memory results.
pub trait ProgressSink: Sync {
    fn on_zone(&self, event: &ZoneEvent) -> bool;
}

/// Prior progress to resume from, reconstructed from a recovered
/// journal: the latest kept result per completed zone, plus the summed
/// duration deltas of every journaled event.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    pub zones: Vec<ZoneScan>,
    pub duration_so_far: SimMicros,
}
