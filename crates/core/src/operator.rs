//! DNS operator identification (paper §3 "Identifying the DNS Operator").
//!
//! The operator of a domain is inferred from the *hostnames* of its
//! authoritative NSes — `domaincontrol.com` → GoDaddy,
//! `ns.cloudflare.com` → Cloudflare — with a white-label table for rebranded
//! fleets (the paper's example: `seized.gov` NSes are rebranded
//! Cloudflare).

use dns_wire::name::Name;
use std::collections::HashMap;

/// Maps NS-name suffixes to operator display names.
#[derive(Debug, Clone, Default)]
pub struct OperatorTable {
    /// suffix → operator name.
    suffixes: Vec<(Name, String)>,
    /// white-label suffix → canonical operator name.
    white_label: Vec<(Name, String)>,
}

/// The outcome of identifying a zone's operator(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Identified {
    /// All NSes belong to one known operator.
    Single(String),
    /// NSes belong to more than one known operator (multi-operator
    /// setup).
    Multi(Vec<String>),
    /// No NS matched a known suffix.
    Unknown,
}

impl OperatorTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an operator by NS suffix (e.g. `domaincontrol.com`).
    pub fn add(&mut self, suffix: &Name, operator: &str) {
        self.suffixes.push((suffix.clone(), operator.to_string()));
    }

    /// Register a white-label suffix that fronts `operator` (the paper's
    /// `seized.gov` → Cloudflare case).
    pub fn add_white_label(&mut self, suffix: &Name, operator: &str) {
        self.white_label
            .push((suffix.clone(), operator.to_string()));
    }

    /// Build from the generated ecosystem's operator table, adding every
    /// NS hostname's registrable base as that operator's suffix.
    pub fn from_operators<'a, I>(ops: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a [Name])>,
    {
        let mut t = Self::new();
        let mut seen: HashMap<Name, ()> = HashMap::new();
        for (name, hosts) in ops {
            for h in hosts {
                // Use the host's parent as the suffix (covers both
                // ns1.<base> and <word>.ns.<base> shapes).
                if let Some(suffix) = h.parent() {
                    if seen.insert(suffix.clone(), ()).is_none() {
                        t.add(&suffix, name);
                    }
                }
            }
        }
        t
    }

    /// The operator owning one NS hostname, if known.
    pub fn of_ns(&self, ns: &Name) -> Option<&str> {
        for (suffix, op) in self.white_label.iter().chain(self.suffixes.iter()) {
            if ns.is_subdomain_of(suffix) {
                return Some(op);
            }
        }
        None
    }

    /// Identify the operator(s) behind a full NS set.
    pub fn identify(&self, ns_set: &[Name]) -> Identified {
        let mut ops: Vec<String> = Vec::new();
        let mut any_unknown = false;
        for ns in ns_set {
            match self.of_ns(ns) {
                Some(op) => {
                    if !ops.iter().any(|o| o == op) {
                        ops.push(op.to_string());
                    }
                }
                None => any_unknown = true,
            }
        }
        match (ops.len(), any_unknown) {
            (0, _) => Identified::Unknown,
            (1, false) => Identified::Single(ops.pop().unwrap()),
            // One known operator plus unknown NSes: ambiguous — the paper
            // tags these as unknown rather than guessing.
            (1, true) => Identified::Unknown,
            _ => Identified::Multi(ops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    fn table() -> OperatorTable {
        let mut t = OperatorTable::new();
        t.add(&name!("domaincontrol.com"), "GoDaddy");
        t.add(&name!("ns.cloudflare.com"), "Cloudflare");
        t.add(&name!("desec.io"), "deSEC");
        t.add(&name!("desec.org"), "deSEC");
        t.add_white_label(&name!("seized.gov"), "Cloudflare");
        t
    }

    #[test]
    fn single_operator() {
        let t = table();
        let id = t.identify(&[
            name!("ns1.domaincontrol.com"),
            name!("ns2.domaincontrol.com"),
        ]);
        assert_eq!(id, Identified::Single("GoDaddy".into()));
    }

    #[test]
    fn suffix_match_not_substring() {
        let t = table();
        // evildomaincontrol.com must not match domaincontrol.com.
        assert_eq!(t.of_ns(&name!("ns1.evildomaincontrol.com")), None);
    }

    #[test]
    fn cloudflare_word_names() {
        let t = table();
        assert_eq!(t.of_ns(&name!("asa.ns.cloudflare.com")), Some("Cloudflare"));
        assert_eq!(
            t.identify(&[
                name!("asa.ns.cloudflare.com"),
                name!("elliot.ns.cloudflare.com")
            ]),
            Identified::Single("Cloudflare".into())
        );
    }

    #[test]
    fn white_label_resolves_to_canonical() {
        let t = table();
        assert_eq!(t.of_ns(&name!("ns1.seized.gov")), Some("Cloudflare"));
        assert_eq!(
            t.identify(&[name!("ns1.seized.gov"), name!("asa.ns.cloudflare.com")]),
            Identified::Single("Cloudflare".into())
        );
    }

    #[test]
    fn multi_operator_detected() {
        let t = table();
        let id = t.identify(&[name!("ns1.domaincontrol.com"), name!("ns1.desec.io")]);
        assert_eq!(
            id,
            Identified::Multi(vec!["GoDaddy".into(), "deSEC".into()])
        );
    }

    #[test]
    fn desec_two_suffixes_one_operator() {
        let t = table();
        let id = t.identify(&[name!("ns1.desec.io"), name!("ns2.desec.org")]);
        assert_eq!(id, Identified::Single("deSEC".into()));
    }

    #[test]
    fn unknown_and_ambiguous() {
        let t = table();
        assert_eq!(
            t.identify(&[name!("ns1.nowhere.example")]),
            Identified::Unknown
        );
        // Known + unknown = unknown (the paper's conservative tagging).
        assert_eq!(
            t.identify(&[name!("ns1.domaincontrol.com"), name!("ns1.nowhere.example")]),
            Identified::Unknown
        );
        assert_eq!(t.identify(&[]), Identified::Unknown);
    }

    #[test]
    fn from_operators_builds_suffixes() {
        let hosts_a = [name!("ns1.cleancorp.net"), name!("ns2.cleancorp.net")];
        let hosts_b = [name!("asa.ns.cloudflare.com")];
        let t = OperatorTable::from_operators([
            ("CleanCorp", &hosts_a[..]),
            ("Cloudflare", &hosts_b[..]),
        ]);
        assert_eq!(t.of_ns(&name!("ns1.cleancorp.net")), Some("CleanCorp"));
        assert_eq!(
            t.of_ns(&name!("elliot.ns.cloudflare.com")),
            Some("Cloudflare")
        );
    }
}
