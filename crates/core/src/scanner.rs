//! The YoDNS-style scanner (paper §3 "Scans").
//!
//! For every seed zone the scanner:
//! 1. resolves the delegation from the root, recording the chain (parent
//!    NS set, DS presence, servers),
//! 2. resolves the addresses of every authoritative NS hostname,
//!    applying the Cloudflare sampling policy (§3: 2 of 12 addresses for
//!    95 % of Cloudflare-hosted zones),
//! 3. queries every selected address for DNSKEY / CDS / CDNSKEY with the
//!    DO bit, under a per-address 50 qps virtual rate limit,
//! 4. probes the RFC 9615 signal name under every NS hostname (presence,
//!    consistency, DNSSEC validity, zone-cut check),
//! 5. classifies DNSSEC / CDS / AB status.

use crate::classify;
use crate::error::{RetryStats, ScanError};
use crate::health::{AddrHealth, CircuitBreaker, HealthTracker};
use crate::operator::OperatorTable;
use crate::progress::{ProgressSink, ResumeState, ZoneEffects, ZoneEvent};
use crate::types::*;
use dns_crypto::UnixTime;
use dns_resolver::validate::key_matches_any_ds;
use dns_resolver::{
    ClientErrorKind, DnsClient, HostileCause, QueryMeter, Resolution, Resolver, ResolverError,
    RetryPolicy, RootHints,
};
use dns_wire::message::Rcode;
use dns_wire::name::Name;
use dns_wire::rdata::{DnskeyData, DsData, RData, RrsigData};
use dns_wire::record::{RecordClass, RecordType, RrSet};
use dns_zone::signal::signal_name;
use dns_zone::signer::verify_rrset_with_keys;
use netsim::{Addr, DeterministicDraw, Network, RateLimiter, SimMicros};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Scanner policy knobs.
#[derive(Debug, Clone)]
pub struct ScanPolicy {
    /// Fraction of anycast-pool zones scanned with only 1 IPv4 + 1 IPv6
    /// address (the paper's 95 % Cloudflare sampling).
    pub sample_fraction: f64,
    /// NS-name suffixes subject to sampling (Cloudflare-style pools).
    pub sampled_suffixes: Vec<Name>,
    /// Per-address politeness rate (queries per virtual second).
    pub rate_per_sec: f64,
    /// Probe the RFC 9615 signal names.
    pub probe_signal: bool,
    /// Worker threads for `scan_all`.
    pub parallelism: usize,
    /// Whole-exchange retries per query on timeout/malformed replies.
    pub retries: u32,
    /// Base backoff before the first retry (virtual µs, doubles each
    /// retry, deterministic jitter on top).
    pub backoff_base: SimMicros,
    /// Consecutive failures that open a per-address circuit breaker
    /// within one zone scan (0 = disabled).
    pub breaker_threshold: u32,
    /// Virtual µs an open breaker waits before a half-open probe.
    pub breaker_cooldown: SimMicros,
    /// Extra sequential passes over zones whose evidence came back
    /// incomplete (degraded or `Indeterminate`).
    pub rescan_passes: u32,
    /// Run the Byzantine-hardening layer (response-acceptance gate
    /// consequences surfaced as named causes, referral/alias loop
    /// detection, lame-delegation detection). Off only for the
    /// amplification ablation bench.
    pub hardened: bool,
    /// Per-zone logical-query budget — the amplification cap (0 =
    /// unlimited). Sized as ≈3× the worst benign zone cost, so no
    /// adversarial response pattern can make one zone cost more than a
    /// small constant multiple of an honest one.
    pub zone_query_budget: u64,
}

impl Default for ScanPolicy {
    fn default() -> Self {
        ScanPolicy {
            sample_fraction: 0.95,
            sampled_suffixes: vec![Name::parse("ns.cloudflare.com").unwrap()],
            rate_per_sec: 50.0,
            probe_signal: true,
            parallelism: 1,
            retries: 2,
            backoff_base: 250_000,
            breaker_threshold: 4,
            breaker_cooldown: 30_000_000,
            rescan_passes: 1,
            hardened: true,
            zone_query_budget: DEFAULT_ZONE_QUERY_BUDGET,
        }
    }
}

/// Default per-zone amplification cap. Empirically, the costliest benign
/// zone needs 35 logical queries in the `tiny` world with cold caches
/// (the shared delegation cache makes even a zone's *own* repeat
/// descents — signal probes, DNSKEY walks — cache hits), so 240 gives
/// every benign zone several-fold headroom; the acceptance rules, not
/// the budget, keep adversarial cost within 3× of the worst benign zone
/// (see `crates/bench/benches/amplification_cost.rs`, which re-measures
/// both bounds every run).
pub const DEFAULT_ZONE_QUERY_BUDGET: u64 = 240;

/// Stripe count for the validated-key cache. Like the resolver's cache
/// shards, sized so that at `parallelism = 8` two workers rarely contend
/// on the same stripe even when both are crossing the root/TLD entries.
const KEY_SHARDS: usize = 16;

/// Aggregated scan output.
#[derive(Debug, Default)]
pub struct ScanResults {
    pub zones: Vec<ZoneScan>,
    /// Simulated wall-clock of the scan: the maximum worker virtual time.
    pub simulated_duration: SimMicros,
    /// Total logical queries issued.
    pub total_queries: u64,
}

/// Per-worker reusable probe state: the per-address politeness limiters
/// and the circuit breaker. Both are *semantically* zone-scoped (a zone's
/// result must never depend on what other zones did to a token bucket or
/// a breaker), but *allocating* them per zone is pure churn, so each
/// worker keeps one pool for its whole lifetime and resets it between
/// zones. Limiter resets are lazy via an epoch tag: bumping the epoch
/// invalidates every pooled limiter in O(1), and a limiter is re-armed to
/// its full burst the first time the current zone touches it.
pub(crate) struct WorkerScratch {
    epoch: u64,
    /// Pooled per-address limiters, tagged with the epoch that last
    /// touched them.
    limiters: HashMap<Addr, (u64, RateLimiter)>,
    breaker: CircuitBreaker,
}

impl WorkerScratch {
    fn new(policy: &ScanPolicy) -> Self {
        WorkerScratch {
            epoch: 0,
            limiters: HashMap::new(),
            breaker: CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown),
        }
    }

    /// Reset to the state a freshly allocated scratch would have, without
    /// giving back the map capacities.
    fn begin_zone(&mut self) {
        self.epoch += 1;
        self.breaker.reset();
    }
}

/// Per-zone-scan probing context: the scan-local virtual clock, query,
/// budget and failure accounting, a borrow of the worker's (reset)
/// breaker + limiter scratch, plus the logs of side effects on shared
/// state. No state carries over between zones, so results are
/// independent of scan order — and, at `parallelism = 1`, of which zones
/// ran in an earlier process life.
struct Probe<'w> {
    clock: SimMicros,
    queries: u32,
    stats: RetryStats,
    /// Per-zone I/O meter: derives query IDs from stable per-query
    /// coordinates (seeded from the zone name and pass number), counts
    /// datagrams/bytes against the budget, and logs resolver-cache
    /// inserts for the journal.
    meter: QueryMeter,
    /// Worker-pooled breaker + per-address politeness limiters, reset
    /// for this zone scan.
    scratch: &'w mut WorkerScratch,
    /// Validated-key cache inserts made during this zone scan.
    key_inserts: Vec<(Name, Vec<DnskeyData>)>,
    /// Per-address health deltas (merged into the global tracker at
    /// seal time; sorted by address for deterministic serialization).
    health: BTreeMap<Addr, AddrHealth>,
}

/// One validated-key-cache entry: the keys plus the bailiwick they were
/// validated under. Lookups for owners outside the provenance are refused.
struct KeyCacheEntry {
    keys: Vec<DnskeyData>,
    provenance: Name,
    /// Virtual-time expiry: the entry is never consulted at or past
    /// this instant and is evicted lazily (DESIGN.md §10). Organic
    /// inserts stamp insert-time + [`dns_resolver::CACHE_TTL_MICROS`];
    /// journal replay stamps `SimMicros::MAX` (the replayed run must see
    /// exactly the cache the interrupted run had).
    expires_at: SimMicros,
}

/// The scanner. Thread-safe: share via `Arc` across workers.
pub struct Scanner {
    client: Arc<DnsClient>,
    resolver: Resolver,
    anchors: Vec<DsData>,
    roots: Vec<Addr>,
    table: OperatorTable,
    policy: ScanPolicy,
    now: UnixTime,
    /// Validated DNSKEY sets per zone apex (root, TLDs — hot in every
    /// chain validation). Only *successful* validations are cached: a
    /// transient failure against one zone must not poison every later
    /// chain that crosses it. Every entry is provenance-tagged (the
    /// bailiwick the keys were validated under) and only consulted for
    /// owners inside that provenance, so a poisoned insert can never
    /// flip another zone's classification. Inserts are logged per zone
    /// (via [`Probe::key_inserts`]) so journal replay can rebuild the
    /// cache. Striped `KEY_SHARDS` ways by name hash: every zone's chain
    /// validation hits the root/TLD entries, and a single lock here
    /// serializes all workers.
    key_cache: Vec<Mutex<HashMap<Name, KeyCacheEntry>>>,
    /// Global per-address health statistics (observation only — feeds no
    /// decision, so it cannot perturb determinism). Fed by per-zone
    /// deltas merged at seal time.
    health: HealthTracker,
    seed: u64,
}

impl Scanner {
    pub fn new(
        net: Arc<Network>,
        roots: Vec<Addr>,
        anchors: Vec<DsData>,
        table: OperatorTable,
        now: UnixTime,
        policy: ScanPolicy,
    ) -> Self {
        let retry = RetryPolicy {
            retries: policy.retries,
            backoff_base: policy.backoff_base,
            seed: 0xb007 ^ 0xca1e,
        };
        let client = Arc::new(DnsClient::with_retry(net, retry));
        let resolver = Resolver::with_hardening(
            Arc::clone(&client),
            RootHints {
                addrs: roots.clone(),
            },
            policy.hardened,
        );
        Scanner {
            client,
            resolver,
            anchors,
            roots,
            table,
            policy,
            now,
            key_cache: (0..KEY_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            health: HealthTracker::new(),
            seed: 0xb007,
        }
    }

    /// The key-cache stripe responsible for `name`.
    fn key_shard(&self, name: &Name) -> &Mutex<HashMap<Name, KeyCacheEntry>> {
        &self.key_cache[(name.fnv64() % KEY_SHARDS as u64) as usize]
    }

    /// Sole approved write path into the shared key cache. Every entry
    /// carries its provenance tag; audited by bootscan-lint (V001),
    /// which forbids raw map inserts anywhere else.
    fn cache_validated_keys(&self, owner: &Name, entry: KeyCacheEntry) {
        // bootscan-allow(V001): the one approved provenance-tagged insert into the key cache
        self.key_shard(owner).lock().insert(owner.clone(), entry);
    }

    /// The operator table (exposed for reports).
    pub fn operator_table(&self) -> &OperatorTable {
        &self.table
    }

    /// Global per-address health statistics gathered so far.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The shared resolver (exposed for the cache-poisoning regression
    /// suite, which plants adversarial cache entries directly).
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Test hook for the cache-poisoning regression suite: plant a
    /// key-cache entry with an explicit provenance tag. An entry whose
    /// provenance does not contain the owner must never be consulted.
    pub fn poison_key_cache(&self, owner: Name, keys: Vec<DnskeyData>, provenance: Name) {
        self.cache_validated_keys(
            &owner,
            KeyCacheEntry {
                keys,
                provenance,
                expires_at: SimMicros::MAX,
            },
        );
    }

    /// Seed the validated-key cache with an explicit virtual-time expiry
    /// — the epoch carry-over path, mirroring
    /// [`Resolver::seed_address_until`](dns_resolver::Resolver::seed_address_until):
    /// a carried entry keeps only its *remaining* validity.
    pub fn seed_validated_keys_until(
        &self,
        owner: Name,
        keys: Vec<DnskeyData>,
        expires_at: SimMicros,
    ) {
        let provenance = owner.clone();
        self.cache_validated_keys(
            &owner,
            KeyCacheEntry {
                keys,
                provenance,
                expires_at,
            },
        );
    }

    /// A fresh probe for one scan of `zone`, borrowing the worker's
    /// scratch (reset here). The meter's query-ID seed is drawn from
    /// `(zone, pass)`, and the meter derives each ID from the query's
    /// stable coordinates under that seed — so a zone's wire traffic is
    /// a pure function of the zone, the pass number, and which of its
    /// lookups the shared caches answered. Crucially, a cache hit elides
    /// whole queries without renumbering the surviving ones, which is
    /// what keeps the evidence plane identical across parallelism and
    /// cold-vs-warm cache states.
    fn new_probe<'w>(&self, scratch: &'w mut WorkerScratch, zone: &Name, pass: u32) -> Probe<'w> {
        let id_seed = DeterministicDraw::new(
            self.seed ^ 0x9e7e_0012,
            &[b"meter", &zone.to_wire(), &pass.to_be_bytes()],
        )
        .below(1 << 48);
        scratch.begin_zone();
        Probe {
            clock: 0,
            queries: 0,
            stats: RetryStats::default(),
            meter: QueryMeter::with_budget(id_seed, self.policy.zone_query_budget),
            scratch,
            key_inserts: Vec::new(),
            health: BTreeMap::new(),
        }
    }

    /// One rate-limited, breaker-guarded query; failures are recorded in
    /// the probe's [`RetryStats`] and charged their real virtual cost.
    fn query(
        &self,
        probe: &mut Probe,
        addr: Addr,
        name: &Name,
        rtype: RecordType,
    ) -> Option<dns_wire::message::Message> {
        if !probe.scratch.breaker.allows(addr, probe.clock) {
            probe.stats.record(ScanError::BreakerOpen);
            probe.health.entry(addr).or_default().breaker_skips += 1;
            return None;
        }
        // Limiters are zone-scoped (so zone results never depend on what
        // other zones did to a shared token bucket), with a small burst:
        // the per-address politeness rate must still dominate within one
        // zone's query fan-out. The buckets themselves are pooled in the
        // worker scratch and lazily re-armed per zone via the epoch tag.
        let epoch = probe.scratch.epoch;
        let (tag, limiter) = probe
            .scratch
            .limiters
            .entry(addr)
            .or_insert_with(|| (epoch, RateLimiter::new(self.policy.rate_per_sec, 2.0)));
        if *tag != epoch {
            limiter.reset();
            *tag = epoch;
        }
        let wait = limiter.acquire(probe.clock);
        probe.clock += wait;
        probe.queries += 1;
        match self
            .client
            .query_at_with(Some(&probe.meter), probe.clock, addr, name, rtype, true)
        {
            Ok(ex) => {
                probe.clock += ex.elapsed;
                probe.stats.retries += ex.retries;
                if ex.message.rcode() == Rcode::ServFail {
                    probe.stats.servfails += 1;
                }
                probe.scratch.breaker.record_success(addr);
                probe.health.entry(addr).or_default().successes += 1;
                Some(ex.message)
            }
            Err(e) => {
                probe.clock += e.elapsed;
                probe.stats.retries += e.retries;
                probe.stats.record(match e.kind {
                    ClientErrorKind::Unreachable => ScanError::Unreachable,
                    ClientErrorKind::Timeout => ScanError::Timeout,
                    ClientErrorKind::Malformed => ScanError::Malformed,
                    ClientErrorKind::Rejected => ScanError::Hostile(HostileCause::MismatchedReply),
                    ClientErrorKind::BudgetExceeded => {
                        ScanError::Hostile(HostileCause::BudgetExceeded)
                    }
                });
                probe.scratch.breaker.record_failure(addr, probe.clock);
                probe.health.entry(addr).or_default().failures += 1;
                None
            }
        }
    }

    /// Fetch + verify the DNSKEY set of `zone` (must chain from `ds`),
    /// caching successes. `None` = could not validate (never cached — the
    /// failure may be transient).
    fn validated_keys(
        &self,
        probe: &mut Probe,
        zone: &Name,
        servers: &[Addr],
        ds: &[DsData],
    ) -> Option<Vec<DnskeyData>> {
        {
            let mut shard = self.key_shard(zone).lock();
            if let Some(cached) = shard.get(zone) {
                if cached.expires_at <= probe.clock {
                    // Expired: never consulted, evicted lazily.
                    shard.remove(zone);
                } else if zone.is_subdomain_of(&cached.provenance) {
                    // Bailiwick rule: a cached key set only serves owners
                    // inside its provenance. A well-formed entry has
                    // provenance == owner; anything else is a poisoned
                    // insert and is ignored.
                    return Some(cached.keys.clone());
                }
            }
        }
        let keys = self.fetch_keys_uncached(probe, zone, servers, ds);
        if let Some(k) = &keys {
            self.cache_validated_keys(
                zone,
                KeyCacheEntry {
                    keys: k.clone(),
                    provenance: zone.clone(),
                    expires_at: probe.clock.saturating_add(dns_resolver::CACHE_TTL_MICROS),
                },
            );
            probe.key_inserts.push((zone.clone(), k.clone()));
        }
        keys
    }

    fn fetch_keys_uncached(
        &self,
        probe: &mut Probe,
        zone: &Name,
        servers: &[Addr],
        ds: &[DsData],
    ) -> Option<Vec<DnskeyData>> {
        for &addr in servers {
            let Some(msg) = self.query(probe, addr, zone, RecordType::Dnskey) else {
                continue;
            };
            if msg.rcode().is_error() {
                continue;
            }
            let keys: Vec<DnskeyData> = msg
                .answers
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Dnskey(d) if r.name == *zone => Some(d.clone()),
                    _ => None,
                })
                .collect();
            if keys.is_empty() {
                return None;
            }
            if !keys.iter().any(|k| key_matches_any_ds(zone, k, ds)) {
                return None;
            }
            let rrsigs: Vec<RrsigData> = msg
                .answers
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(s) if s.type_covered == RecordType::Dnskey.code() => {
                        Some(s.clone())
                    }
                    _ => None,
                })
                .collect();
            let set = RrSet {
                name: zone.clone(),
                class: RecordClass::In,
                rtype: RecordType::Dnskey,
                ttl: 3600,
                rdatas: keys.iter().cloned().map(RData::Dnskey).collect(),
            };
            if verify_rrset_with_keys(&set, &rrsigs, &keys, self.now).is_err() {
                return None;
            }
            return Some(keys);
        }
        None
    }

    /// Validate the delegation chain of `res` down to (but not including)
    /// the final zone, returning the parent's validated keys and the DS
    /// set for the final zone. Uses the key cache so TLD keys are fetched
    /// once per scan.
    fn validate_chain_to_parent(&self, probe: &mut Probe, res: &Resolution) -> ChainStatus {
        // Root keys.
        let mut keys = match self.validated_keys(probe, &Name::root(), &self.roots, &self.anchors) {
            Some(k) => k,
            None => return ChainStatus::Indeterminate,
        };
        let n = res.chain.len();
        for (i, link) in res.chain.iter().enumerate() {
            let last = i + 1 == n;
            let Some(ds) = &link.ds else {
                // Insecure delegation above or at the zone.
                return if last {
                    ChainStatus::NoDsAtParent
                } else {
                    ChainStatus::InsecureAbove
                };
            };
            // DS RRset must be signed by the parent.
            let ds_set = RrSet {
                name: link.child_apex.clone(),
                class: RecordClass::In,
                rtype: RecordType::Ds,
                ttl: 300,
                rdatas: ds.iter().cloned().map(RData::Ds).collect(),
            };
            if verify_rrset_with_keys(&ds_set, &link.ds_rrsigs, &keys, self.now).is_err() {
                return ChainStatus::Bogus;
            }
            if last {
                return ChainStatus::DsPresent(ds.clone());
            }
            keys = match self.validated_keys(probe, &link.child_apex, &link.child_servers, ds) {
                Some(k) => k,
                None => return ChainStatus::Bogus,
            };
        }
        // No chain at all (zone served by the root?) — treat as insecure.
        ChainStatus::InsecureAbove
    }

    /// Scan one zone.
    pub fn scan_zone(&self, zone: &Name) -> ZoneScan {
        let mut scratch = WorkerScratch::new(&self.policy);
        self.scan_zone_pass(&mut scratch, zone, 0).0
    }

    /// Scan one zone as pass `pass` (0 = main, ≥1 = re-scan), returning
    /// the result together with the scan's side effects on shared state.
    fn scan_zone_pass(
        &self,
        scratch: &mut WorkerScratch,
        zone: &Name,
        pass: u32,
    ) -> (ZoneScan, ZoneEffects) {
        let mut probe = self.new_probe(scratch, zone, pass);
        let mut scan = self.scan_zone_inner(zone, &mut probe);
        // Seal: fold the meter's budget totals into the zone's stats,
        // drain the meter's cache-insert log (the resolver attributed
        // every shared-cache insert this zone paid for to its meter),
        // and merge the probe-local health deltas into the global
        // tracker.
        let io = probe.meter.io();
        scan.retry_stats.datagrams = io.datagrams as u32;
        scan.retry_stats.tcp_fallbacks = io.tcp_fallbacks as u32;
        scan.retry_stats.bytes_sent = io.bytes_sent;
        scan.retry_stats.bytes_received = io.bytes_received;
        let health: Vec<(Addr, AddrHealth)> = probe.health.iter().map(|(a, h)| (*a, *h)).collect();
        for (addr, delta) in &health {
            self.health.merge(*addr, *delta);
        }
        let cache_log = probe.meter.take_cache_log();
        let effects = ZoneEffects {
            key_inserts: std::mem::take(&mut probe.key_inserts),
            addr_inserts: cache_log.addr_inserts,
            referral_inserts: cache_log.referral_inserts,
            health,
        };
        (scan, effects)
    }

    fn scan_zone_inner(&self, zone: &Name, probe: &mut Probe) -> ZoneScan {
        // 1. Delegation resolution.
        let res = match self.resolver.resolve_at_with(
            Some(&probe.meter),
            probe.clock,
            zone,
            RecordType::Soa,
        ) {
            Ok(r) => r,
            Err(e) => {
                match e {
                    // "All servers failed" is a network-level failure —
                    // the evidence is incomplete, not the zone
                    // nonexistent.
                    ResolverError::AllServersFailed(_) => {
                        probe.stats.record(ScanError::ResolutionFailed);
                    }
                    // The hardening layer refused the walk: a hostile
                    // casualty, reported under its named cause.
                    ResolverError::Hostile(c) => {
                        probe.stats.record(ScanError::Hostile(c));
                    }
                    _ => {}
                }
                return self.unresolvable(zone, probe);
            }
        };
        let Some(last_link) = res.chain.last() else {
            return self.unresolvable(zone, probe);
        };
        if last_link.child_apex != *zone || res.rcode == Rcode::NxDomain {
            // The zone is not actually delegated.
            return self.unresolvable(zone, probe);
        }
        if self.policy.hardened && res.rcode == Rcode::Refused {
            // Delegated, yet the delegated servers refuse to answer for
            // it: a lame delegation. Without this check the zone would
            // fall through and read as an artificial Unsigned.
            probe
                .stats
                .record(ScanError::Hostile(HostileCause::LameDelegation));
            return self.unresolvable(zone, probe);
        }
        probe.clock += res.elapsed;
        probe.queries += res.queries;
        let ns_names = last_link.ns_names.clone();
        let chain = self.validate_chain_to_parent(probe, &res);
        let parent_ds = match &chain {
            ChainStatus::DsPresent(ds) => ds.clone(),
            _ => Vec::new(),
        };

        // 2. Addresses, with sampling policy.
        let mut targets: Vec<(Name, Addr)> = Vec::new();
        for ns in &ns_names {
            if let Ok(addrs) =
                self.resolver
                    .addresses_of_at_with(Some(&probe.meter), probe.clock, ns)
            {
                for a in addrs.iter() {
                    targets.push((ns.clone(), *a));
                }
            }
        }
        let sampled = self.apply_sampling(zone, &mut targets);

        // 3. Per-address DNSSEC/CDS observations.
        let mut observations = Vec::new();
        for (ns, addr) in &targets {
            observations.push(self.observe_address(probe, zone, ns, *addr));
        }

        // Zone DNSKEY validation (for Secured/Invalid/Island split).
        let zone_keys: Option<Vec<DnskeyData>> = if parent_ds.is_empty() {
            // Island check: self-validate against its own keys.
            self.self_validated_keys(&observations)
        } else {
            let servers: Vec<Addr> = targets.iter().map(|(_, a)| *a).collect();
            self.fetch_keys_uncached(probe, zone, &servers, &parent_ds)
        };

        // 4. Signal probes.
        let mut signal_observations = Vec::new();
        if self.policy.probe_signal {
            for ns in &ns_names {
                signal_observations.push(self.probe_signal(probe, zone, ns));
            }
        }

        // 5. Classify. First fold in hostile events the client/resolver
        // observed silently (stripped foreign records, loop detections
        // inside nested address walks, budget refusals), so the
        // degradation logic below — and the report — sees them.
        probe.stats.absorb_hostile(&probe.meter.hostile());
        probe.stats.logical_queries = probe.meter.logical_queries();
        let mut dnssec = classify::dnssec_class(&chain, &observations, zone_keys.as_deref());
        // Degradation override: the zone resolved, but then *no* address
        // produced any answer while transient failures were piling up.
        // The evidence is incomplete — refuse to classify rather than
        // report an artificial Unsigned/Invalid.
        let no_evidence = !observations.is_empty() && observations.iter().all(|o| !o.responded);
        if no_evidence && probe.stats.degraded() {
            dnssec = DnssecClass::Indeterminate;
        }
        let cds = classify::cds_class(&observations, zone_keys.as_deref(), dnssec);
        let ab = classify::ab_class(dnssec, cds, &signal_observations, &observations);
        let operator = self.table.identify(&ns_names);

        let degraded = probe.stats.degraded();
        ZoneScan {
            name: zone.clone(),
            ns_names,
            parent_ds,
            ns_observations: observations,
            signal_observations,
            dnssec,
            cds,
            ab,
            operator,
            queries: probe.queries,
            elapsed: probe.clock,
            sampled,
            retry_stats: probe.stats,
            degraded,
        }
    }

    fn unresolvable(&self, zone: &Name, probe: &mut Probe) -> ZoneScan {
        // A zone that failed to resolve *because of network failures* is
        // Indeterminate (evidence incomplete); one that is genuinely
        // undelegated is Unresolvable. Hostile casualties count as
        // degradation, so they land in Indeterminate with their named
        // cause in the stats — never in Unresolvable, which would
        // misread an attack as a property of the world.
        probe.stats.absorb_hostile(&probe.meter.hostile());
        probe.stats.logical_queries = probe.meter.logical_queries();
        let degraded = probe.stats.degraded();
        ZoneScan {
            name: zone.clone(),
            ns_names: Vec::new(),
            parent_ds: Vec::new(),
            ns_observations: Vec::new(),
            signal_observations: Vec::new(),
            dnssec: if degraded {
                DnssecClass::Indeterminate
            } else {
                DnssecClass::Unresolvable
            },
            cds: CdsClass::Absent,
            ab: AbClass::NoSignal,
            operator: crate::operator::Identified::Unknown,
            queries: probe.queries,
            elapsed: probe.clock,
            sampled: false,
            retry_stats: probe.stats,
            degraded,
        }
    }

    /// Apply the Cloudflare sampling policy. Returns whether sampling
    /// reduced the target set.
    fn apply_sampling(&self, zone: &Name, targets: &mut Vec<(Name, Addr)>) -> bool {
        let pooled = targets.iter().all(|(ns, _)| {
            self.policy
                .sampled_suffixes
                .iter()
                .any(|s| ns.is_subdomain_of(s))
        });
        if !pooled || targets.is_empty() || targets.len() <= 2 {
            return false;
        }
        let in_sample = DeterministicDraw::new(self.seed, &[b"sample", &zone.to_wire()]).unit()
            < self.policy.sample_fraction;
        if !in_sample {
            return false;
        }
        // Keep 1 IPv4 and 1 IPv6.
        let v4 = targets.iter().find(|(_, a)| !a.is_v6()).cloned();
        let v6 = targets.iter().find(|(_, a)| a.is_v6()).cloned();
        targets.clear();
        targets.extend(v4);
        targets.extend(v6);
        true
    }

    /// Query one address for DNSKEY/CDS/CDNSKEY.
    fn observe_address(
        &self,
        probe: &mut Probe,
        zone: &Name,
        ns: &Name,
        addr: Addr,
    ) -> NsObservation {
        let mut obs = NsObservation {
            ns_name: ns.clone(),
            addr,
            responded: false,
            soa_present: false,
            cds_query_error: false,
            dnskeys: Vec::new(),
            cds: Vec::new(),
            cds_sig_valid: None,
            csync_present: false,
        };
        // SOA: authoritativeness / lameness probe.
        if let Some(msg) = self.query(probe, addr, zone, RecordType::Soa) {
            obs.responded = true;
            obs.soa_present = msg
                .answers
                .iter()
                .any(|r| r.rtype() == RecordType::Soa && r.name == *zone);
        }
        // DNSKEY.
        if let Some(msg) = self.query(probe, addr, zone, RecordType::Dnskey) {
            obs.responded = true;
            for r in &msg.answers {
                if let RData::Dnskey(d) = &r.rdata {
                    obs.dnskeys.push(d.clone());
                }
            }
        }
        // CDS + CDNSKEY.
        let mut cds_rrsigs: Vec<RrsigData> = Vec::new();
        let mut cds_rdatas: Vec<RData> = Vec::new();
        for rtype in [RecordType::Cds, RecordType::Cdnskey] {
            match self.query(probe, addr, zone, rtype) {
                Some(msg) => {
                    obs.responded = true;
                    if msg.rcode().is_error() {
                        obs.cds_query_error = true;
                        continue;
                    }
                    for r in &msg.answers {
                        match &r.rdata {
                            RData::Cds(d) => {
                                obs.cds.push(CdsSeen::from_ds(d));
                                cds_rdatas.push(r.rdata.clone());
                            }
                            RData::Cdnskey(k) => {
                                obs.cds.push(CdsSeen::from_dnskey(k));
                                cds_rdatas.push(r.rdata.clone());
                            }
                            RData::Rrsig(s) => cds_rrsigs.push(s.clone()),
                            _ => {}
                        }
                    }
                }
                None => {
                    obs.cds_query_error = true;
                }
            }
        }
        obs.cds.sort();
        obs.cds.dedup();
        // CSYNC (RFC 7477) — the other child→parent channel (paper §6).
        if let Some(msg) = self.query(probe, addr, zone, RecordType::Csync) {
            obs.csync_present = msg
                .answers
                .iter()
                .any(|r| r.rtype() == RecordType::Csync && r.name == *zone);
        }
        // Verify the RRSIG over the CDS RRset against the zone's DNSKEYs
        // as served by this same address.
        if !cds_rdatas.is_empty() && !obs.dnskeys.is_empty() {
            let mut valid = true;
            for rtype in [RecordType::Cds, RecordType::Cdnskey] {
                let rdatas: Vec<RData> = cds_rdatas
                    .iter()
                    .filter(|r| r.rtype() == rtype)
                    .cloned()
                    .collect();
                if rdatas.is_empty() {
                    continue;
                }
                let set = RrSet {
                    name: zone.clone(),
                    class: RecordClass::In,
                    rtype,
                    ttl: 300,
                    rdatas,
                };
                if verify_rrset_with_keys(&set, &cds_rrsigs, &obs.dnskeys, self.now).is_err() {
                    valid = false;
                }
            }
            obs.cds_sig_valid = Some(valid);
        }
        obs
    }

    /// Keys that self-validate from the NS observations (island check).
    fn self_validated_keys(&self, observations: &[NsObservation]) -> Option<Vec<DnskeyData>> {
        observations
            .iter()
            .find(|o| !o.dnskeys.is_empty())
            .map(|o| o.dnskeys.clone())
    }

    /// Probe the signal name for (zone, ns): resolve its CDS, validate
    /// its chain, and check for zone cuts on the signal path.
    fn probe_signal(&self, probe: &mut Probe, zone: &Name, ns: &Name) -> SignalObservation {
        let mut obs = SignalObservation {
            ns_name: ns.clone(),
            name_unbuildable: false,
            cds: Vec::new(),
            dnssec_valid: None,
            zone_cut: false,
        };
        let Ok(signame) = signal_name(zone, ns) else {
            obs.name_unbuildable = true;
            return obs;
        };
        let res = match self.resolver.resolve_at_with(
            Some(&probe.meter),
            probe.clock,
            &signame,
            RecordType::Cds,
        ) {
            Ok(r) => r,
            Err(ResolverError::Hostile(c)) => {
                // An adversary answering for the signal name (alias
                // loops, referral games) is a hostile casualty of this
                // zone's scan — named, and degrading.
                probe.stats.record(ScanError::Hostile(c));
                return obs;
            }
            Err(_) => return obs,
        };
        probe.clock += res.elapsed;
        probe.queries += res.queries;
        for r in &res.answers {
            match &r.rdata {
                RData::Cds(d) => obs.cds.push(CdsSeen::from_ds(d)),
                RData::Cdnskey(k) => obs.cds.push(CdsSeen::from_dnskey(k)),
                _ => {}
            }
        }
        // CDNSKEY at the same name.
        if let Ok(res2) = self.resolver.resolve_at_with(
            Some(&probe.meter),
            probe.clock,
            &signame,
            RecordType::Cdnskey,
        ) {
            probe.clock += res2.elapsed;
            probe.queries += res2.queries;
            for r in &res2.answers {
                if let RData::Cdnskey(k) = &r.rdata {
                    obs.cds.push(CdsSeen::from_dnskey(k));
                }
            }
        }
        obs.cds.sort();
        obs.cds.dedup();
        // Zone-cut probe runs regardless of whether signal records were
        // found: the parked-typo-NS case (§4.4) answers CDS queries with
        // nothing while faking NS RRsets at every label.
        obs.zone_cut = self.detect_zone_cut(probe, &res.zone_apex, &signame, &res.zone_servers);
        if obs.cds.is_empty() {
            return obs;
        }
        // Chain validation of the signal records.
        let chain = self.validate_chain_to_parent(probe, &res);
        let valid = match chain {
            ChainStatus::DsPresent(ds) => {
                // Validate the answering zone's keys and the CDS RRsets.
                let keys = self.validated_keys(probe, &res.zone_apex, &res.zone_servers, &ds);
                match keys {
                    Some(keys) => self.signal_rrsets_valid(&res, &keys),
                    None => false,
                }
            }
            _ => false, // unsigned or broken chain → signal not authenticated
        };
        obs.dnssec_valid = Some(valid);
        obs
    }

    fn signal_rrsets_valid(&self, res: &Resolution, keys: &[DnskeyData]) -> bool {
        let rrsigs: Vec<RrsigData> = res
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Rrsig(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        for set in RrSet::group(&res.answers) {
            if matches!(set.rtype, RecordType::Cds | RecordType::Cdnskey)
                && verify_rrset_with_keys(&set, &rrsigs, keys, self.now).is_err()
            {
                return false;
            }
        }
        true
    }

    /// Probe for NS RRsets between the zone apex and the signal name.
    fn detect_zone_cut(
        &self,
        probe: &mut Probe,
        zone_apex: &Name,
        signame: &Name,
        servers: &[Addr],
    ) -> bool {
        let mut cursor = signame.parent();
        while let Some(p) = cursor {
            if !p.is_strict_subdomain_of(zone_apex) {
                break;
            }
            for &addr in servers {
                if let Some(msg) = self.query(probe, addr, &p, RecordType::Ns) {
                    if msg.rcode() == Rcode::NoError {
                        let has_ns = msg
                            .answers
                            .iter()
                            .any(|r| r.rtype() == RecordType::Ns && r.name == p);
                        if has_ns {
                            return true;
                        }
                    }
                    break;
                }
            }
            cursor = p.parent();
        }
        false
    }

    /// Scan every zone in `seeds`, optionally in parallel.
    pub fn scan_all(self: &Arc<Self>, seeds: &[Name]) -> ScanResults {
        self.scan_all_with(seeds, None, None)
    }

    /// Like [`scan_all`](Self::scan_all), but emitting every finished
    /// zone scan to `sink` *before* folding it into the results
    /// (write-ahead discipline), and optionally resuming from prior
    /// progress: zones already present in `resume` are skipped and their
    /// recorded results carried forward.
    ///
    /// With `parallelism = 1` (the default) the combination of per-zone
    /// query meters, per-probe rate limiters and replayed cache effects
    /// makes resumption *deterministic*: killing a journaled scan at any
    /// event boundary and resuming yields results byte-identical to the
    /// uninterrupted run.
    pub fn scan_all_with(
        self: &Arc<Self>,
        seeds: &[Name],
        sink: Option<&dyn ProgressSink>,
        resume: Option<ResumeState>,
    ) -> ScanResults {
        self.scan_with_workers(seeds, sink, resume, self.policy.parallelism.max(1))
    }

    /// Scan one fabric shard: exactly [`scan_all_with`](Self::scan_all_with)
    /// but pinned to a single in-scanner worker regardless of
    /// `policy.parallelism`.
    ///
    /// The distributed scan fabric (`scan-fabric`) gives every shard a
    /// *fresh* scanner (cold caches) and scans it sequentially; shard
    /// results are then a pure function of (world, shard seed slice,
    /// policy) — independent of which fabric worker ran the shard, how
    /// many workers exist, and how often the shard was killed and
    /// resumed. That per-shard determinism extends to the *full* zone
    /// records including cost counters, which is what makes the merged
    /// fabric report byte-identical across worker counts and fault
    /// plans (see `tests/fabric_recovery.rs`).
    pub fn scan_shard_with(
        self: &Arc<Self>,
        seeds: &[Name],
        sink: Option<&dyn ProgressSink>,
        resume: Option<ResumeState>,
    ) -> ScanResults {
        self.scan_with_workers(seeds, sink, resume, 1)
    }

    fn scan_with_workers(
        self: &Arc<Self>,
        seeds: &[Name],
        sink: Option<&dyn ProgressSink>,
        resume: Option<ResumeState>,
        workers: usize,
    ) -> ScanResults {
        let mut base_duration: SimMicros = 0;
        let mut completed: HashSet<Name> = HashSet::new();
        let mut carried: Vec<ZoneScan> = Vec::new();
        if let Some(resume) = resume {
            base_duration = resume.duration_so_far;
            for z in resume.zones {
                completed.insert(z.name.clone());
                carried.push(z);
            }
        }
        let zones: Mutex<Vec<ZoneScan>> = Mutex::new(carried);
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let worker_time: Mutex<Vec<SimMicros>> = Mutex::new(vec![0; workers]);
        std::thread::scope(|s| {
            for w in 0..workers {
                let me = Arc::clone(self);
                let zones = &zones;
                let next = &next;
                let stop = &stop;
                let worker_time = &worker_time;
                let completed = &completed;
                s.spawn(move || {
                    let mut local_time: SimMicros = 0;
                    let mut scratch = WorkerScratch::new(&me.policy);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= seeds.len() {
                            break;
                        }
                        if completed.contains(&seeds[i]) {
                            continue;
                        }
                        let (scan, effects) = me.scan_zone_pass(&mut scratch, &seeds[i], 0);
                        local_time += scan.elapsed;
                        if let Some(sink) = sink {
                            let event = ZoneEvent {
                                pass: 0,
                                duration_delta: scan.elapsed,
                                scan,
                                effects,
                            };
                            if !sink.on_zone(&event) {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            zones.lock().push(event.scan);
                        } else {
                            zones.lock().push(scan);
                        }
                    }
                    worker_time.lock()[w] = local_time;
                });
            }
        });
        let mut zones = zones.into_inner();
        zones.sort_by(|a, b| a.name.canonical_cmp(&b.name));
        let mut simulated_duration =
            base_duration + worker_time.into_inner().into_iter().max().unwrap_or(0);

        // Re-scan queue: zones whose evidence came back incomplete get
        // fresh sequential passes (fresh per-pass query-ID seeds → fresh
        // netsim draws), in name order for determinism. The better of
        // old/new result is kept; costs accumulate either way. Each
        // completed pass stamps `rescans`, so a resumed run can tell
        // which zones pass `p` already covered in an earlier life.
        if !stop.load(Ordering::Relaxed) {
            let mut scratch = WorkerScratch::new(&self.policy);
            'passes: for pass in 1..=self.policy.rescan_passes {
                let pending: Vec<usize> = zones
                    .iter()
                    .enumerate()
                    .filter(|(_, z)| {
                        (z.degraded || z.dnssec == DnssecClass::Indeterminate)
                            && z.retry_stats.rescans < pass
                    })
                    .map(|(i, _)| i)
                    .collect();
                if pending.is_empty() {
                    break;
                }
                for i in pending {
                    let (mut fresh, effects) =
                        self.scan_zone_pass(&mut scratch, &zones[i].name, pass);
                    let duration_delta = fresh.elapsed;
                    simulated_duration += duration_delta;
                    let old = &zones[i];
                    let rescans = old.retry_stats.rescans + 1;
                    let mut kept = if Self::evidence_rank(&fresh) < Self::evidence_rank(old) {
                        fresh.queries += old.queries;
                        Self::accumulate_io(&mut fresh.retry_stats, &old.retry_stats);
                        fresh
                    } else {
                        let mut kept = old.clone();
                        kept.queries += fresh.queries;
                        Self::accumulate_io(&mut kept.retry_stats, &fresh.retry_stats);
                        kept
                    };
                    kept.retry_stats.rescans = rescans;
                    if let Some(sink) = sink {
                        let event = ZoneEvent {
                            pass,
                            duration_delta,
                            scan: kept.clone(),
                            effects,
                        };
                        if !sink.on_zone(&event) {
                            break 'passes;
                        }
                    }
                    zones[i] = kept;
                }
            }
        }

        let total_queries = zones.iter().map(|z| z.queries as u64).sum();
        ScanResults {
            zones,
            simulated_duration,
            total_queries,
        }
    }

    /// Budget counters are cumulative across re-scan passes, whichever
    /// result is kept: the wire traffic happened either way.
    fn accumulate_io(into: &mut RetryStats, other: &RetryStats) {
        into.datagrams += other.datagrams;
        into.tcp_fallbacks += other.tcp_fallbacks;
        into.bytes_sent += other.bytes_sent;
        into.bytes_received += other.bytes_received;
    }

    /// Replay one journaled event's side effects into the shared caches
    /// and the health tracker. Recovery calls this for every event in
    /// sequence order before resuming, so resumed zone scans see exactly
    /// the cache state they would have seen in the uninterrupted run.
    pub fn restore_effects(&self, effects: &ZoneEffects) {
        for (zone, keys) in &effects.key_inserts {
            self.cache_validated_keys(
                zone,
                KeyCacheEntry {
                    keys: keys.clone(),
                    provenance: zone.clone(),
                    // Replay must reproduce the interrupted run's cache
                    // state verbatim; expiry is an epoch-level concern.
                    expires_at: SimMicros::MAX,
                },
            );
        }
        for (ns, addrs) in &effects.addr_inserts {
            self.resolver.seed_address(ns.clone(), (**addrs).clone());
        }
        for (cut, data) in &effects.referral_inserts {
            self.resolver.seed_referral(cut.clone(), (**data).clone());
        }
        for (addr, delta) in &effects.health {
            self.health.merge(*addr, *delta);
        }
    }

    /// Orders scan results by evidence quality (lower = better): a
    /// substantive classification beats Unresolvable beats Indeterminate,
    /// and among equals, fewer failures win.
    fn evidence_rank(z: &ZoneScan) -> (u8, u8, u32) {
        let class = match z.dnssec {
            DnssecClass::Indeterminate => 2,
            DnssecClass::Unresolvable => 1,
            _ => 0,
        };
        (
            class,
            z.degraded as u8,
            z.retry_stats.failures + z.retry_stats.breaker_skips,
        )
    }
}

/// Outcome of validating the chain from the root to a zone's parent.
#[derive(Debug, Clone)]
pub enum ChainStatus {
    /// DS present at the parent (and the chain above validated).
    DsPresent(Vec<DsData>),
    /// No DS at the parent: the zone is insecurely delegated.
    NoDsAtParent,
    /// An ancestor delegation was already insecure.
    InsecureAbove,
    /// Validation failed somewhere above the zone.
    Bogus,
    /// Could not determine (unreachable/erroring servers).
    Indeterminate,
}

impl ScanResults {
    /// Resolved zones (the denominator of §4.1's percentages).
    /// Indeterminate zones are excluded like unresolvable ones: their
    /// evidence is incomplete and must not dilute the percentages.
    pub fn resolved(&self) -> impl Iterator<Item = &ZoneScan> {
        self.zones.iter().filter(|z| {
            !matches!(
                z.dnssec,
                DnssecClass::Unresolvable | DnssecClass::Indeterminate
            )
        })
    }

    /// Zones whose scan was degraded by transient failures (including
    /// those that still reached a classification).
    pub fn degraded(&self) -> impl Iterator<Item = &ZoneScan> {
        self.zones
            .iter()
            .filter(|z| z.degraded || z.dnssec == DnssecClass::Indeterminate)
    }
}

// Security is re-exported so downstream users need not depend on
// dns-resolver directly.
pub use dns_resolver::validate::Security as ResolverSecurity;
