//! Bootstrap-policy simulation (paper Appendix C).
//!
//! Before RFC 9615, the IETF floated several policies for accepting CDS
//! RRs from an unauthenticated child (RFC 8078 §3). The paper's Appendix C
//! explains why each falls short of "entirely automated whilst maintaining
//! the security expected of modern Internet protocols". This module makes
//! that argument quantitative: each policy is run over a scan's
//! bootstrappable population, deciding per zone whether it would have been
//! secured, at what automation level, and with what authentication.

use crate::scanner::ScanResults;
use crate::types::{AbClass, CdsClass, DnssecClass};
use netsim::DeterministicDraw;
use serde::Serialize;
use std::fmt::Write as _;

/// One of the Appendix C policies (or RFC 9615 itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BootstrapPolicy {
    /// "Accept via an Authenticated Channel": works only where DNS
    /// operator and registry share an out-of-band channel —
    /// `channel_coverage` is the fraction of operators that do.
    AuthenticatedChannel { channel_coverage: f64 },
    /// "Accept with Extra Checks": the registrar emails the customer;
    /// `confirmation_rate` is the fraction of customers who understand
    /// and act (the paper: "many customers are unlikely to understand").
    ExtraChecks { confirmation_rate: f64 },
    /// "Accept after Delay": install after the CDS was stable for a hold
    /// period from several vantage points. Automated, but only
    /// *heuristically* protected against hijacking.
    AcceptAfterDelay { hold_days: u32 },
    /// "Accept with Challenge": a token placed in the zone;
    /// `completion_rate` is the fraction of customers who manage it.
    AcceptWithChallenge { completion_rate: f64 },
    /// "Accept from Inception": only zones whose CDS predates
    /// registration; `preconfigured_rate` is how often operators set up
    /// the zone before registration ("often not the case").
    AcceptFromInception { preconfigured_rate: f64 },
    /// RFC 9615 Authenticated Bootstrapping.
    Authenticated,
}

impl BootstrapPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            BootstrapPolicy::AuthenticatedChannel { .. } => "Accept via Authenticated Channel",
            BootstrapPolicy::ExtraChecks { .. } => "Accept with Extra Checks",
            BootstrapPolicy::AcceptAfterDelay { .. } => "Accept after Delay",
            BootstrapPolicy::AcceptWithChallenge { .. } => "Accept with Challenge",
            BootstrapPolicy::AcceptFromInception { .. } => "Accept from Inception",
            BootstrapPolicy::Authenticated => "Authenticated Bootstrapping (RFC 9615)",
        }
    }

    /// Fully automated (no human in the loop)?
    pub fn automated(&self) -> bool {
        matches!(
            self,
            BootstrapPolicy::AuthenticatedChannel { .. }
                | BootstrapPolicy::AcceptAfterDelay { .. }
                | BootstrapPolicy::AcceptFromInception { .. }
                | BootstrapPolicy::Authenticated
        )
    }

    /// Cryptographically authenticated (vs heuristic/organisational)?
    pub fn authenticated(&self) -> bool {
        matches!(
            self,
            BootstrapPolicy::AuthenticatedChannel { .. } | BootstrapPolicy::Authenticated
        )
    }

    /// The residual weakness Appendix C calls out.
    pub fn caveat(&self) -> &'static str {
        match self {
            BootstrapPolicy::AuthenticatedChannel { .. } => {
                "no standardized backchannel; per-operator integration"
            }
            BootstrapPolicy::ExtraChecks { .. } => "customers rarely understand the notification",
            BootstrapPolicy::AcceptAfterDelay { .. } => {
                "heuristic only; hijack window during the delay"
            }
            BootstrapPolicy::AcceptWithChallenge { .. } => {
                "no token standard; customer action required"
            }
            BootstrapPolicy::AcceptFromInception { .. } => {
                "zone rarely configured before registration"
            }
            BootstrapPolicy::Authenticated => "needs extant DNSSEC at the operator's NS zones",
        }
    }
}

/// Outcome of running one policy over a scan.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyOutcome {
    pub policy: String,
    /// Zones that could traditionally be bootstrapped (the denominator).
    pub candidates: u64,
    /// Zones the policy actually secures.
    pub secured: u64,
    /// Zones secured without any cryptographic authentication (the
    /// residual-risk population; 0 for authenticated policies).
    pub secured_unauthenticated: u64,
    pub automated: bool,
    pub authenticated: bool,
    pub caveat: String,
}

/// Evaluate `policy` over the scan's bootstrappable population.
///
/// Per-zone coin flips (customer confirmed, operator has a backchannel,
/// zone preconfigured) are deterministic in `(seed, zone)` so comparisons
/// across policies are reproducible.
pub fn evaluate(policy: BootstrapPolicy, results: &ScanResults, seed: u64) -> PolicyOutcome {
    let mut candidates = 0u64;
    let mut secured = 0u64;
    for z in results.resolved() {
        let bootstrappable = z.dnssec == DnssecClass::Island && z.cds == CdsClass::Valid;
        if !bootstrappable {
            continue;
        }
        candidates += 1;
        let draw = DeterministicDraw::new(seed, &[b"policy", &z.name.to_wire()]);
        let ok = match policy {
            BootstrapPolicy::AuthenticatedChannel { channel_coverage } => {
                // Channel existence is a property of the operator; use a
                // draw keyed on the operator so whole portfolios flip
                // together, like reality.
                let op = format!("{:?}", z.operator);
                DeterministicDraw::new(seed, &[b"chan", op.as_bytes()]).unit() < channel_coverage
            }
            BootstrapPolicy::ExtraChecks { confirmation_rate } => draw.unit() < confirmation_rate,
            BootstrapPolicy::AcceptAfterDelay { .. } => true, // always converges eventually
            BootstrapPolicy::AcceptWithChallenge { completion_rate } => {
                draw.next().unit() < completion_rate
            }
            BootstrapPolicy::AcceptFromInception { preconfigured_rate } => {
                draw.next().next().unit() < preconfigured_rate
            }
            BootstrapPolicy::Authenticated => z.ab == AbClass::SignalCorrect,
        };
        if ok {
            secured += 1;
        }
    }
    PolicyOutcome {
        policy: policy.name().to_string(),
        candidates,
        secured,
        secured_unauthenticated: if policy.authenticated() { 0 } else { secured },
        automated: policy.automated(),
        authenticated: policy.authenticated(),
        caveat: policy.caveat().to_string(),
    }
}

/// The paper-motivated default parameterisation of all six policies.
pub fn default_panel() -> Vec<BootstrapPolicy> {
    vec![
        BootstrapPolicy::AuthenticatedChannel {
            channel_coverage: 0.05,
        },
        BootstrapPolicy::ExtraChecks {
            confirmation_rate: 0.15,
        },
        BootstrapPolicy::AcceptAfterDelay { hold_days: 7 },
        BootstrapPolicy::AcceptWithChallenge {
            completion_rate: 0.10,
        },
        BootstrapPolicy::AcceptFromInception {
            preconfigured_rate: 0.08,
        },
        BootstrapPolicy::Authenticated,
    ]
}

/// Render a comparison table.
pub fn render_comparison(outcomes: &[PolicyOutcome]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Bootstrap-policy comparison (paper Appendix C)");
    let _ = writeln!(
        s,
        "{:<40} {:>10} {:>8} {:>6} {:>6}  caveat",
        "policy", "secured", "unauth", "auto", "crypto"
    );
    for o in outcomes {
        let _ = writeln!(
            s,
            "{:<40} {:>6}/{:<4} {:>7} {:>6} {:>6}  {}",
            o.policy,
            o.secured,
            o.candidates,
            o.secured_unauthenticated,
            if o.automated { "yes" } else { "no" },
            if o.authenticated { "yes" } else { "no" },
            o.caveat
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Identified;
    use crate::types::ZoneScan;
    use dns_wire::name;

    fn zone(n: &str, dnssec: DnssecClass, cds: CdsClass, ab: AbClass) -> ZoneScan {
        ZoneScan {
            name: name!(n),
            ns_names: vec![],
            parent_ds: vec![],
            ns_observations: vec![],
            signal_observations: vec![],
            dnssec,
            cds,
            ab,
            operator: Identified::Single("Op".into()),
            queries: 0,
            elapsed: 0,
            sampled: false,
            retry_stats: crate::error::RetryStats::default(),
            degraded: false,
        }
    }

    fn results() -> ScanResults {
        let mut zones = Vec::new();
        for i in 0..100 {
            zones.push(zone(
                &format!("b{i}.com"),
                DnssecClass::Island,
                CdsClass::Valid,
                if i < 90 {
                    AbClass::SignalCorrect
                } else if i < 95 {
                    AbClass::SignalIncorrect(crate::types::SignalViolation::NotUnderEveryNs)
                } else {
                    AbClass::NoSignal
                },
            ));
        }
        zones.push(zone(
            "u.com",
            DnssecClass::Unsigned,
            CdsClass::Absent,
            AbClass::NoSignal,
        ));
        zones.push(zone(
            "d.com",
            DnssecClass::Island,
            CdsClass::Delete,
            AbClass::NoSignal,
        ));
        ScanResults {
            zones,
            simulated_duration: 0,
            total_queries: 0,
        }
    }

    #[test]
    fn candidates_are_bootstrappable_islands_only() {
        let o = evaluate(
            BootstrapPolicy::AcceptAfterDelay { hold_days: 7 },
            &results(),
            1,
        );
        assert_eq!(o.candidates, 100);
        assert_eq!(o.secured, 100); // delay always converges
        assert_eq!(o.secured_unauthenticated, 100); // but unauthenticated
        assert!(o.automated && !o.authenticated);
    }

    #[test]
    fn ab_secures_only_signal_correct_and_authenticated() {
        let o = evaluate(BootstrapPolicy::Authenticated, &results(), 1);
        assert_eq!(o.candidates, 100);
        assert_eq!(o.secured, 90);
        assert_eq!(o.secured_unauthenticated, 0);
        assert!(o.automated && o.authenticated);
    }

    #[test]
    fn customer_action_policies_secure_roughly_their_rate() {
        let o = evaluate(
            BootstrapPolicy::ExtraChecks {
                confirmation_rate: 0.15,
            },
            &results(),
            1,
        );
        assert!(o.secured < 40, "{}", o.secured);
        assert!(!o.automated);
        let o = evaluate(
            BootstrapPolicy::AcceptWithChallenge {
                completion_rate: 0.10,
            },
            &results(),
            1,
        );
        assert!(o.secured < 35, "{}", o.secured);
    }

    #[test]
    fn channel_policy_flips_whole_operators() {
        // Coverage 0 → nothing; coverage ~1 → everything.
        let none = evaluate(
            BootstrapPolicy::AuthenticatedChannel {
                channel_coverage: 0.0,
            },
            &results(),
            1,
        );
        assert_eq!(none.secured, 0);
        let all = evaluate(
            BootstrapPolicy::AuthenticatedChannel {
                channel_coverage: 0.999_999,
            },
            &results(),
            1,
        );
        assert_eq!(all.secured, 100);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = evaluate(
            BootstrapPolicy::ExtraChecks {
                confirmation_rate: 0.5,
            },
            &results(),
            7,
        );
        let b = evaluate(
            BootstrapPolicy::ExtraChecks {
                confirmation_rate: 0.5,
            },
            &results(),
            7,
        );
        assert_eq!(a.secured, b.secured);
    }

    #[test]
    fn panel_renders() {
        let outcomes: Vec<PolicyOutcome> = default_panel()
            .into_iter()
            .map(|p| evaluate(p, &results(), 3))
            .collect();
        let table = render_comparison(&outcomes);
        assert!(table.contains("RFC 9615"));
        assert!(table.contains("Accept after Delay"));
        // Only the two authenticated policies have zero unauthenticated
        // installs.
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| o.secured_unauthenticated == 0)
                .count(),
            2
        );
    }
}
