//! Structured failure taxonomy and degradation accounting.
//!
//! Under fault injection the scanner must never silently fold a network
//! failure into a substantive classification: every failed query is
//! recorded here, per zone, and zones whose evidence is incomplete are
//! reported as [`DnssecClass::Indeterminate`](crate::types::DnssecClass)
//! with these statistics attached.

use dns_resolver::hostile::{HostileCause, HostileTally};
use serde::Serialize;
use std::fmt;

/// Why one scanner-level query (or whole resolution) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanError {
    /// No server bound at the address; the query cost nothing.
    Unreachable,
    /// Every datagram attempt (and every client retry) timed out.
    Timeout,
    /// A reply arrived but did not parse as a DNS message.
    Malformed,
    /// The circuit breaker skipped the query without sending it.
    BreakerOpen,
    /// Iterative resolution failed because every server of some zone
    /// failed (the resolver-level analogue of a timeout).
    ResolutionFailed,
    /// The hardening layer rejected adversarial behaviour, with a named
    /// cause (DESIGN.md §6c). Hostile casualties follow the same
    /// degradation path as transient faults: explicit, never a silent
    /// misclassification.
    Hostile(HostileCause),
}

// Hand-rolled: `HostileCause` lives in dns-resolver (which has no serde
// dependency), so the derive cannot reach it. Unit variants keep their
// derived-style string form; `Hostile` carries its cause label.
impl Serialize for ScanError {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            ScanError::Hostile(c) => s.serialize_str(&format!("Hostile({})", c.label())),
            other => s.serialize_str(&format!("{other:?}")),
        }
    }
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Unreachable => f.write_str("unreachable"),
            ScanError::Timeout => f.write_str("timeout"),
            ScanError::Malformed => f.write_str("malformed reply"),
            ScanError::BreakerOpen => f.write_str("circuit breaker open"),
            ScanError::ResolutionFailed => f.write_str("resolution failed"),
            ScanError::Hostile(c) => write!(f, "hostile: {c}"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Per-zone retry and failure statistics, serialized into reports so
/// degraded classifications are auditable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RetryStats {
    /// Failed logical queries (after client-level retries).
    pub failures: u32,
    /// ... of which exhausted their timeout budget.
    pub timeouts: u32,
    /// ... of which hit an unbound address.
    pub unreachable: u32,
    /// ... of which got an unparsable reply.
    pub malformed: u32,
    /// Logical queries answered with SERVFAIL.
    pub servfails: u32,
    /// Client-level whole-exchange retries spent (successful or not).
    pub retries: u32,
    /// Queries skipped because a per-address circuit breaker was open.
    pub breaker_skips: u32,
    /// Whole-resolution failures (all servers of some zone failed).
    pub resolution_failures: u32,
    /// Re-scan passes this zone went through before its final result.
    pub rescans: u32,
    /// Datagrams put on the wire for this zone (UDP attempts + TCP
    /// attempts, lost ones included), cumulative across re-scan passes.
    pub datagrams: u32,
    /// TC=1 → TCP fallback exchanges, cumulative across re-scan passes.
    pub tcp_fallbacks: u32,
    /// Query bytes sent for this zone, cumulative across re-scan passes.
    pub bytes_sent: u64,
    /// Reply bytes received for this zone, cumulative across re-scan
    /// passes.
    pub bytes_received: u64,
    /// Logical queries begun for this zone (what the amplification cap
    /// bounds), cumulative across re-scan passes.
    pub logical_queries: u64,
    /// Hostile-event evidence per named cause (acceptance-gate
    /// rejections, stripped foreign records, loop/fan-out/alias trips,
    /// budget refusals, lame delegations). Counts are evidence, not
    /// incident totals: a detection may be tallied at more than one
    /// layer, so read each as "≥ 1 means this cause was observed".
    pub hostile_mismatched: u64,
    pub hostile_foreign: u64,
    pub hostile_referral_loops: u64,
    pub hostile_wide_referrals: u64,
    pub hostile_alias_loops: u64,
    pub hostile_budget: u64,
    pub hostile_lame: u64,
}

impl RetryStats {
    /// Record one failed query.
    pub fn record(&mut self, e: ScanError) {
        match e {
            ScanError::BreakerOpen => {
                self.breaker_skips += 1;
                return;
            }
            ScanError::Timeout => self.timeouts += 1,
            ScanError::Unreachable => self.unreachable += 1,
            ScanError::Malformed => self.malformed += 1,
            ScanError::ResolutionFailed => self.resolution_failures += 1,
            ScanError::Hostile(c) => self.note_hostile(c),
        }
        self.failures += 1;
    }

    /// Tally one hostile event under its named cause.
    pub fn note_hostile(&mut self, cause: HostileCause) {
        match cause {
            HostileCause::MismatchedReply => self.hostile_mismatched += 1,
            HostileCause::ForeignRecords => self.hostile_foreign += 1,
            HostileCause::ReferralLoop => self.hostile_referral_loops += 1,
            HostileCause::WideReferral => self.hostile_wide_referrals += 1,
            HostileCause::AliasLoop => self.hostile_alias_loops += 1,
            HostileCause::BudgetExceeded => self.hostile_budget += 1,
            HostileCause::LameDelegation => self.hostile_lame += 1,
        }
    }

    /// Merge a meter's hostile tally (events observed inside the client
    /// and resolver, which never surfaced as a `ScanError`).
    pub fn absorb_hostile(&mut self, tally: &HostileTally) {
        self.hostile_mismatched += tally.mismatched_replies;
        self.hostile_foreign += tally.foreign_records;
        self.hostile_referral_loops += tally.referral_loops;
        self.hostile_wide_referrals += tally.wide_referrals;
        self.hostile_alias_loops += tally.alias_loops;
        self.hostile_budget += tally.budget_exceeded;
        self.hostile_lame += tally.lame_delegations;
    }

    /// Total hostile events across all named causes.
    pub fn hostile_events(&self) -> u64 {
        self.hostile_mismatched
            + self.hostile_foreign
            + self.hostile_referral_loops
            + self.hostile_wide_referrals
            + self.hostile_alias_loops
            + self.hostile_budget
            + self.hostile_lame
    }

    /// Whether any evidence-reducing event occurred. `Unreachable` does
    /// not count: an unbound address is a property of the world (a stale
    /// glue record), not a transient impairment. Hostile events always
    /// count: evidence filtered by the acceptance gate is evidence the
    /// classifier did not get to see.
    pub fn degraded(&self) -> bool {
        self.timeouts > 0
            || self.malformed > 0
            || self.breaker_skips > 0
            || self.resolution_failures > 0
            || self.hostile_events() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tallies_by_kind() {
        let mut s = RetryStats::default();
        s.record(ScanError::Timeout);
        s.record(ScanError::Timeout);
        s.record(ScanError::Malformed);
        s.record(ScanError::Unreachable);
        s.record(ScanError::BreakerOpen);
        s.record(ScanError::ResolutionFailed);
        assert_eq!(s.timeouts, 2);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.unreachable, 1);
        assert_eq!(s.breaker_skips, 1);
        assert_eq!(s.resolution_failures, 1);
        // Breaker skips are not query failures.
        assert_eq!(s.failures, 5);
    }

    #[test]
    fn unreachable_alone_is_not_degradation() {
        let mut s = RetryStats::default();
        assert!(!s.degraded());
        s.record(ScanError::Unreachable);
        assert!(!s.degraded());
        s.record(ScanError::Timeout);
        assert!(s.degraded());
    }

    #[test]
    fn breaker_skip_alone_is_degradation() {
        let mut s = RetryStats::default();
        s.record(ScanError::BreakerOpen);
        assert!(s.degraded());
        assert_eq!(s.failures, 0);
    }

    #[test]
    fn hostile_records_named_cause_and_degrades() {
        let mut s = RetryStats::default();
        assert!(!s.degraded());
        s.record(ScanError::Hostile(HostileCause::ReferralLoop));
        assert_eq!(s.hostile_referral_loops, 1);
        assert_eq!(s.failures, 1);
        assert_eq!(s.hostile_events(), 1);
        assert!(s.degraded());

        let mut tally = HostileTally::default();
        tally.note(HostileCause::ForeignRecords);
        tally.note(HostileCause::BudgetExceeded);
        s.absorb_hostile(&tally);
        assert_eq!(s.hostile_foreign, 1);
        assert_eq!(s.hostile_budget, 1);
        assert_eq!(s.hostile_events(), 3);

        let json = serde_json::to_string(&ScanError::Hostile(HostileCause::AliasLoop)).unwrap();
        assert!(json.contains("alias-loop"), "{json}");
        assert_eq!(
            ScanError::Hostile(HostileCause::LameDelegation).to_string(),
            "hostile: lame-delegation"
        );
    }

    #[test]
    fn stats_serialize() {
        let s = RetryStats {
            timeouts: 3,
            failures: 3,
            ..RetryStats::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"timeouts\":3"));
    }
}
