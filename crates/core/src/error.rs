//! Structured failure taxonomy and degradation accounting.
//!
//! Under fault injection the scanner must never silently fold a network
//! failure into a substantive classification: every failed query is
//! recorded here, per zone, and zones whose evidence is incomplete are
//! reported as [`DnssecClass::Indeterminate`](crate::types::DnssecClass)
//! with these statistics attached.

use serde::Serialize;
use std::fmt;

/// Why one scanner-level query (or whole resolution) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ScanError {
    /// No server bound at the address; the query cost nothing.
    Unreachable,
    /// Every datagram attempt (and every client retry) timed out.
    Timeout,
    /// A reply arrived but did not parse as a DNS message.
    Malformed,
    /// The circuit breaker skipped the query without sending it.
    BreakerOpen,
    /// Iterative resolution failed because every server of some zone
    /// failed (the resolver-level analogue of a timeout).
    ResolutionFailed,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScanError::Unreachable => "unreachable",
            ScanError::Timeout => "timeout",
            ScanError::Malformed => "malformed reply",
            ScanError::BreakerOpen => "circuit breaker open",
            ScanError::ResolutionFailed => "resolution failed",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ScanError {}

/// Per-zone retry and failure statistics, serialized into reports so
/// degraded classifications are auditable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RetryStats {
    /// Failed logical queries (after client-level retries).
    pub failures: u32,
    /// ... of which exhausted their timeout budget.
    pub timeouts: u32,
    /// ... of which hit an unbound address.
    pub unreachable: u32,
    /// ... of which got an unparsable reply.
    pub malformed: u32,
    /// Logical queries answered with SERVFAIL.
    pub servfails: u32,
    /// Client-level whole-exchange retries spent (successful or not).
    pub retries: u32,
    /// Queries skipped because a per-address circuit breaker was open.
    pub breaker_skips: u32,
    /// Whole-resolution failures (all servers of some zone failed).
    pub resolution_failures: u32,
    /// Re-scan passes this zone went through before its final result.
    pub rescans: u32,
    /// Datagrams put on the wire for this zone (UDP attempts + TCP
    /// attempts, lost ones included), cumulative across re-scan passes.
    pub datagrams: u32,
    /// TC=1 → TCP fallback exchanges, cumulative across re-scan passes.
    pub tcp_fallbacks: u32,
    /// Query bytes sent for this zone, cumulative across re-scan passes.
    pub bytes_sent: u64,
    /// Reply bytes received for this zone, cumulative across re-scan
    /// passes.
    pub bytes_received: u64,
}

impl RetryStats {
    /// Record one failed query.
    pub fn record(&mut self, e: ScanError) {
        match e {
            ScanError::BreakerOpen => {
                self.breaker_skips += 1;
                return;
            }
            ScanError::Timeout => self.timeouts += 1,
            ScanError::Unreachable => self.unreachable += 1,
            ScanError::Malformed => self.malformed += 1,
            ScanError::ResolutionFailed => self.resolution_failures += 1,
        }
        self.failures += 1;
    }

    /// Whether any evidence-reducing event occurred. `Unreachable` does
    /// not count: an unbound address is a property of the world (a stale
    /// glue record), not a transient impairment.
    pub fn degraded(&self) -> bool {
        self.timeouts > 0
            || self.malformed > 0
            || self.breaker_skips > 0
            || self.resolution_failures > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tallies_by_kind() {
        let mut s = RetryStats::default();
        s.record(ScanError::Timeout);
        s.record(ScanError::Timeout);
        s.record(ScanError::Malformed);
        s.record(ScanError::Unreachable);
        s.record(ScanError::BreakerOpen);
        s.record(ScanError::ResolutionFailed);
        assert_eq!(s.timeouts, 2);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.unreachable, 1);
        assert_eq!(s.breaker_skips, 1);
        assert_eq!(s.resolution_failures, 1);
        // Breaker skips are not query failures.
        assert_eq!(s.failures, 5);
    }

    #[test]
    fn unreachable_alone_is_not_degradation() {
        let mut s = RetryStats::default();
        assert!(!s.degraded());
        s.record(ScanError::Unreachable);
        assert!(!s.degraded());
        s.record(ScanError::Timeout);
        assert!(s.degraded());
    }

    #[test]
    fn breaker_skip_alone_is_degradation() {
        let mut s = RetryStats::default();
        s.record(ScanError::BreakerOpen);
        assert!(s.degraded());
        assert_eq!(s.failures, 0);
    }

    #[test]
    fn stats_serialize() {
        let s = RetryStats {
            timeouts: 3,
            failures: 3,
            ..RetryStats::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"timeouts\":3"));
    }
}
