//! # bootscan — the paper's measurement system
//!
//! A from-scratch reproduction of the scanner + analysis pipeline of
//! *"Measuring the Deployment of DNSSEC Bootstrapping Using Authenticated
//! Signals"* (IMC 2025):
//!
//! * [`scanner::Scanner`] — the YoDNS-equivalent: resolves each zone's
//!   delegation, queries every authoritative NS address for
//!   DNSKEY/CDS/CDNSKEY with DNSSEC validation, probes RFC 9615 signal
//!   names, applies the Cloudflare 2-of-12 sampling policy, and rate
//!   limits itself to 50 queries/s per nameserver — all in deterministic
//!   virtual time over [`netsim`].
//! * [`classify`] — the paper's category logic: DNSSEC status (§4.1), CDS
//!   status (§4.2), and the Authenticated-Bootstrapping waterfall
//!   (§4.3/§4.4).
//! * [`operator`] — NS-suffix operator identification with white-label
//!   support (§3).
//! * [`report`] — regenerates Figure 1 and Tables 1–3 plus the CDS
//!   census.
//! * [`budget`] — scan cost and the Appendix D registry-feasibility
//!   estimate.
//! * [`policy`] — the Appendix C bootstrap-policy comparison (the five
//!   RFC 8078 alternatives vs RFC 9615), made quantitative.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dns_ecosystem::{build, EcosystemConfig};
//! use bootscan::{Scanner, ScanPolicy, operator::OperatorTable};
//! use std::sync::Arc;
//!
//! let eco = build(EcosystemConfig::tiny(42));
//! let table = OperatorTable::from_operators(
//!     eco.operators.iter().map(|o| (o.name.as_str(), o.hosts.as_slice())),
//! );
//! let scanner = Arc::new(Scanner::new(
//!     Arc::clone(&eco.net), eco.roots.clone(), eco.anchors.clone(),
//!     table, eco.now, ScanPolicy::default(),
//! ));
//! let seeds = eco.seeds.compile(&eco.psl);
//! let results = scanner.scan_all(&seeds);
//! println!("{}", bootscan::report::figure1(&results).render());
//! ```

#![forbid(unsafe_code)]

pub mod budget;
pub mod classify;
pub mod error;
pub mod health;
pub mod operator;
pub mod policy;
pub mod progress;
pub mod report;
pub mod scanner;
pub mod types;

pub use dns_resolver::ReferralData;
pub use error::{RetryStats, ScanError};
pub use health::{AddrHealth, BreakerEntry, CircuitBreaker, HealthTracker};
pub use operator::{Identified, OperatorTable};
pub use progress::{ProgressSink, ResumeState, ZoneEffects, ZoneEvent};
pub use scanner::{ScanPolicy, ScanResults, Scanner};
pub use types::{AbClass, CannotReason, CdsClass, DnssecClass, SignalViolation, ZoneScan};
