//! Scanner behaviour tests: sampling policy, key caching, policy knobs,
//! rate limiting — the §3 scan mechanics, isolated.

use bootscan::operator::OperatorTable;
use bootscan::{ScanPolicy, Scanner};
use dns_ecosystem::spec::{CategoryCounts, EcosystemConfig};
use dns_ecosystem::{build, Ecosystem};
use dns_wire::Name;
use std::sync::Arc;

fn scanner_with(eco: &Ecosystem, policy: ScanPolicy) -> Arc<Scanner> {
    let table = OperatorTable::from_operators(
        eco.operators
            .iter()
            .map(|o| (o.name.as_str(), o.hosts.as_slice())),
    );
    Arc::new(Scanner::new(
        Arc::clone(&eco.net),
        eco.roots.clone(),
        eco.anchors.clone(),
        table,
        eco.now,
        policy,
    ))
}

/// A config with a Cloudflare-style anycast operator (12 addresses per
/// zone) so the sampling policy has something to bite on.
fn anycast_config(seed: u64) -> EcosystemConfig {
    let mut cfg = EcosystemConfig::tiny(seed);
    let mut cf = cfg.operators[0].clone();
    cf.name = "PoolCorp".into();
    cf.ns_base = "ns.poolcorp.net".into();
    cf.ns_hosts = 6;
    cf.addrs_per_host = (3, 3);
    cf.backends = 16;
    cf.counts = CategoryCounts {
        unsigned: 30,
        island_cds: 10,
        ..Default::default()
    };
    cfg.operators.push(cf);
    cfg
}

fn poolcorp_zones(eco: &Ecosystem) -> Vec<Name> {
    let compiled = eco.seeds.compile(&eco.psl);
    eco.truth
        .iter()
        .filter(|t| eco.operators[t.operator].name == "PoolCorp" && compiled.contains(&t.name))
        .map(|t| t.name.clone())
        .collect()
}

#[test]
fn sampling_reduces_addresses_for_pooled_operators() {
    let eco = build(anycast_config(3));
    let zones = poolcorp_zones(&eco);
    assert!(zones.len() > 20);
    // 80 % sampling so both buckets are well-populated at this zone count.
    let policy = ScanPolicy {
        sample_fraction: 0.8,
        sampled_suffixes: vec![Name::parse("ns.poolcorp.net").unwrap()],
        ..ScanPolicy::default()
    };
    let scanner = scanner_with(&eco, policy);
    let mut sampled = 0;
    let mut full = 0;
    for z in &zones {
        let scan = scanner.scan_zone(z);
        if scan.sampled {
            sampled += 1;
            // 1 IPv4 + 1 IPv6 observation only.
            assert_eq!(scan.ns_observations.len(), 2, "{z}");
            assert!(scan.ns_observations.iter().any(|o| o.addr.is_v6()));
            assert!(scan.ns_observations.iter().any(|o| !o.addr.is_v6()));
        } else {
            full += 1;
            // Two NS hostnames × (3 v4 + 3 v6) = 12 addresses.
            assert_eq!(scan.ns_observations.len(), 12, "{z}");
        }
    }
    // ~80 % sampled, the rest scanned exhaustively.
    assert!(sampled > full, "sampled={sampled} full={full}");
    assert!(full >= 1, "the exhaustive bucket must exist");
}

#[test]
fn sampling_does_not_change_classification() {
    let eco_a = build(anycast_config(3));
    let zones = poolcorp_zones(&eco_a);
    let sampled = scanner_with(
        &eco_a,
        ScanPolicy {
            sampled_suffixes: vec![Name::parse("ns.poolcorp.net").unwrap()],
            ..ScanPolicy::default()
        },
    )
    .scan_all(&zones);
    let eco_b = build(anycast_config(3));
    let exhaustive = scanner_with(
        &eco_b,
        ScanPolicy {
            sample_fraction: 0.0,
            ..ScanPolicy::default()
        },
    )
    .scan_all(&zones);
    for (a, b) in sampled.zones.iter().zip(exhaustive.zones.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.dnssec, b.dnssec, "{}", a.name);
        assert_eq!(a.cds, b.cds, "{}", a.name);
        assert_eq!(a.ab, b.ab, "{}", a.name);
    }
    // And it saves queries — the paper's motivation.
    assert!(
        sampled.total_queries < exhaustive.total_queries,
        "{} !< {}",
        sampled.total_queries,
        exhaustive.total_queries
    );
}

#[test]
fn key_cache_amortises_tld_validation() {
    let eco = build(dns_ecosystem::EcosystemConfig::tiny(5));
    let scanner = scanner_with(&eco, ScanPolicy::default());
    let seeds = eco.seeds.compile(&eco.psl);
    let com: Vec<&Name> = seeds
        .iter()
        .filter(|n| n.to_string_fqdn().ends_with(".com."))
        .take(3)
        .collect();
    assert!(com.len() >= 2);
    let first = scanner.scan_zone(com[0]);
    let second = scanner.scan_zone(com[1]);
    // The second zone under the same TLD skips the root/TLD DNSKEY
    // fetches (cached), so it must use strictly fewer queries unless the
    // zones differ wildly in signal fan-out; compare conservatively.
    assert!(
        second.queries < first.queries + 5,
        "first={} second={}",
        first.queries,
        second.queries
    );
}

#[test]
fn probe_signal_off_saves_queries_and_reports_no_signal() {
    let eco_a = build(dns_ecosystem::EcosystemConfig::tiny(9));
    let seeds = eco_a.seeds.compile(&eco_a.psl);
    let with = scanner_with(&eco_a, ScanPolicy::default()).scan_all(&seeds);
    let eco_b = build(dns_ecosystem::EcosystemConfig::tiny(9));
    let without = scanner_with(
        &eco_b,
        ScanPolicy {
            probe_signal: false,
            ..ScanPolicy::default()
        },
    )
    .scan_all(&seeds);
    assert!(without.total_queries < with.total_queries);
    assert!(without
        .zones
        .iter()
        .all(|z| z.ab == bootscan::AbClass::NoSignal));
    // DNSSEC/CDS classifications are unaffected.
    for (a, b) in with.zones.iter().zip(without.zones.iter()) {
        assert_eq!(a.dnssec, b.dnssec);
        assert_eq!(a.cds, b.cds);
    }
}

#[test]
fn rate_limit_dominates_simulated_duration() {
    let eco_a = build(dns_ecosystem::EcosystemConfig::tiny(7));
    let seeds = eco_a.seeds.compile(&eco_a.psl);
    let slow = scanner_with(
        &eco_a,
        ScanPolicy {
            rate_per_sec: 5.0,
            ..ScanPolicy::default()
        },
    )
    .scan_all(&seeds);
    let eco_b = build(dns_ecosystem::EcosystemConfig::tiny(7));
    let fast = scanner_with(
        &eco_b,
        ScanPolicy {
            rate_per_sec: 5_000.0,
            ..ScanPolicy::default()
        },
    )
    .scan_all(&seeds);
    assert!(
        slow.simulated_duration > 2 * fast.simulated_duration,
        "slow={} fast={}",
        slow.simulated_duration,
        fast.simulated_duration
    );
    // Same classifications either way.
    for (a, b) in slow.zones.iter().zip(fast.zones.iter()) {
        assert_eq!(a.dnssec, b.dnssec);
    }
}

#[test]
fn csync_probe_counts_pilot_zones() {
    // tiny(): SignalSoft publishes CSYNC on its signed zones.
    let eco = build(dns_ecosystem::EcosystemConfig::tiny(4));
    let scanner = scanner_with(&eco, ScanPolicy::default());
    let seeds = eco.seeds.compile(&eco.psl);
    let results = scanner.scan_all(&seeds);
    let census = bootscan::report::cds_census(&results);
    assert!(census.with_csync > 0, "CSYNC pilot zones must be observed");
    // CSYNC only appears on zones (co-)operated by SignalSoft; the
    // multi-operator and typo'd-NS plants identify as Multi/Unknown.
    for z in &results.zones {
        if z.ns_observations.iter().any(|o| o.csync_present) {
            match &z.operator {
                bootscan::Identified::Single(op) => assert_eq!(op, "SignalSoft", "{}", z.name),
                bootscan::Identified::Multi(ops) => {
                    assert!(ops.iter().any(|o| o == "SignalSoft"), "{}", z.name)
                }
                bootscan::Identified::Unknown => {
                    let t = eco.truth_of(&z.name).unwrap();
                    assert_eq!(eco.operators[t.operator].name, "SignalSoft", "{}", z.name);
                }
            }
        }
    }
}

#[test]
fn per_zone_io_accounting_conserves_netsim_totals() {
    // Conservation invariant: summing each zone's metered datagram and
    // byte counters must reproduce the network's own global statistics
    // exactly — no query the scanner sends escapes per-zone budget
    // attribution, and nothing is double-counted. (The client-level
    // version of this lives in dns-resolver; this is the whole-scan
    // closure over resolution, DNSKEY/CDS probing and signal probing.)
    let eco = build(dns_ecosystem::EcosystemConfig::tiny(11));
    let scanner = scanner_with(&eco, ScanPolicy::default());
    let seeds = eco.seeds.compile(&eco.psl);
    let results = scanner.scan_all(&seeds);

    let snap = eco.net.stats().snapshot();
    let datagrams: u64 = results
        .zones
        .iter()
        .map(|z| z.retry_stats.datagrams as u64)
        .sum();
    let bytes_sent: u64 = results.zones.iter().map(|z| z.retry_stats.bytes_sent).sum();
    let bytes_received: u64 = results
        .zones
        .iter()
        .map(|z| z.retry_stats.bytes_received)
        .sum();
    assert!(datagrams > 0);
    assert_eq!(datagrams, snap.queries, "datagrams vs netsim queries");
    assert_eq!(bytes_sent, snap.bytes_sent, "bytes sent");
    assert_eq!(bytes_received, snap.bytes_received, "bytes received");
}
