//! Cache TTL/validity regression suite (DESIGN.md §10).
//!
//! Every shared cache entry carries a virtual-time expiry. An expired
//! entry is *never consulted* — a lookup that finds one evicts it and
//! re-fetches from the network — so carrying a cache across longitudinal
//! epochs can change when datagrams are sent, never what the classifier
//! concludes. These tests plant garbage entries that are already expired
//! (with *valid* provenance, so only the expiry stamp protects the scan)
//! and prove the scan output stays byte-identical to a cold scan.

use bootscan::operator::OperatorTable;
use bootscan::{ReferralData, ScanPolicy, Scanner};
use dns_ecosystem::{build, DnssecState, Ecosystem, EcosystemConfig};
use dns_wire::name::Name;
use dns_wire::rdata::DnskeyData;
use netsim::Addr;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn scanner_for(eco: &Ecosystem) -> Arc<Scanner> {
    let table = OperatorTable::from_operators(
        eco.operators
            .iter()
            .map(|o| (o.name.as_str(), o.hosts.as_slice())),
    );
    Arc::new(Scanner::new(
        Arc::clone(&eco.net),
        eco.roots.clone(),
        eco.anchors.clone(),
        table,
        eco.now,
        ScanPolicy::default(),
    ))
}

fn secured_zone(eco: &Ecosystem) -> Name {
    eco.truth
        .iter()
        .find(|t| t.dnssec == DnssecState::Secured && !t.legacy_ns && !t.in_domain_ns)
        .map(|t| t.name.clone())
        .expect("tiny world plants secured zones")
}

fn garbage_keys() -> Vec<DnskeyData> {
    vec![DnskeyData {
        flags: 257,
        protocol: 3,
        algorithm: 13,
        public_key: vec![0xab; 64],
    }]
}

#[test]
fn expired_key_cache_entries_are_never_consulted() {
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    // Garbage keys with *correct* provenance but expiry at virtual time
    // zero: every consult happens at clock >= 0, so only the validity
    // stamp stands between these keys and the validation chain.
    let scanner = scanner_for(&eco);
    for owner in [
        Name::root(),
        Name::parse("com").unwrap(),
        zone.parent().unwrap(),
        zone.clone(),
    ] {
        scanner.seed_validated_keys_until(owner, garbage_keys(), 0);
    }

    let rescanned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_eq!(
        baseline,
        serde_json::to_string(&rescanned.zones[0]).unwrap(),
        "{zone}: an expired key-cache entry was consulted"
    );
    assert!(
        !rescanned.zones[0].degraded,
        "{zone}: scan across expired cache entries must stay clean"
    );
}

#[test]
fn unexpired_seeded_keys_are_consulted() {
    // The control for the test above: the same garbage keys with a
    // far-future expiry *are* consulted (and wreck validation), proving
    // the expired variant was rejected by its stamp, not by accident.
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    let scanner = scanner_for(&eco);
    scanner.seed_validated_keys_until(Name::root(), garbage_keys(), netsim::SimMicros::MAX);
    let rescanned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_ne!(
        baseline,
        serde_json::to_string(&rescanned.zones[0]).unwrap(),
        "{zone}: a live seeded key set should have altered the outcome"
    );
}

#[test]
fn expired_address_cache_entries_are_refetched() {
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);
    let truth = eco.truth_of(&zone).unwrap();
    let op = &eco.operators[truth.operator];

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    // Black-hole addresses for every NS hostname of the zone's operator,
    // correct provenance, expired stamp. If any is consulted the zone's
    // servers all fail and the scan degrades.
    let scanner = scanner_for(&eco);
    let sinkhole = vec![Addr::V4(Ipv4Addr::new(192, 0, 2, 77))];
    for host in &op.hosts {
        scanner
            .resolver()
            .seed_address_until(host.clone(), sinkhole.clone(), 0);
    }

    let rescanned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_eq!(
        baseline,
        serde_json::to_string(&rescanned.zones[0]).unwrap(),
        "{zone}: an expired address-cache entry was consulted"
    );
    assert!(!rescanned.zones[0].degraded);
}

#[test]
fn expired_referral_entries_are_rewalked() {
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    // An expired referral entry for the zone's own cut pointing at a
    // black hole: consulted, it would strand the walk; expired, the walk
    // must ignore it, re-descend from the root, and overwrite it.
    let scanner = scanner_for(&eco);
    let bogus = ReferralData {
        parent_apex: zone.parent().unwrap(),
        ns_names: vec![Name::parse("ns.nowhere.invalid").unwrap()],
        ds: None,
        ds_rrsigs: Vec::new(),
        child_servers: vec![Addr::V4(Ipv4Addr::new(192, 0, 2, 78))],
        parent_servers: vec![Addr::V4(Ipv4Addr::new(192, 0, 2, 79))],
    };
    scanner
        .resolver()
        .seed_referral_until(zone.clone(), bogus, 0);

    let rescanned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_eq!(
        baseline,
        serde_json::to_string(&rescanned.zones[0]).unwrap(),
        "{zone}: an expired delegation-cache entry was consulted"
    );
    assert!(!rescanned.zones[0].degraded);
}
