//! Cache-poisoning regression suite (DESIGN.md §6c).
//!
//! All three shared caches in the scanner stack are provenance-tagged:
//! the scanner's DNSKEY cache, the resolver's NS-address cache, and the
//! resolver's delegation cache. An entry may only be consulted for
//! owners *inside* its provenance (for referral data: cuts strictly
//! below it). These tests plant poisoned entries directly through the
//! test hooks and prove they are dead weight: lookups ignore them,
//! evidence is re-fetched from the network, and classifications match an
//! unpoisoned scan bit for bit.

use bootscan::operator::OperatorTable;
use bootscan::{ReferralData, ScanPolicy, Scanner};
use dns_ecosystem::{build, DnssecState, Ecosystem, EcosystemConfig};
use dns_wire::name::Name;
use dns_wire::rdata::DnskeyData;
use netsim::Addr;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn scanner_for(eco: &Ecosystem) -> Arc<Scanner> {
    let table = OperatorTable::from_operators(
        eco.operators
            .iter()
            .map(|o| (o.name.as_str(), o.hosts.as_slice())),
    );
    Arc::new(Scanner::new(
        Arc::clone(&eco.net),
        eco.roots.clone(),
        eco.anchors.clone(),
        table,
        eco.now,
        ScanPolicy::default(),
    ))
}

/// A secured, non-legacy zone from the tiny world (the class whose
/// classification depends on chain validation, i.e. on trusted keys).
fn secured_zone(eco: &Ecosystem) -> Name {
    eco.truth
        .iter()
        .find(|t| t.dnssec == DnssecState::Secured && !t.legacy_ns && !t.in_domain_ns)
        .map(|t| t.name.clone())
        .expect("tiny world plants secured zones")
}

fn garbage_keys() -> Vec<DnskeyData> {
    vec![DnskeyData {
        flags: 257,
        protocol: 3,
        algorithm: 13,
        public_key: vec![0xde; 64],
    }]
}

#[test]
fn poisoned_key_cache_entries_are_never_consulted() {
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    // Attacker-grade inserts: garbage key sets for the validation chain's
    // ancestors, tagged with a provenance that does not contain them.
    let scanner = scanner_for(&eco);
    let foreign = Name::parse("zzadv").unwrap();
    scanner.poison_key_cache(Name::root(), garbage_keys(), foreign.clone());
    scanner.poison_key_cache(Name::parse("com").unwrap(), garbage_keys(), foreign.clone());
    scanner.poison_key_cache(zone.parent().unwrap(), garbage_keys(), foreign.clone());
    scanner.poison_key_cache(zone.clone(), garbage_keys(), foreign);

    let poisoned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_eq!(
        baseline,
        serde_json::to_string(&poisoned.zones[0]).unwrap(),
        "{zone}: poisoned key-cache entries changed the scan outcome"
    );
    assert!(
        !poisoned.zones[0].degraded,
        "{zone}: scan through a poisoned cache must stay clean, not degraded"
    );
}

#[test]
fn poisoned_address_cache_entries_are_never_consulted() {
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);
    let truth = eco.truth_of(&zone).unwrap();
    let op = &eco.operators[truth.operator];

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    // Redirect every NS hostname of the zone's operator to an attacker
    // address — but with a provenance that does not contain the hostname.
    let attacker = Addr::V4(Ipv4Addr::new(10, 200, 0, 77));
    let scanner = scanner_for(&eco);
    for host in &op.hosts {
        scanner.resolver().seed_address_with_provenance(
            host.clone(),
            vec![attacker],
            Name::parse("zzadv").unwrap(),
        );
    }

    let poisoned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_eq!(
        baseline,
        serde_json::to_string(&poisoned.zones[0]).unwrap(),
        "{zone}: poisoned address-cache entries changed the scan outcome"
    );
    // The attacker address must never have seen a single datagram.
    let snap = eco.net.stats().snapshot();
    assert_eq!(
        snap.per_dest.get(&attacker).copied().unwrap_or(0),
        0,
        "{zone}: scanner sent traffic to a poisoned (out-of-provenance) address"
    );
}

#[test]
fn poisoned_delegation_cache_entries_are_never_consulted() {
    let eco = build(EcosystemConfig::tiny(7));
    let zone = secured_zone(&eco);

    let clean = scanner_for(&eco).scan_all(std::slice::from_ref(&zone));
    let baseline = serde_json::to_string(&clean.zones[0]).unwrap();

    // Plant referral data redirecting the zone's cut — and its TLD's cut
    // — to an attacker server, tagged with an out-of-bailiwick
    // provenance. The delegation cache only serves a cut that is a
    // strict subdomain of the entry's provenance, so these must be dead
    // weight: the walk falls back to the root and re-derives the chain
    // from the network.
    let attacker = Addr::V4(Ipv4Addr::new(10, 200, 0, 88));
    let scanner = scanner_for(&eco);
    let foreign = Name::parse("zzadv").unwrap();
    for cut in [zone.clone(), zone.parent().unwrap()] {
        let parent = cut.parent().unwrap_or_else(Name::root);
        scanner.resolver().seed_referral_with_provenance(
            cut.clone(),
            ReferralData {
                parent_apex: parent,
                ns_names: vec![Name::parse("ns.zzadv").unwrap()],
                ds: None,
                ds_rrsigs: vec![],
                child_servers: vec![attacker],
                parent_servers: vec![attacker],
            },
            foreign.clone(),
        );
    }

    let poisoned = scanner.scan_all(std::slice::from_ref(&zone));
    assert_eq!(
        baseline,
        serde_json::to_string(&poisoned.zones[0]).unwrap(),
        "{zone}: poisoned delegation-cache entries changed the scan outcome"
    );
    assert!(
        !poisoned.zones[0].degraded,
        "{zone}: scan through a poisoned delegation cache must stay clean"
    );
    // The attacker server must never have seen a single datagram.
    let snap = eco.net.stats().snapshot();
    assert_eq!(
        snap.per_dest.get(&attacker).copied().unwrap_or(0),
        0,
        "{zone}: scanner followed a poisoned (out-of-provenance) referral"
    );
}
