//! The admission controller: explicit backpressure for the epoch
//! pipeline.
//!
//! Epochs arrive on a fixed virtual-time schedule (`arrival = epoch ×
//! spacing`) that may outpace draining: a registry-scale epoch can take
//! longer than one spacing to scan. When the next observation arrives
//! while earlier ones still drain, the controller either **pipelines**
//! it — admits it with a late start, queued behind the draining epoch —
//! or **coalesces** it into an explicit [`SkippedEpoch`] marker in the
//! time series. It never silently drops a scheduled observation.
//!
//! [`admit`] is deliberately a *pure function* of `(drain clock,
//! arrival, config)`. The drain clock itself is a fold over committed
//! epochs' virtual makespans, which are journal-recoverable — so the
//! whole decision stream is recomputable on crash resume and invariant
//! across worker counts (the makespan is a max over *shards*, and the
//! shard count, not the fleet size, fixes the partition). The proptests
//! in this module pin all three properties.
//!
//! [`SkippedEpoch`]: scan_epochs::SkippedEpoch

use netsim::SimMicros;

/// Backpressure knobs, a strict subset of the continuous config (the
/// controller must not see anything scheduling-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Virtual time between scheduled epoch arrivals.
    pub epoch_spacing: SimMicros,
    /// How many spacings the pipeline may run behind before arrivals
    /// coalesce. Depth 0 means any lag of a full spacing coalesces;
    /// depth `u32::MAX` effectively never coalesces.
    pub max_pipeline_depth: u32,
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admit the epoch, starting at `start` (its arrival time, or later
    /// if it queued behind a draining epoch — `start > arrival` is what
    /// "pipelined" means). `behind` is the backlog depth in spacings at
    /// arrival.
    Pipeline { start: SimMicros, behind: u32 },
    /// Coalesce the epoch: it is never scanned; its churn is absorbed
    /// by the next admitted epoch's delta set and the time series gets
    /// an explicit `SkippedEpoch` marker.
    Coalesce { behind: u32 },
}

/// Decide one epoch's admission. `clock` is the pipeline's drain clock
/// — the virtual instant the previously admitted work finishes —
/// and `arrival` the epoch's scheduled observation time. Pure: equal
/// inputs give equal decisions, with no hidden state.
pub fn admit(clock: SimMicros, arrival: SimMicros, cfg: &AdmissionConfig) -> Admission {
    let spacing = cfg.epoch_spacing.max(1);
    let lag = clock.saturating_sub(arrival);
    let behind = u32::try_from(lag / spacing).unwrap_or(u32::MAX);
    if behind > cfg.max_pipeline_depth {
        Admission::Coalesce { behind }
    } else {
        Admission::Pipeline {
            start: clock.max(arrival),
            behind,
        }
    }
}

/// One epoch's decision as recorded by the study loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    pub epoch: u32,
    pub arrival: SimMicros,
    pub admission: Admission,
}

/// Canonical one-line-per-epoch rendering of a decision stream. Byte
/// equality of two renderings means the two runs admitted, pipelined
/// and coalesced identically — the cross-worker-count invariant the
/// equivalence suite compares.
pub fn render_decisions(decisions: &[Decision]) -> String {
    let mut out = String::new();
    for d in decisions {
        match d.admission {
            Admission::Pipeline { start, behind } => out.push_str(&format!(
                "epoch {} arrival={} admitted start={} behind={}{}\n",
                d.epoch,
                d.arrival,
                start,
                behind,
                if start > d.arrival {
                    " (pipelined)"
                } else {
                    ""
                },
            )),
            Admission::Coalesce { behind } => out.push_str(&format!(
                "epoch {} arrival={} COALESCED behind={}\n",
                d.epoch, d.arrival, behind,
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(spacing: SimMicros, depth: u32) -> AdmissionConfig {
        AdmissionConfig {
            epoch_spacing: spacing,
            max_pipeline_depth: depth,
        }
    }

    #[test]
    fn on_time_arrivals_start_at_arrival() {
        let c = cfg(100, 1);
        assert_eq!(
            admit(0, 0, &c),
            Admission::Pipeline {
                start: 0,
                behind: 0
            }
        );
        // Drained early: the pipeline idles until the arrival.
        assert_eq!(
            admit(40, 100, &c),
            Admission::Pipeline {
                start: 100,
                behind: 0
            }
        );
    }

    #[test]
    fn late_drain_pipelines_within_depth_and_coalesces_beyond() {
        let c = cfg(100, 1);
        // One spacing behind: pipelined with a late start.
        assert_eq!(
            admit(250, 100, &c),
            Admission::Pipeline {
                start: 250,
                behind: 1
            }
        );
        // Two spacings behind exceeds depth 1: coalesced.
        assert_eq!(admit(320, 100, &c), Admission::Coalesce { behind: 2 });
    }

    #[test]
    fn depth_zero_coalesces_any_full_spacing_of_lag() {
        let c = cfg(100, 0);
        assert_eq!(
            admit(99, 0, &c),
            Admission::Pipeline {
                start: 99,
                behind: 0
            }
        );
        assert_eq!(admit(100, 0, &c), Admission::Coalesce { behind: 1 });
    }

    #[test]
    fn zero_spacing_never_divides_by_zero() {
        let c = cfg(0, 1);
        // spacing clamps to 1; decision still total.
        assert_eq!(admit(5, 3, &c), Admission::Coalesce { behind: 2 });
    }
}
