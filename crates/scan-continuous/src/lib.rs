//! # scan-continuous — fabric-distributed continuous longitudinal scanning
//!
//! The longitudinal service (`scan-epochs`) scans one epoch at a time,
//! sequentially, and assumes every epoch drains before the next one is
//! due. A registry-scale deployment study has neither luxury: each
//! epoch's delta set wants the whole worker fleet, and observations
//! arrive on a fixed schedule that does not wait for the scanner. This
//! crate composes the two distributed tiers into a *reconcile-loop
//! study service*:
//!
//! 1. **Fabric-distributed epochs.** Each epoch's delta set is sharded
//!    with the same fnv64 [`ShardPlan`] the one-shot fabric uses and
//!    driven across a **persistent** worker fleet
//!    ([`with_fleet`](scan_fabric::with_fleet)) — workers idle between
//!    epochs instead of being torn down.
//! 2. **Distributed carry-over.** The [`CarryLedger`] is partitioned by
//!    each entry's *source zone* shard
//!    ([`CarryLedger::partition`]), so a carried cache travels with the
//!    shard that will re-scan its zone. Carried caches shape cost, never
//!    classification — distribution cannot change any zone's record.
//! 3. **Explicit backpressure.** Epoch arrivals follow virtual time
//!    (`arrival = epoch × spacing`). The [`admission`] controller — a
//!    pure function of (drain clock, arrival, config) — either
//!    *pipelines* a late epoch behind the draining one or *coalesces* it
//!    into an explicit [`SkippedEpoch`] marker whose churn the next
//!    admitted epoch absorbs. A scheduled observation is never silently
//!    dropped.
//! 4. **Crash-resumable pipeline.** Every `(epoch, shard)` journals
//!    under the nested [`Namespace`] (`epoch-NNNN/shard-NNNN`, chained
//!    run ids), so epoch N−1's journal can never satisfy epoch N's
//!    header — lease fencing extends across epoch boundaries by
//!    construction. An epoch enters the time series only after its
//!    `COMMIT` marker (which also records abandoned shards) is renamed
//!    into place; a kill anywhere — mid-shard, between epochs, during
//!    carry-over distribution, or while a coalesce decision is pending —
//!    resumes to a byte-identical [`TimeSeries`]
//!    (`tests/continuous_recovery.rs`), and every committed epoch stays
//!    byte-identical to an independent cold scan of the same churned
//!    world at any worker count (`tests/continuous_equivalence.rs`).

#![forbid(unsafe_code)]

pub mod admission;

pub use admission::{admit, render_decisions, Admission, AdmissionConfig, Decision};

use bootscan::operator::OperatorTable;
use bootscan::scanner::Scanner;
use bootscan::types::ZoneScan;
use bootscan::ScanPolicy;
use dns_ecosystem::{apply_churn, build, ChurnConfig, ChurnLog, ChurnPlan, EcosystemConfig};
use dns_wire::name::Name;
use netsim::SimMicros;
use parking_lot::RwLock;
use scan_epochs::{CarryLedger, EpochReport, SkippedEpoch, TimeSeries};
use scan_fabric::{
    indeterminate_placeholder, with_fleet, FabricConfig, FabricFaultPlan, FabricOps,
    ShardAssignment, ShardPlan, ShardWork, WorkerFault,
};
use scan_journal::{recover, Namespace};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Injected coordinator crash points for the continuous kill matrix.
/// Worker-level faults (kill / stall / checkpoint-torn mid-shard) are
/// injected per epoch through [`ContinuousFaultPlan::epochs`] and
/// survived *live* by the fleet; these three kill the coordinator
/// itself — the study returns [`io::ErrorKind::Interrupted`] and a
/// re-run against the same state root must resume byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContinuousKill {
    /// Die after `epoch` committed, while the *next admitted* epoch's
    /// carry-over is being distributed (ledger partitioned and published
    /// to the fleet, nothing of the new epoch scanned or committed).
    DuringCarryOver { epoch: u32 },
    /// Die after `epoch`'s shards all drained and folded, before its
    /// `COMMIT` marker lands — the classic torn epoch boundary.
    BeforeCommit { epoch: u32 },
    /// Die while `epoch`'s coalesce decision is pending: the admission
    /// controller has decided to skip it, but the explicit marker has
    /// not been recorded. Resume must re-derive the same decision from
    /// the journal-recoverable drain clock and record the marker.
    DuringCoalesce { epoch: u32 },
}

/// Fault injection for one continuous run: per-epoch fabric fault plans
/// (worker-level, survived live) plus at most one coordinator kill.
#[derive(Debug, Clone, Default)]
pub struct ContinuousFaultPlan {
    /// Fabric fault plan per epoch; epochs without an entry run clean.
    pub epochs: BTreeMap<u32, FabricFaultPlan>,
    /// Coordinator kill point, if any.
    pub kill: Option<ContinuousKill>,
}

impl ContinuousFaultPlan {
    pub fn none() -> Self {
        ContinuousFaultPlan::default()
    }

    pub fn with_epoch_faults(mut self, epoch: u32, plan: FabricFaultPlan) -> Self {
        self.epochs.insert(epoch, plan);
        self
    }

    pub fn with_kill(mut self, kill: ContinuousKill) -> Self {
        self.kill = Some(kill);
        self
    }
}

/// Configuration of one continuous study.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Scheduled observations, including the initial full scan
    /// (epoch 0). Churn applies from epoch 1 onward — also to coalesced
    /// epochs: the world does not wait for the scanner.
    pub epochs: u32,
    /// Seed of the churn model (independent of the world seed).
    pub churn_seed: u64,
    pub churn: ChurnConfig,
    /// Study run id: the root of every epoch × shard journal namespace.
    pub run_id: u64,
    /// Virtual time between scheduled epoch arrivals.
    pub epoch_spacing: SimMicros,
    /// Cache-entry validity, matching the resolver's in-scan TTL.
    pub cache_ttl: SimMicros,
    /// Evidence validity: zones whose last fresh scan is older than
    /// this are re-scanned even without churn.
    pub evidence_ttl: SimMicros,
    /// Backpressure bound: how many spacings the pipeline may run
    /// behind before arrivals coalesce (see [`AdmissionConfig`]).
    pub max_pipeline_depth: u32,
    /// Fleet sizing and failure detection. `fabric.shards` fixes the
    /// partition — reports are comparable across worker counts exactly
    /// when the shard count matches.
    pub fabric: FabricConfig,
    /// Test-only fault injection.
    pub faults: ContinuousFaultPlan,
}

impl ContinuousConfig {
    pub fn new(epochs: u32, churn_seed: u64) -> Self {
        ContinuousConfig {
            epochs,
            churn_seed,
            churn: ChurnConfig::default(),
            run_id: 1,
            epoch_spacing: 1_800_000_000,
            cache_ttl: dns_resolver::CACHE_TTL_MICROS,
            evidence_ttl: 86_400_000_000,
            max_pipeline_depth: 1,
            fabric: FabricConfig::default(),
            faults: ContinuousFaultPlan::none(),
        }
    }

    /// The admission controller's view of this config.
    pub fn admission(&self) -> AdmissionConfig {
        AdmissionConfig {
            epoch_spacing: self.epoch_spacing,
            max_pipeline_depth: self.max_pipeline_depth,
        }
    }
}

/// Everything a continuous run produces.
#[derive(Debug)]
pub struct ContinuousOutput {
    /// Committed epochs plus explicit skipped-epoch markers.
    pub series: TimeSeries,
    /// One admission decision per scheduled epoch, in epoch order.
    /// [`render_decisions`] of this stream is byte-identical across
    /// worker counts and across crash resumes.
    pub decisions: Vec<Decision>,
    /// Operational (scheduling-dependent) counters, aggregated across
    /// every driven epoch. Never byte-compared.
    pub ops: FabricOps,
}

/// Marker file whose presence commits an epoch into the time series.
/// Unlike the sequential service's marker it also records the shards
/// the fleet abandoned, so a committed epoch folds back with the same
/// explicit Indeterminate placeholders it reported live.
const COMMIT_FILE: &str = "COMMIT";

fn write_commit(dir: &Path, epoch: u32, abandoned: &BTreeSet<u32>) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut body = format!("epoch {epoch}\n");
    if !abandoned.is_empty() {
        let ids: Vec<String> = abandoned.iter().map(u32::to_string).collect();
        body.push_str(&format!("abandoned {}\n", ids.join(",")));
    }
    let tmp = dir.join("COMMIT.tmp");
    fs::write(&tmp, body)?;
    fs::rename(&tmp, dir.join(COMMIT_FILE))
}

/// Validate the `epoch N` identity line of a COMMIT marker against the
/// epoch whose directory it was read from. A marker that names a
/// different epoch (a mis-placed copy, a torn write, hand-edited state)
/// must be a hard error, never silently treated as "this epoch
/// committed" — committing the wrong epoch would fold stale results
/// into the time series.
fn validate_commit_epoch(text: &str, expected: u32) -> io::Result<()> {
    let declared = text
        .lines()
        .find_map(|line| line.strip_prefix("epoch "))
        .and_then(|n| n.trim().parse::<u32>().ok());
    match declared {
        Some(epoch) if epoch == expected => Ok(()),
        Some(epoch) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("COMMIT marker declares epoch {epoch}, expected epoch {expected}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "corrupt COMMIT marker: missing or unparsable `epoch N` line",
        )),
    }
}

/// `Some(abandoned shards)` if `epoch` committed, `None` otherwise.
/// The marker's declared epoch is validated against the one being
/// resumed ([`validate_commit_epoch`]); a mismatch is a hard error.
fn read_commit(dir: &Path, epoch: u32) -> io::Result<Option<BTreeSet<u32>>> {
    let text = match fs::read_to_string(dir.join(COMMIT_FILE)) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    validate_commit_epoch(&text, epoch)?;
    let mut abandoned = BTreeSet::new();
    for line in text.lines() {
        if let Some(ids) = line.strip_prefix("abandoned ") {
            for id in ids.split(',').filter(|s| !s.is_empty()) {
                abandoned.insert(id.parse::<u32>().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt COMMIT marker: bad shard id {id:?}"),
                    )
                })?);
            }
        }
    }
    Ok(Some(abandoned))
}

fn killed(point: ContinuousKill) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!("injected kill: {point:?}"),
    )
}

/// The current epoch as the fleet sees it: published by the reconcile
/// loop right before `drive`, consulted by every shard assignment.
struct EpochState {
    epoch: u32,
    /// Shard → seed slice (the epoch's delta plan).
    zones: Vec<Arc<Vec<Name>>>,
    /// Shard → carried-ledger partition, seeded into that shard's fresh
    /// scanner. `Arc` so an assignment can clone its shard's partition
    /// out and seed it *after* releasing the state lock — seeding takes
    /// the scanner's internal cache locks, and holding the epoch-state
    /// lock across them would order the two lock classes.
    parts: Vec<Arc<CarryLedger>>,
    /// The epoch's virtual start (its admitted `start`, not its
    /// scheduled arrival), for remaining-validity translation.
    now: SimMicros,
}

/// The continuous [`ShardWork`]: resolves `(epoch, shard)` against the
/// published [`EpochState`]. A request for any *other* epoch resolves to
/// `None` — the worker reports the shard back as fenced without ever
/// opening a journal, which is the cross-epoch fencing guarantee at the
/// assignment layer (the namespace scheme enforces it again at the
/// journal layer).
struct ContinuousWork {
    factory: Box<dyn Fn() -> Arc<Scanner> + Send + Sync>,
    root: PathBuf,
    run_id: u64,
    cache_ttl: SimMicros,
    epoch_spacing: SimMicros,
    faults: ContinuousFaultPlan,
    state: RwLock<Option<EpochState>>,
}

impl ContinuousWork {
    fn publish(&self, state: EpochState) {
        *self.state.write() = Some(state);
    }
}

impl ShardWork for ContinuousWork {
    fn assignment(&self, epoch: u32, shard: u32) -> Option<ShardAssignment> {
        // Clone the shard's slice and ledger partition out of the
        // published state, then release the lock: seeding walks the
        // scanner's striped cache locks, and the factory may do real
        // work — neither belongs under the epoch-state read guard.
        let (zones, part, now) = {
            let guard = self.state.read();
            let st = guard.as_ref()?;
            if st.epoch != epoch {
                return None;
            }
            (
                Arc::clone(st.zones.get(shard as usize)?),
                st.parts.get(shard as usize).map(Arc::clone),
                st.now,
            )
        };
        let ns = Namespace::root(&self.root, self.run_id)
            .epoch(epoch)
            .shard(shard);
        // Fresh scanner per attempt, deterministically pre-seeded with
        // this shard's carried-ledger partition: shard results stay a
        // pure function of (world, zones, carried state).
        let scanner = (self.factory)();
        if let Some(part) = part {
            part.seed_into(&scanner, now, self.cache_ttl, self.epoch_spacing);
        }
        Some(ShardAssignment {
            header: ns.header(&zones),
            dir: ns.dir().to_path_buf(),
            zones,
            scanner,
        })
    }

    fn fault(&self, epoch: u32, shard: u32, attempt: u32) -> Option<WorkerFault> {
        self.faults
            .epochs
            .get(&epoch)
            .and_then(|plan| plan.fault_for(shard, attempt))
    }

    fn worker_dead(&self, worker: u32) -> bool {
        let guard = self.state.read();
        let Some(st) = guard.as_ref() else {
            return false;
        };
        self.faults
            .epochs
            .get(&st.epoch)
            .map(|plan| plan.worker_dead(worker))
            .unwrap_or(false)
    }
}

/// What folding one epoch's shard journals yields.
struct EpochFold {
    /// Every zone record the epoch produced: journaled scans plus
    /// explicit Indeterminate placeholders for abandoned shards' missing
    /// zones, in shard-major order (re-sorted by the caller).
    zones: Vec<ZoneScan>,
    /// Names that got placeholders, canonical order.
    stale: Vec<Name>,
    /// Logical queries spent (cost plane), summed over kept records.
    queries: u64,
    /// The epoch's virtual makespan: max over shards of journaled
    /// duration. Worker-count-invariant (the shard count fixes the
    /// partition) and journal-recoverable — this is what advances the
    /// admission controller's drain clock.
    makespan: SimMicros,
}

/// Fold one epoch back from its shard journals — the *single* code path
/// for both a freshly driven epoch and a committed epoch found on
/// resume, which is what makes the two byte-identical. Ledger
/// absorption runs in shard-major order (shard id, then journal order
/// within the shard): deterministic and independent of which workers
/// scanned what when.
fn fold_epoch(
    ns_epoch: &Namespace,
    zones_per_shard: &[Arc<Vec<Name>>],
    abandoned: &BTreeSet<u32>,
    ledger: &mut CarryLedger,
    epoch: u32,
) -> io::Result<EpochFold> {
    let mut zones = Vec::new();
    let mut stale = Vec::new();
    let mut queries = 0u64;
    let mut makespan: SimMicros = 0;
    for (k, shard_zones) in zones_per_shard.iter().enumerate() {
        let shard = k as u32;
        let ns = ns_epoch.shard(shard);
        let recovery = recover(ns.dir(), ns.header(shard_zones))?;
        for (_, event) in &recovery.events {
            ledger.absorb(epoch, &event.scan.name, &event.effects);
        }
        let resume = recovery.resume_state();
        makespan = makespan.max(resume.duration_so_far);
        queries += resume.zones.iter().map(|z| z.queries as u64).sum::<u64>();
        if abandoned.contains(&shard) {
            // Gaps in an abandoned shard surface as explicit
            // placeholders — mirror of the fabric merge, never silent.
            let mut have: Vec<&Name> = resume.zones.iter().map(|z| &z.name).collect();
            have.sort_by(|a, b| a.canonical_cmp(b));
            for name in shard_zones.iter() {
                if have.binary_search_by(|h| h.canonical_cmp(name)).is_err() {
                    stale.push(name.clone());
                    zones.push(indeterminate_placeholder(name));
                }
            }
        } else if resume.zones.len() != shard_zones.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "epoch {epoch} shard {shard}: journal holds {}/{} zones but the \
                     shard was not abandoned",
                    resume.zones.len(),
                    shard_zones.len()
                ),
            ));
        }
        zones.extend(resume.zones);
    }
    stale.sort_by(|a, b| a.canonical_cmp(b));
    Ok(EpochFold {
        zones,
        stale,
        queries,
        makespan,
    })
}

/// Prior evidence for one zone (same fold as the sequential service).
struct Evidence {
    scan: ZoneScan,
    epoch: u32,
}

/// Run (or resume) a continuous fabric-distributed study.
///
/// Deterministic end to end at the evidence plane: the world is rebuilt
/// from `world`, each epoch's churn is replayed from `(churn seed,
/// epoch)`, the admission decision stream is recomputed from the
/// journal-recoverable drain clock, committed epochs fold back from
/// their shard journals without re-scanning, and the first uncommitted
/// epoch is resumed exactly where it died. Two invocations over the
/// same arguments and state root — interrupted anywhere, any number of
/// times, at any worker count — produce byte-identical
/// [`TimeSeries::canonical_bytes`] and [`render_decisions`] streams.
pub fn run_continuous(
    world: EcosystemConfig,
    policy: ScanPolicy,
    cfg: &ContinuousConfig,
    state_root: &Path,
) -> io::Result<ContinuousOutput> {
    fs::create_dir_all(state_root)?;
    let mut eco = build(world);
    let mut seeds = eco.seeds.compile(&eco.psl);
    seeds.sort_by(|a, b| a.canonical_cmp(b));
    seeds.dedup();

    // The factory captures Arc'd world handles, not `&eco`: churn
    // mutates zone content through the shared stores, so scanners built
    // mid-run see the churned world while the loop keeps `&mut eco`.
    let factory: Box<dyn Fn() -> Arc<Scanner> + Send + Sync> = {
        let net = Arc::clone(&eco.net);
        let roots = eco.roots.clone();
        let anchors = eco.anchors.clone();
        let table = OperatorTable::from_operators(
            eco.operators
                .iter()
                .map(|o| (o.name.as_str(), o.hosts.as_slice())),
        );
        let now = eco.now;
        let policy = policy.clone();
        Box::new(move || {
            Arc::new(Scanner::new(
                Arc::clone(&net),
                roots.clone(),
                anchors.clone(),
                table.clone(),
                now,
                policy.clone(),
            ))
        })
    };

    let shards = cfg.fabric.shards.max(1);
    let work = ContinuousWork {
        factory,
        root: state_root.to_path_buf(),
        run_id: cfg.run_id,
        cache_ttl: cfg.cache_ttl,
        epoch_spacing: cfg.epoch_spacing,
        faults: cfg.faults.clone(),
        state: RwLock::new(None),
    };

    let admission_cfg = cfg.admission();
    let mut ops = FabricOps {
        workers_spawned: cfg.fabric.workers.max(1) as u32,
        attempts: vec![0; shards as usize],
        ..FabricOps::default()
    };
    let mut evidence: BTreeMap<Name, Evidence> = BTreeMap::new();
    let mut ledger = CarryLedger::new();
    let mut series = TimeSeries::default();
    let mut decisions: Vec<Decision> = Vec::new();
    // Churned zones from coalesced epochs, awaiting the next admitted
    // epoch's delta set.
    let mut pending_churned: Vec<Name> = Vec::new();
    let mut drain: SimMicros = 0;
    let mut last_committed: Option<u32> = None;

    with_fleet(&work, cfg.run_id, &cfg.fabric, |fleet| {
        for epoch in 0..cfg.epochs {
            let arrival = (epoch as SimMicros).saturating_mul(cfg.epoch_spacing);

            // -- Churn: the world mutates on schedule, admitted or not.
            let churn: ChurnLog = if epoch == 0 {
                ChurnLog::default()
            } else {
                let plan = ChurnPlan::generate(&eco, &cfg.churn, cfg.churn_seed, epoch);
                apply_churn(&mut eco, &plan)
            };
            let churned: Vec<Name> = churn
                .churned_zones()
                .into_iter()
                .filter(|z| seeds.binary_search_by(|s| s.canonical_cmp(z)).is_ok())
                .collect();
            // Carried caches hit by this window's churn are dead either
            // way — a coalesced epoch's churn still invalidates.
            ledger.invalidate(&churn.invalidated_cuts);

            // -- Admission: pipeline or coalesce, never silently drop.
            let decision = admit(drain, arrival, &admission_cfg);
            decisions.push(Decision {
                epoch,
                arrival,
                admission: decision,
            });
            let start = match decision {
                Admission::Coalesce { behind } => {
                    if cfg.faults.kill == Some(ContinuousKill::DuringCoalesce { epoch }) {
                        return Err(killed(ContinuousKill::DuringCoalesce { epoch }));
                    }
                    pending_churned.extend(churned.iter().cloned());
                    series.skipped.push(SkippedEpoch {
                        epoch,
                        arrival,
                        behind,
                        churned,
                    });
                    continue;
                }
                Admission::Pipeline { start, .. } => start,
            };
            let now = start;
            ledger.prune_expired(now, cfg.cache_ttl, cfg.epoch_spacing);

            // -- Delta set: churned (this window + absorbed coalesced
            //    windows), expired, weak, and never-scanned zones.
            let mut delta: Vec<Name> = if epoch == 0 {
                seeds.clone()
            } else {
                let mut d = churned.clone();
                d.append(&mut pending_churned);
                for (name, ev) in &evidence {
                    let age = now.saturating_sub((ev.epoch as SimMicros) * cfg.epoch_spacing);
                    let expired = age >= cfg.evidence_ttl;
                    let weak =
                        ev.scan.degraded || ev.scan.dnssec == bootscan::DnssecClass::Indeterminate;
                    if expired || weak {
                        d.push(name.clone());
                    }
                }
                for s in &seeds {
                    if !evidence.contains_key(s) {
                        d.push(s.clone());
                    }
                }
                d
            };
            pending_churned.clear();
            delta.sort_by(|a, b| a.canonical_cmp(b));
            delta.dedup();

            let plan = ShardPlan::new(&delta, shards);
            ops.largest_shard = ops.largest_shard.max(plan.largest_shard());
            let zones_per_shard: Vec<Arc<Vec<Name>>> = (0..shards)
                .map(|k| Arc::new(plan.zones(k).to_vec()))
                .collect();
            let ns_epoch = Namespace::root(state_root, cfg.run_id).epoch(epoch);

            // -- Drive or fold: committed epochs never re-scan.
            let (abandoned, committed) = match read_commit(ns_epoch.dir(), epoch)? {
                Some(abandoned) => (abandoned, true),
                None => {
                    // Distribute carry-over: partition the ledger and
                    // publish the epoch to the fleet. From this point a
                    // worker can resolve (epoch, shard) — and only this
                    // epoch.
                    let parts = ledger.partition(shards).into_iter().map(Arc::new).collect();
                    work.publish(EpochState {
                        epoch,
                        zones: zones_per_shard.clone(),
                        parts,
                        now,
                    });
                    if let Some(ContinuousKill::DuringCarryOver { epoch: at }) = cfg.faults.kill {
                        if last_committed == Some(at) {
                            return Err(killed(ContinuousKill::DuringCarryOver { epoch: at }));
                        }
                    }
                    (fleet.drive(epoch, shards, &mut ops), false)
                }
            };

            let fold = fold_epoch(&ns_epoch, &zones_per_shard, &abandoned, &mut ledger, epoch)?;
            if !committed {
                if cfg.faults.kill == Some(ContinuousKill::BeforeCommit { epoch }) {
                    return Err(killed(ContinuousKill::BeforeCommit { epoch }));
                }
                write_commit(ns_epoch.dir(), epoch, &abandoned)?;
            }
            last_committed = Some(epoch);
            drain = now.saturating_add(fold.makespan);

            // -- Fold evidence: fresh results (and explicit
            //    placeholders) overwrite; everyone else carries forward.
            let stale = fold.stale;
            for z in fold.zones {
                evidence.insert(z.name.clone(), Evidence { scan: z, epoch });
            }
            let mut table: Vec<ZoneScan> = evidence.values().map(|e| e.scan.clone()).collect();
            table.sort_by(|a, b| a.name.canonical_cmp(&b.name));
            ops.peak_resident_zones = ops.peak_resident_zones.max(table.len());
            let fresh: Vec<Name> = delta
                .iter()
                .filter(|n| stale.binary_search_by(|s| s.canonical_cmp(n)).is_err())
                .cloned()
                .collect();
            series.epochs.push(EpochReport {
                epoch,
                zones: table,
                fresh,
                stale,
                churned,
                queries: fold.queries,
                simulated_duration: fold.makespan,
            });
        }
        Ok(())
    })?;

    Ok(ContinuousOutput {
        series,
        decisions,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_marker_roundtrips_abandoned_shards() {
        let dir = std::env::temp_dir().join(format!(
            "scan-continuous-commit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(read_commit(&dir, 3).unwrap(), None, "no marker yet");
        write_commit(&dir, 3, &BTreeSet::new()).unwrap();
        assert_eq!(read_commit(&dir, 3).unwrap(), Some(BTreeSet::new()));
        let abandoned: BTreeSet<u32> = [1, 4, 7].into_iter().collect();
        write_commit(&dir, 3, &abandoned).unwrap();
        assert_eq!(read_commit(&dir, 3).unwrap(), Some(abandoned));
        // A marker that declares a different epoch (mis-placed copy,
        // hand-edited state) is a hard error, not a commit.
        assert!(read_commit(&dir, 4).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_commit_marker_is_a_hard_error() {
        let dir = std::env::temp_dir().join(format!(
            "scan-continuous-badcommit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(COMMIT_FILE), "epoch 3\nabandoned 1,x\n").unwrap();
        assert!(read_commit(&dir, 3).is_err());
        // Missing identity line entirely: also a hard error.
        fs::write(dir.join(COMMIT_FILE), "abandoned 1\n").unwrap();
        assert!(read_commit(&dir, 3).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
