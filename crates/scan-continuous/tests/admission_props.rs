//! Property tests for the admission controller (satellite of the
//! continuous PR): [`admit`] must be a **pure, total function** of
//! `(drain clock, arrival, config)` — no hidden state, no panics on any
//! input — with the coalesce/pipeline boundary exactly where the config
//! says it is. The integration side (coalesced epochs always surface as
//! explicit `SkippedEpoch` markers carrying the churn they absorbed;
//! decision streams byte-identical across worker counts) is pinned by
//! `tests/continuous_equivalence.rs` at the workspace root; these
//! properties pin the controller itself over the whole input space.

use proptest::prelude::*;
use scan_continuous::{admit, render_decisions, Admission, AdmissionConfig, Decision};

fn cfg(spacing: u64, depth: u32) -> AdmissionConfig {
    AdmissionConfig {
        epoch_spacing: spacing,
        max_pipeline_depth: depth,
    }
}

proptest! {
    /// Purity and totality: equal inputs give equal decisions, for any
    /// clock/arrival/config — including spacing 0 (clamped to 1) and
    /// clocks astronomically past the arrival (behind saturates).
    #[test]
    fn admit_is_pure_and_total(clock in any::<u64>(),
                               arrival in any::<u64>(),
                               spacing in any::<u64>(),
                               depth in any::<u32>()) {
        let c = cfg(spacing, depth);
        prop_assert_eq!(admit(clock, arrival, &c), admit(clock, arrival, &c));
    }

    /// The decision boundary is exactly the config's: the backlog depth
    /// is `(clock − arrival) / max(spacing, 1)` (saturating), and the
    /// epoch coalesces iff that exceeds `max_pipeline_depth`. Admitted
    /// epochs start at `max(clock, arrival)` — never before either.
    #[test]
    fn decision_boundary_matches_config(clock in any::<u64>(),
                                        arrival in any::<u64>(),
                                        spacing in any::<u64>(),
                                        depth in any::<u32>()) {
        let c = cfg(spacing, depth);
        let lag = clock.saturating_sub(arrival);
        let want_behind = u32::try_from(lag / spacing.max(1)).unwrap_or(u32::MAX);
        match admit(clock, arrival, &c) {
            Admission::Pipeline { start, behind } => {
                prop_assert!(behind <= depth, "admitted past the depth limit");
                prop_assert_eq!(behind, want_behind);
                prop_assert_eq!(start, clock.max(arrival));
            }
            Admission::Coalesce { behind } => {
                prop_assert!(behind > depth, "coalesced within the depth limit");
                prop_assert_eq!(behind, want_behind);
            }
        }
    }

    /// An on-time arrival (clock ≤ arrival) is always admitted with no
    /// backlog, starting exactly at its scheduled time: backpressure
    /// can only ever defer or coalesce, never reorder or hurry.
    #[test]
    fn on_time_arrivals_always_admit_on_time(arrival in any::<u64>(),
                                             early in any::<u64>(),
                                             spacing in any::<u64>(),
                                             depth in any::<u32>()) {
        let clock = arrival.saturating_sub(early);
        match admit(clock, arrival, &cfg(spacing, depth)) {
            Admission::Pipeline { start, behind } => {
                prop_assert_eq!(start, arrival);
                prop_assert_eq!(behind, 0);
            }
            Admission::Coalesce { .. } => prop_assert!(false, "on-time arrival coalesced"),
        }
    }

    /// Monotonicity in the drain clock: with arrival and config fixed,
    /// a later clock never *un*-coalesces an epoch, and an admitted
    /// start never moves earlier. (This is what makes the drain-clock
    /// fold safe to recompute on resume: journal-folded makespans can
    /// only reproduce the clock, and the decision is monotone in it.)
    #[test]
    fn later_clocks_never_soften_the_decision(clock in any::<u64>(),
                                              bump in any::<u64>(),
                                              arrival in any::<u64>(),
                                              spacing in any::<u64>(),
                                              depth in any::<u32>()) {
        let c = cfg(spacing, depth);
        let before = admit(clock, arrival, &c);
        let after = admit(clock.saturating_add(bump), arrival, &c);
        match (before, after) {
            (Admission::Coalesce { .. }, Admission::Pipeline { .. }) => {
                prop_assert!(false, "a later clock un-coalesced the epoch");
            }
            (Admission::Pipeline { start: s0, .. }, Admission::Pipeline { start: s1, .. }) => {
                prop_assert!(s1 >= s0, "a later clock moved the start earlier");
            }
            _ => {}
        }
    }

    /// Depth `u32::MAX` never coalesces (behind saturates at the same
    /// bound), and depth 0 coalesces exactly when a full spacing of lag
    /// has accumulated.
    #[test]
    fn depth_extremes(clock in any::<u64>(), arrival in any::<u64>(),
                      spacing in 1u64..1_000_000) {
        match admit(clock, arrival, &cfg(spacing, u32::MAX)) {
            Admission::Pipeline { .. } => {}
            Admission::Coalesce { .. } => prop_assert!(false, "depth MAX coalesced"),
        }
        let lagged = clock.saturating_sub(arrival) >= spacing;
        match admit(clock, arrival, &cfg(spacing, 0)) {
            Admission::Coalesce { .. } => prop_assert!(lagged),
            Admission::Pipeline { .. } => prop_assert!(!lagged),
        }
    }

    /// The canonical rendering is injective over the decision stream:
    /// byte-equal renderings imply equal decisions (each line carries
    /// every field, one line per decision), so comparing renderings in
    /// the equivalence and recovery suites compares the decisions
    /// themselves.
    #[test]
    fn rendering_is_injective(a in arb_decisions(), b in arb_decisions()) {
        if render_decisions(&a) == render_decisions(&b) {
            prop_assert_eq!(a, b);
        }
    }
}

fn arb_admission() -> impl Strategy<Value = Admission> {
    prop_oneof![
        (any::<u64>(), any::<u32>())
            .prop_map(|(start, behind)| Admission::Pipeline { start, behind }),
        any::<u32>().prop_map(|behind| Admission::Coalesce { behind }),
    ]
}

fn arb_decisions() -> impl Strategy<Value = Vec<Decision>> {
    proptest::collection::vec(
        (any::<u32>(), any::<u64>(), arb_admission()).prop_map(|(epoch, arrival, admission)| {
            Decision {
                epoch,
                arrival,
                admission,
            }
        }),
        0..6,
    )
}
