//! Property-based tests over the wire format: round-trip invariants for
//! names, messages, type bitmaps and canonical ordering.

use dns_wire::message::{Message, Rcode};
use dns_wire::name::Name;
use dns_wire::rdata::{DnskeyData, DsData, RData, RrsigData, SoaData};
use dns_wire::record::{Record, RecordType};
use dns_wire::typebitmap::TypeBitmap;
use dns_wire::{WireReader, WireWriter};
use proptest::prelude::*;

/// Strategy: a valid DNS label (1..=15 bytes, arbitrary octets).
fn label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=15)
}

/// Strategy: a valid name of 0..=5 labels.
fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label(), 0..=5)
        .prop_map(|labels| Name::from_labels(labels).expect("short labels fit"))
}

/// Strategy: assorted RDATA values.
fn rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        name().prop_map(RData::Ns),
        name().prop_map(RData::Cname),
        (any::<u16>(), name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..=30), 0..=3)
            .prop_map(RData::Txt),
        (
            name(),
            name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (
            any::<u16>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..=64)
        )
            .prop_map(|(flags, algorithm, public_key)| RData::Dnskey(DnskeyData {
                flags,
                protocol: 3,
                algorithm,
                public_key,
            })),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..=48)
        )
            .prop_map(
                |(key_tag, algorithm, digest_type, digest)| RData::Cds(DsData {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                })
            ),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u32>(),
            name(),
            proptest::collection::vec(any::<u8>(), 0..=64)
        )
            .prop_map(|(type_covered, algorithm, times, signer_name, signature)| {
                RData::Rrsig(RrsigData {
                    type_covered,
                    algorithm,
                    labels: 2,
                    original_ttl: times,
                    expiration: times.wrapping_add(1000),
                    inception: times,
                    key_tag: 7,
                    signer_name,
                    signature,
                })
            }),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..=40)).prop_map(|(rtype, data)| {
            // Avoid colliding with implemented types: offset into
            // unassigned space.
            RData::Unknown {
                rtype: 20_000 + (rtype % 10_000),
                data,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn name_wire_roundtrip(n in name()) {
        let mut w = WireWriter::new();
        w.write_name(&n);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(r.read_name().unwrap(), n);
    }

    #[test]
    fn name_display_roundtrip(n in name()) {
        let again = Name::parse(&n.to_string_fqdn()).unwrap();
        prop_assert_eq!(again, n);
    }

    #[test]
    fn names_compress_no_worse_than_uncompressed(ns in proptest::collection::vec(name(), 1..=6)) {
        let mut w = WireWriter::new();
        for n in &ns {
            w.write_name(n);
        }
        let compressed = w.into_bytes().len();
        let plain: usize = ns.iter().map(|n| n.wire_len()).sum();
        prop_assert!(compressed <= plain);
        // And everything still decodes in order.
        let mut w = WireWriter::new();
        for n in &ns {
            w.write_name(n);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for n in &ns {
            prop_assert_eq!(&r.read_name().unwrap(), n);
        }
    }

    #[test]
    fn canonical_cmp_is_total_order(a in name(), b in name(), c in name()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        // Reflexivity.
        prop_assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        // Transitivity (on the ≤ relation).
        if a.canonical_cmp(&b) != Ordering::Greater && b.canonical_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.canonical_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn subdomain_iff_strip_suffix(a in name(), b in name()) {
        prop_assert_eq!(a.is_subdomain_of(&b), a.strip_suffix(&b).is_some());
    }

    #[test]
    fn record_wire_roundtrip(n in name(), ttl in any::<u32>(), rd in rdata()) {
        let rec = Record::new(n, ttl, rd);
        let mut w = WireWriter::new();
        rec.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Record::read(&mut r).unwrap();
        prop_assert_eq!(back, rec);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn message_wire_roundtrip(
        id in any::<u16>(),
        qname in name(),
        records in proptest::collection::vec((name(), any::<u32>(), rdata()), 0..=6),
        dnssec_ok in any::<bool>(),
    ) {
        let q = Message::query(id, qname, RecordType::Cds, dnssec_ok);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        for (i, (n, ttl, rd)) in records.into_iter().enumerate() {
            let rec = Record::new(n, ttl, rd);
            match i % 3 {
                0 => resp.answers.push(rec),
                1 => resp.authorities.push(rec),
                _ => resp.additionals.push(rec),
            }
        }
        let bytes = resp.to_bytes();
        let back = Message::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..=512)) {
        // Must return Ok or Err, never panic or loop.
        let _ = Message::from_bytes(&bytes);
    }

    #[test]
    fn type_bitmap_roundtrip(codes in proptest::collection::btree_set(any::<u16>(), 0..=40)) {
        let bm = TypeBitmap::from_types(codes.iter().map(|&c| RecordType::from_code(c)));
        let mut out = Vec::new();
        bm.write(&mut out);
        let back = TypeBitmap::read(&out).unwrap();
        prop_assert_eq!(back, bm);
    }

    #[test]
    fn zone_file_roundtrip(
        records in proptest::collection::vec((name(), 1u32..1_000_000, rdata()), 1..=10)
    ) {
        // OPT never appears in zone files; our generator cannot produce
        // it, but Unknown types exercise the \# path.
        let recs: Vec<Record> = records
            .into_iter()
            .map(|(n, ttl, rd)| Record::new(n, ttl, rd))
            .collect();
        let origin = Name::root();
        let text = dns_wire::presentation::to_zone_file(&origin, &recs);
        let back = dns_wire::presentation::parse_zone_file(&text, &origin).unwrap();
        prop_assert_eq!(back, recs);
    }
}
