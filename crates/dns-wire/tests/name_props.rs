//! Property-based tests for [`Name`] ancestry and bailiwick helpers.
//!
//! The hardened resolver's acceptance rules (DESIGN.md §6c) are built
//! on exactly three primitives — `is_subdomain_of`,
//! `is_strict_subdomain_of` and `parent` — so their algebra is
//! load-bearing for every bailiwick decision: a hole here is a cache
//! poisoning hole.

use dns_wire::name::Name;
use proptest::prelude::*;

/// Strategy: a valid DNS label (1..=15 arbitrary octets).
fn label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=15)
}

/// Strategy: a valid name of 0..=5 labels.
fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label(), 0..=5)
        .prop_map(|labels| Name::from_labels(labels).expect("short labels fit"))
}

/// The label-suffix definition of ancestry, independent of the
/// implementation under test.
fn is_suffix(anc: &Name, n: &Name) -> bool {
    let a: Vec<&[u8]> = anc.labels().collect();
    let b: Vec<&[u8]> = n.labels().collect();
    a.len() <= b.len() && a[..] == b[b.len() - a.len()..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn subdomain_matches_label_suffix_definition(a in name(), b in name()) {
        prop_assert_eq!(a.is_subdomain_of(&b), is_suffix(&b, &a));
    }

    #[test]
    fn subdomain_is_reflexive_strict_is_not(n in name()) {
        prop_assert!(n.is_subdomain_of(&n));
        prop_assert!(!n.is_strict_subdomain_of(&n));
    }

    #[test]
    fn strict_subdomain_iff_subdomain_and_unequal(a in name(), b in name()) {
        prop_assert_eq!(
            a.is_strict_subdomain_of(&b),
            a.is_subdomain_of(&b) && a != b
        );
    }

    #[test]
    fn subdomain_is_transitive(a in name(), b in name(), c in name()) {
        if a.is_subdomain_of(&b) && b.is_subdomain_of(&c) {
            prop_assert!(a.is_subdomain_of(&c));
        }
    }

    #[test]
    fn subdomain_is_antisymmetric(a in name(), b in name()) {
        if a.is_subdomain_of(&b) && b.is_subdomain_of(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn everything_is_under_the_root(n in name()) {
        prop_assert!(n.is_subdomain_of(&Name::root()));
        prop_assert_eq!(n.is_strict_subdomain_of(&Name::root()), !n.is_root());
    }

    #[test]
    fn parent_chain_walks_to_root(n in name()) {
        // The ancestor chain has exactly label_count + 1 members (the
        // name itself down to the root), each a strict ancestor of the
        // previous, with label_count decreasing by exactly one.
        let mut seen = 0usize;
        let mut cur = n.clone();
        while let Some(p) = cur.parent() {
            prop_assert!(cur.is_strict_subdomain_of(&p));
            prop_assert!(n.is_subdomain_of(&p));
            prop_assert_eq!(p.label_count() + 1, cur.label_count());
            seen += 1;
            cur = p;
        }
        prop_assert!(cur.is_root());
        prop_assert_eq!(seen, n.label_count());
    }

    #[test]
    fn prepend_label_inverts_parent(n in name(), l in label()) {
        if let Ok(child) = n.prepend_label(&l) {
            prop_assert_eq!(child.parent().unwrap(), n.clone());
            prop_assert!(child.is_strict_subdomain_of(&n));
            prop_assert_eq!(child.label_count(), n.label_count() + 1);
        }
    }

    #[test]
    fn concat_lands_in_the_suffix_bailiwick(a in name(), b in name()) {
        if let Ok(joined) = a.concat(&b) {
            prop_assert!(joined.is_subdomain_of(&b));
            prop_assert_eq!(joined.label_count(), a.label_count() + b.label_count());
            // strip_suffix inverts concat.
            let stripped = joined.strip_suffix(&b).expect("suffix present");
            let again = Name::from_labels(stripped).unwrap().concat(&b).unwrap();
            prop_assert_eq!(again, joined);
        }
    }

    #[test]
    fn ancestors_sort_before_descendants_canonically(a in name(), l in label()) {
        if let Ok(child) = a.prepend_label(&l) {
            prop_assert_eq!(a.canonical_cmp(&child), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn unrelated_siblings_are_never_in_bailiwick(a in name(), l1 in label(), l2 in label()) {
        // Two distinct children of the same parent can never contain one
        // another — the core of the referral-progress check. (Labels are
        // case-folded by `Name`, so compare them case-insensitively.)
        if !l1.eq_ignore_ascii_case(&l2) {
            if let (Ok(c1), Ok(c2)) = (a.prepend_label(&l1), a.prepend_label(&l2)) {
                prop_assert!(!c1.is_subdomain_of(&c2));
                prop_assert!(!c2.is_subdomain_of(&c1));
            }
        }
    }
}
