//! Hostile-bytes hardening: the decoder faces attacker-controlled UDP
//! payloads (the scanner queries millions of third-party nameservers), so
//! no input may panic, allocate unbounded memory, or loop forever. A
//! handcrafted corpus covers the classic attacks (compression-pointer
//! cycles and amplification bombs, lying header counts, lying RDLENGTHs,
//! truncation at every offset); property tests fuzz the rest.

use dns_wire::message::Message;
use dns_wire::name::{Name, NameError};
use dns_wire::record::RecordType;
use dns_wire::wire::{WireError, WireReader};
use proptest::prelude::*;

/// A message header claiming the given section counts, plus `body`.
fn msg(qd: u16, an: u16, ns: u16, ar: u16, body: &[u8]) -> Vec<u8> {
    let mut v = vec![0x12, 0x34, 0x81, 0x80];
    for c in [qd, an, ns, ar] {
        v.extend_from_slice(&c.to_be_bytes());
    }
    v.extend_from_slice(body);
    v
}

/// A resource record with an arbitrary (possibly lying) RDLENGTH.
fn record(name_wire: &[u8], rtype: u16, rdlen: u16, rdata: &[u8]) -> Vec<u8> {
    let mut v = name_wire.to_vec();
    v.extend_from_slice(&rtype.to_be_bytes());
    v.extend_from_slice(&1u16.to_be_bytes()); // class IN
    v.extend_from_slice(&300u32.to_be_bytes());
    v.extend_from_slice(&rdlen.to_be_bytes());
    v.extend_from_slice(rdata);
    v
}

// ---------------------------------------------------------------- corpus

#[test]
fn header_counts_lie_about_empty_body() {
    // 65535 claimed entries in a 12-byte datagram: must error, not
    // preallocate gigabytes or spin.
    for (qd, an, ns, ar) in [
        (0xffff, 0, 0, 0),
        (0, 0xffff, 0, 0),
        (0, 0, 0xffff, 0),
        (0, 0, 0, 0xffff),
        (0xffff, 0xffff, 0xffff, 0xffff),
    ] {
        assert!(Message::from_bytes(&msg(qd, an, ns, ar, b"")).is_err());
    }
}

#[test]
fn pointer_cycles_are_rejected() {
    // Self pointer.
    let mut r = WireReader::new(&[0xc0, 0x00]);
    assert_eq!(r.read_name(), Err(WireError::BadPointer));
    // Two-step cycle: 0 → 2 → 0. The first hop is forward, so it is
    // already rejected; a backward hop landing on a pointer that jumps
    // forward again is equally dead.
    let buf = [0xc0, 0x02, 0xc0, 0x00];
    let mut r = WireReader::new(&buf);
    assert_eq!(r.read_name(), Err(WireError::BadPointer));
    let mut r = WireReader::new(&buf);
    r.seek(2).unwrap();
    assert_eq!(r.read_name(), Err(WireError::BadPointer));
    // In a full message: question name is a self-referencing pointer.
    let mut body = vec![0xc0, 0x0c]; // points at itself (offset 12)
    body.extend_from_slice(&RecordType::A.code().to_be_bytes());
    body.extend_from_slice(&1u16.to_be_bytes());
    assert!(Message::from_bytes(&msg(1, 0, 0, 0, &body)).is_err());
}

#[test]
fn pointer_amplification_bomb_fails_fast() {
    // The classic doubling bomb: name N+1 = one label + pointer to name N.
    // Without an in-flight length cap each decode re-walks every earlier
    // segment (O(bytes × hops) label copies); with the cap the decode
    // dies at 255 accumulated octets.
    let mut buf = vec![0u8; 12]; // pretend header so offsets look real
    let mut prev = buf.len();
    buf.extend_from_slice(&[1, b'a', 0]); // "a."
    for i in 0..200u32 {
        let here = buf.len();
        buf.push(1);
        buf.push(b'a' + (i % 26) as u8);
        buf.push(0xc0 | ((prev >> 8) as u8));
        buf.push((prev & 0xff) as u8);
        prev = here;
    }
    let mut r = WireReader::new(&buf);
    r.seek(prev).unwrap();
    match r.read_name() {
        Err(WireError::Name(NameError::NameTooLong(_))) => {}
        other => panic!("bomb must die on the length cap, got {other:?}"),
    }
}

#[test]
fn overlong_inline_name_is_rejected() {
    // Four 63-octet labels = 257 wire octets, no compression involved.
    let mut buf = Vec::new();
    for _ in 0..4 {
        buf.push(63);
        buf.extend_from_slice(&[b'x'; 63]);
    }
    buf.push(0);
    let mut r = WireReader::new(&buf);
    assert!(matches!(
        r.read_name(),
        Err(WireError::Name(NameError::NameTooLong(_)))
    ));
}

#[test]
fn reserved_label_types_are_rejected() {
    for first in [0x40u8, 0x80] {
        let buf = [first, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::BadLabelType(_))));
    }
}

#[test]
fn lying_rdlengths_do_not_panic() {
    let name_wire = b"\x01z\x00";
    // RDLENGTH smaller than the type's fixed fields: DNSKEY/CDS/DS need
    // 4, RRSIG 18, NSEC3/NSEC3PARAM 5, CSYNC 6. All must error cleanly
    // (underflow here would panic a debug build).
    for (rtype, rdlen, rdata) in [
        (48u16, 2u16, &b"\x01\x01"[..]), // DNSKEY
        (43, 3, &b"\x00\x00\x08"[..]),   // DS
        (59, 3, &b"\x00\x00\x08"[..]),   // CDS
        (46, 17, &[0u8; 17][..]),        // RRSIG
        (50, 4, &[0u8; 4][..]),          // NSEC3
        (51, 4, &[0u8; 4][..]),          // NSEC3PARAM
        (62, 5, &[0u8; 5][..]),          // CSYNC
        (1, 3, &[0u8; 3][..]),           // A with bad length
        (28, 15, &[0u8; 15][..]),        // AAAA with bad length
    ] {
        let body = record(name_wire, rtype, rdlen, rdata);
        assert!(
            Message::from_bytes(&msg(0, 1, 0, 0, &body)).is_err(),
            "type {rtype} rdlen {rdlen} must be rejected"
        );
    }
    // NSEC3 whose salt length points past its RDATA into the rest of the
    // message: caught by the RDLENGTH cross-check.
    let nsec3 = [1u8, 0, 0, 1, 200]; // salt_len 200 overruns rdlen 5
    let mut body = record(name_wire, 50, 5, &nsec3);
    body.extend_from_slice(&[0u8; 250]); // bytes it would steal
    assert!(Message::from_bytes(&msg(0, 1, 0, 0, &body)).is_err());
    // TXT whose character-string runs past its RDATA.
    let body = record(name_wire, 16, 3, &[200u8, b'x', b'y']);
    assert!(Message::from_bytes(&msg(0, 1, 0, 0, &body)).is_err());
}

#[test]
fn rdata_crossing_message_end_is_truncated() {
    let name_wire = b"\x01z\x00";
    let body = record(name_wire, 16, 400, b"abc"); // claims 400, has 3
    assert_eq!(
        Message::from_bytes(&msg(0, 1, 0, 0, &body)),
        Err(WireError::Truncated)
    );
}

// ----------------------------------------------------------- properties

/// A reasonably rich valid reply to mutate: covers name compression and
/// the DNSSEC types whose decoders have fixed-size prefixes.
fn rich_reply() -> Vec<u8> {
    use dns_wire::message::Rcode;
    use dns_wire::rdata::{DnskeyData, DsData, RData, RrsigData};
    use dns_wire::record::Record;
    let zone = Name::parse("child.example.ch").unwrap();
    let q = Message::query(7, zone.clone(), RecordType::Dnskey, true);
    let mut m = Message::response_to(&q, Rcode::NoError);
    m.answers.push(Record::new(
        zone.clone(),
        300,
        RData::Dnskey(DnskeyData {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![0xab; 32],
        }),
    ));
    m.answers.push(Record::new(
        zone.clone(),
        300,
        RData::Rrsig(RrsigData {
            type_covered: RecordType::Dnskey.code(),
            algorithm: 13,
            labels: 3,
            original_ttl: 300,
            expiration: 2_000_000_000,
            inception: 1_000_000_000,
            key_tag: 4711,
            signer_name: zone.clone(),
            signature: vec![0xcd; 64],
        }),
    ));
    m.answers.push(Record::new(
        zone,
        300,
        RData::Cds(DsData {
            key_tag: 4711,
            algorithm: 13,
            digest_type: 2,
            digest: vec![0xef; 32],
        }),
    ));
    m.to_bytes()
}

proptest! {
    /// Arbitrary garbage never panics the message decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..=512)) {
        let _ = Message::from_bytes(&bytes);
    }

    /// Arbitrary garbage never panics the name decoder either (it has its
    /// own pointer-chasing state machine).
    #[test]
    fn arbitrary_bytes_never_panic_name_reader(bytes in proptest::collection::vec(any::<u8>(), 0..=128)) {
        let mut r = WireReader::new(&bytes);
        let _ = r.read_name();
    }

    /// Every truncation of a valid reply decodes or errors — no panic,
    /// and never a phantom success at the full length's content.
    #[test]
    fn truncations_of_valid_reply_never_panic(cut in 0usize..=1024) {
        let full = rich_reply();
        let cut = cut.min(full.len());
        let _ = Message::from_bytes(&full[..cut]);
        // The untruncated message still decodes.
        prop_assert!(Message::from_bytes(&full).is_ok());
    }

    /// Single-byte corruptions of a valid reply never panic.
    #[test]
    fn bitflips_of_valid_reply_never_panic(at in 0usize..1024, x in 1u8..=255) {
        let mut bytes = rich_reply();
        let n = bytes.len();
        bytes[at % n] ^= x;
        let _ = Message::from_bytes(&bytes);
    }
}
