//! Typed RDATA for every record type the measurement touches.
//!
//! DNSSEC-related types (`DNSKEY`, `RRSIG`, `DS`, `NSEC`, `NSEC3`, `CDS`,
//! `CDNSKEY`) follow RFC 4034/5155/7344 field-for-field. Unknown types are
//! carried opaquely (RFC 3597). Hex/base64-like blobs are rendered as hex in
//! presentation format (we do not implement base64: the simulated signature
//! scheme is byte-oriented and hex keeps the parser simple and reversible).

use crate::name::Name;
use crate::record::RecordType;
use crate::typebitmap::TypeBitmap;
use crate::wire::{WireError, WireReader, WireWriter};
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNSKEY flags bit for Secure Entry Point (KSK), RFC 4034 §2.1.1.
pub const DNSKEY_FLAG_SEP: u16 = 0x0001;
/// DNSKEY flags bit for Zone Key, RFC 4034 §2.1.1.
pub const DNSKEY_FLAG_ZONE: u16 = 0x0100;
/// DNSKEY flags bit for Revoked, RFC 5011.
pub const DNSKEY_FLAG_REVOKE: u16 = 0x0080;

/// A DNSKEY / CDNSKEY body (RFC 4034 §2, RFC 7344 §3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnskeyData {
    pub flags: u16,
    pub protocol: u8,
    pub algorithm: u8,
    pub public_key: Vec<u8>,
}

impl DnskeyData {
    /// Whether the SEP (KSK) flag is set.
    pub fn is_ksk(&self) -> bool {
        self.flags & DNSKEY_FLAG_SEP != 0
    }

    /// Whether the Zone Key flag is set (must be, for DNSSEC use).
    pub fn is_zone_key(&self) -> bool {
        self.flags & DNSKEY_FLAG_ZONE != 0
    }

    /// The RFC 8078 §4 "delete" sentinel CDNSKEY: `0 3 0 0x00`.
    pub fn delete_sentinel() -> Self {
        DnskeyData {
            flags: 0,
            protocol: 3,
            algorithm: 0,
            public_key: vec![0],
        }
    }

    /// True when this is the RFC 8078 deletion request.
    pub fn is_delete(&self) -> bool {
        self.algorithm == 0
    }

    fn write(&self, w: &mut WireWriter) {
        w.write_u16(self.flags);
        w.write_u8(self.protocol);
        w.write_u8(self.algorithm);
        w.write_bytes(&self.public_key);
    }

    fn read(r: &mut WireReader, rdlen: usize) -> Result<Self, WireError> {
        if rdlen < 4 {
            return Err(WireError::Truncated);
        }
        Ok(DnskeyData {
            flags: r.read_u16()?,
            protocol: r.read_u8()?,
            algorithm: r.read_u8()?,
            public_key: r.read_bytes(rdlen - 4)?.to_vec(),
        })
    }

    fn presentation(&self) -> String {
        format!(
            "{} {} {} {}",
            self.flags,
            self.protocol,
            self.algorithm,
            hex(&self.public_key)
        )
    }
}

/// A DS / CDS body (RFC 4034 §5, RFC 7344 §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DsData {
    pub key_tag: u16,
    pub algorithm: u8,
    pub digest_type: u8,
    pub digest: Vec<u8>,
}

impl DsData {
    /// The RFC 8078 §4 "delete" sentinel CDS: `0 0 0 00`.
    pub fn delete_sentinel() -> Self {
        DsData {
            key_tag: 0,
            algorithm: 0,
            digest_type: 0,
            digest: vec![0],
        }
    }

    /// True when this is the RFC 8078 deletion request (null algorithm —
    /// "never seen in DS RRs and only has meaning in the context of CDS",
    /// paper §2).
    pub fn is_delete(&self) -> bool {
        self.algorithm == 0
    }

    fn write(&self, w: &mut WireWriter) {
        w.write_u16(self.key_tag);
        w.write_u8(self.algorithm);
        w.write_u8(self.digest_type);
        w.write_bytes(&self.digest);
    }

    fn read(r: &mut WireReader, rdlen: usize) -> Result<Self, WireError> {
        if rdlen < 4 {
            return Err(WireError::Truncated);
        }
        Ok(DsData {
            key_tag: r.read_u16()?,
            algorithm: r.read_u8()?,
            digest_type: r.read_u8()?,
            digest: r.read_bytes(rdlen - 4)?.to_vec(),
        })
    }

    fn presentation(&self) -> String {
        format!(
            "{} {} {} {}",
            self.key_tag,
            self.algorithm,
            self.digest_type,
            hex(&self.digest)
        )
    }
}

/// An RRSIG body (RFC 4034 §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RrsigData {
    pub type_covered: u16,
    pub algorithm: u8,
    pub labels: u8,
    pub original_ttl: u32,
    pub expiration: u32,
    pub inception: u32,
    pub key_tag: u16,
    pub signer_name: Name,
    pub signature: Vec<u8>,
}

impl RrsigData {
    /// The record type this signature covers.
    pub fn covered(&self) -> RecordType {
        RecordType::from_code(self.type_covered)
    }

    /// Serialize the RDATA *prefix* (everything before the signature) in
    /// canonical form — this is what gets signed along with the RRset.
    pub fn signed_prefix(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18 + self.signer_name.wire_len());
        out.extend_from_slice(&self.type_covered.to_be_bytes());
        out.push(self.algorithm);
        out.push(self.labels);
        out.extend_from_slice(&self.original_ttl.to_be_bytes());
        out.extend_from_slice(&self.expiration.to_be_bytes());
        out.extend_from_slice(&self.inception.to_be_bytes());
        out.extend_from_slice(&self.key_tag.to_be_bytes());
        self.signer_name.write_uncompressed(&mut out);
        out
    }

    fn write(&self, w: &mut WireWriter) {
        w.write_u16(self.type_covered);
        w.write_u8(self.algorithm);
        w.write_u8(self.labels);
        w.write_u32(self.original_ttl);
        w.write_u32(self.expiration);
        w.write_u32(self.inception);
        w.write_u16(self.key_tag);
        // Signer name must not be compressed (RFC 4034 §3.1.7).
        w.without_compression(|w| w.write_name(&self.signer_name));
        w.write_bytes(&self.signature);
    }

    fn read(r: &mut WireReader, rdlen: usize) -> Result<Self, WireError> {
        let start = r.position();
        if rdlen < 18 {
            return Err(WireError::Truncated);
        }
        let type_covered = r.read_u16()?;
        let algorithm = r.read_u8()?;
        let labels = r.read_u8()?;
        let original_ttl = r.read_u32()?;
        let expiration = r.read_u32()?;
        let inception = r.read_u32()?;
        let key_tag = r.read_u16()?;
        let signer_name = r.read_name()?;
        let consumed = r.position() - start;
        if consumed > rdlen {
            return Err(WireError::Truncated);
        }
        let signature = r.read_bytes(rdlen - consumed)?.to_vec();
        Ok(RrsigData {
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer_name,
            signature,
        })
    }

    fn presentation(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {}",
            RecordType::from_code(self.type_covered).mnemonic(),
            self.algorithm,
            self.labels,
            self.original_ttl,
            self.expiration,
            self.inception,
            self.key_tag,
            self.signer_name,
            hex(&self.signature)
        )
    }
}

/// An NSEC body (RFC 4034 §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsecData {
    pub next_name: Name,
    pub types: TypeBitmap,
}

/// An NSEC3 body (RFC 5155 §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec3Data {
    pub hash_algorithm: u8,
    pub flags: u8,
    pub iterations: u16,
    pub salt: Vec<u8>,
    pub next_hashed: Vec<u8>,
    pub types: TypeBitmap,
}

/// An NSEC3PARAM body (RFC 5155 §4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Nsec3ParamData {
    pub hash_algorithm: u8,
    pub flags: u8,
    pub iterations: u16,
    pub salt: Vec<u8>,
}

/// A CSYNC body (RFC 7477 §2.1): SOA serial gate, flags
/// (0x01 `immediate`, 0x02 `soaminimum`), and the bitmap of types the
/// parent should copy from the child (typically NS, A, AAAA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsyncData {
    pub serial: u32,
    pub flags: u16,
    pub types: TypeBitmap,
}

impl CsyncData {
    /// RFC 7477 flag: process immediately, ignore the serial gate.
    pub const FLAG_IMMEDIATE: u16 = 0x01;
    /// RFC 7477 flag: require child SOA serial ≥ `serial`.
    pub const FLAG_SOAMINIMUM: u16 = 0x02;

    pub fn immediate(&self) -> bool {
        self.flags & Self::FLAG_IMMEDIATE != 0
    }

    pub fn soa_minimum(&self) -> bool {
        self.flags & Self::FLAG_SOAMINIMUM != 0
    }
}

/// An SOA body (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaData {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// Typed record data. The variant determines the record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(Name),
    Cname(Name),
    Mx {
        preference: u16,
        exchange: Name,
    },
    Txt(Vec<Vec<u8>>),
    Soa(SoaData),
    Dnskey(DnskeyData),
    Cdnskey(DnskeyData),
    Ds(DsData),
    Cds(DsData),
    Rrsig(RrsigData),
    Nsec(NsecData),
    Nsec3(Nsec3Data),
    Nsec3param(Nsec3ParamData),
    Csync(CsyncData),
    /// EDNS(0) OPT pseudo-record options, opaque.
    Opt(Vec<u8>),
    /// RFC 3597 opaque data for any other type.
    Unknown {
        rtype: u16,
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa(_) => RecordType::Soa,
            RData::Dnskey(_) => RecordType::Dnskey,
            RData::Cdnskey(_) => RecordType::Cdnskey,
            RData::Ds(_) => RecordType::Ds,
            RData::Cds(_) => RecordType::Cds,
            RData::Rrsig(_) => RecordType::Rrsig,
            RData::Nsec(_) => RecordType::Nsec,
            RData::Nsec3(_) => RecordType::Nsec3,
            RData::Nsec3param(_) => RecordType::Nsec3param,
            RData::Csync(_) => RecordType::Csync,
            RData::Opt(_) => RecordType::Opt,
            RData::Unknown { rtype, .. } => RecordType::from_code(*rtype),
        }
    }

    /// Encode the RDATA body (without RDLENGTH).
    pub fn write(&self, w: &mut WireWriter) {
        match self {
            RData::A(a) => w.write_bytes(&a.octets()),
            RData::Aaaa(a) => w.write_bytes(&a.octets()),
            // NS/CNAME/MX names may be compressed (RFC 1035-era types).
            RData::Ns(n) => w.write_name(n),
            RData::Cname(n) => w.write_name(n),
            RData::Mx {
                preference,
                exchange,
            } => {
                w.write_u16(*preference);
                w.write_name(exchange);
            }
            RData::Txt(strings) => {
                for s in strings {
                    w.write_u8(s.len() as u8);
                    w.write_bytes(s);
                }
            }
            RData::Soa(soa) => {
                w.write_name(&soa.mname);
                w.write_name(&soa.rname);
                w.write_u32(soa.serial);
                w.write_u32(soa.refresh);
                w.write_u32(soa.retry);
                w.write_u32(soa.expire);
                w.write_u32(soa.minimum);
            }
            RData::Dnskey(k) | RData::Cdnskey(k) => k.write(w),
            RData::Ds(d) | RData::Cds(d) => d.write(w),
            RData::Rrsig(s) => s.write(w),
            RData::Nsec(n) => {
                // NSEC next-name must not be compressed (RFC 4034 §4.1.1).
                w.without_compression(|w| w.write_name(&n.next_name));
                let mut bm = Vec::new();
                n.types.write(&mut bm);
                w.write_bytes(&bm);
            }
            RData::Nsec3(n) => {
                w.write_u8(n.hash_algorithm);
                w.write_u8(n.flags);
                w.write_u16(n.iterations);
                w.write_u8(n.salt.len() as u8);
                w.write_bytes(&n.salt);
                w.write_u8(n.next_hashed.len() as u8);
                w.write_bytes(&n.next_hashed);
                let mut bm = Vec::new();
                n.types.write(&mut bm);
                w.write_bytes(&bm);
            }
            RData::Nsec3param(p) => {
                w.write_u8(p.hash_algorithm);
                w.write_u8(p.flags);
                w.write_u16(p.iterations);
                w.write_u8(p.salt.len() as u8);
                w.write_bytes(&p.salt);
            }
            RData::Csync(c) => {
                w.write_u32(c.serial);
                w.write_u16(c.flags);
                let mut bm = Vec::new();
                c.types.write(&mut bm);
                w.write_bytes(&bm);
            }
            RData::Opt(data) => w.write_bytes(data),
            RData::Unknown { data, .. } => w.write_bytes(data),
        }
    }

    /// Decode RDATA of `rtype` spanning exactly `rdlen` octets.
    pub fn read(r: &mut WireReader, rtype: RecordType, rdlen: usize) -> Result<Self, WireError> {
        let start = r.position();
        let rd = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadValue("A rdlength"));
                }
                let b: [u8; 4] = r
                    .read_bytes(4)?
                    .try_into()
                    .map_err(|_| WireError::BadValue("A rdlength"))?;
                RData::A(Ipv4Addr::from(b))
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadValue("AAAA rdlength"));
                }
                let b = r.read_bytes(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RecordType::Ns => RData::Ns(r.read_name()?),
            RecordType::Cname => RData::Cname(r.read_name()?),
            RecordType::Mx => RData::Mx {
                preference: r.read_u16()?,
                exchange: r.read_name()?,
            },
            RecordType::Txt => {
                let mut strings = Vec::new();
                while r.position() - start < rdlen {
                    let len = r.read_u8()? as usize;
                    strings.push(r.read_bytes(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RecordType::Soa => RData::Soa(SoaData {
                mname: r.read_name()?,
                rname: r.read_name()?,
                serial: r.read_u32()?,
                refresh: r.read_u32()?,
                retry: r.read_u32()?,
                expire: r.read_u32()?,
                minimum: r.read_u32()?,
            }),
            RecordType::Dnskey => RData::Dnskey(DnskeyData::read(r, rdlen)?),
            RecordType::Cdnskey => RData::Cdnskey(DnskeyData::read(r, rdlen)?),
            RecordType::Ds => RData::Ds(DsData::read(r, rdlen)?),
            RecordType::Cds => RData::Cds(DsData::read(r, rdlen)?),
            RecordType::Rrsig => RData::Rrsig(RrsigData::read(r, rdlen)?),
            RecordType::Nsec => {
                let next_name = r.read_name()?;
                let consumed = r.position() - start;
                if consumed > rdlen {
                    return Err(WireError::Truncated);
                }
                let types = TypeBitmap::read(r.read_bytes(rdlen - consumed)?)?;
                RData::Nsec(NsecData { next_name, types })
            }
            RecordType::Nsec3 => {
                if rdlen < 5 {
                    return Err(WireError::Truncated);
                }
                let hash_algorithm = r.read_u8()?;
                let flags = r.read_u8()?;
                let iterations = r.read_u16()?;
                let salt_len = r.read_u8()? as usize;
                let salt = r.read_bytes(salt_len)?.to_vec();
                let hash_len = r.read_u8()? as usize;
                let next_hashed = r.read_bytes(hash_len)?.to_vec();
                let consumed = r.position() - start;
                if consumed > rdlen {
                    return Err(WireError::Truncated);
                }
                let types = TypeBitmap::read(r.read_bytes(rdlen - consumed)?)?;
                RData::Nsec3(Nsec3Data {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                    next_hashed,
                    types,
                })
            }
            RecordType::Nsec3param => {
                if rdlen < 5 {
                    return Err(WireError::Truncated);
                }
                let hash_algorithm = r.read_u8()?;
                let flags = r.read_u8()?;
                let iterations = r.read_u16()?;
                let salt_len = r.read_u8()? as usize;
                let salt = r.read_bytes(salt_len)?.to_vec();
                RData::Nsec3param(Nsec3ParamData {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                })
            }
            RecordType::Csync => {
                if rdlen < 6 {
                    return Err(WireError::Truncated);
                }
                let serial = r.read_u32()?;
                let flags = r.read_u16()?;
                let types = TypeBitmap::read(r.read_bytes(rdlen - 6)?)?;
                RData::Csync(CsyncData {
                    serial,
                    flags,
                    types,
                })
            }
            RecordType::Opt => RData::Opt(r.read_bytes(rdlen)?.to_vec()),
            other => RData::Unknown {
                rtype: other.code(),
                data: r.read_bytes(rdlen)?.to_vec(),
            },
        };
        Ok(rd)
    }

    /// Presentation-format rendering of the RDATA fields.
    pub fn presentation(&self) -> String {
        match self {
            RData::A(a) => a.to_string(),
            RData::Aaaa(a) => a.to_string(),
            RData::Ns(n) => n.to_string(),
            RData::Cname(n) => n.to_string(),
            RData::Mx {
                preference,
                exchange,
            } => format!("{preference} {exchange}"),
            RData::Txt(strings) => strings
                .iter()
                .map(|s| format!("\"{}\"", txt_escape(s)))
                .collect::<Vec<_>>()
                .join(" "),
            RData::Soa(s) => format!(
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Dnskey(k) | RData::Cdnskey(k) => k.presentation(),
            RData::Ds(d) | RData::Cds(d) => d.presentation(),
            RData::Rrsig(s) => s.presentation(),
            RData::Nsec(n) => {
                if n.types.is_empty() {
                    n.next_name.to_string()
                } else {
                    format!("{} {}", n.next_name, n.types.presentation())
                }
            }
            RData::Nsec3(n) => format!(
                "{} {} {} {} {}{}",
                n.hash_algorithm,
                n.flags,
                n.iterations,
                hex(&n.salt),
                hex(&n.next_hashed),
                if n.types.is_empty() {
                    String::new()
                } else {
                    format!(" {}", n.types.presentation())
                }
            ),
            RData::Nsec3param(p) => format!(
                "{} {} {} {}",
                p.hash_algorithm,
                p.flags,
                p.iterations,
                hex(&p.salt)
            ),
            RData::Csync(c) => {
                if c.types.is_empty() {
                    format!("{} {}", c.serial, c.flags)
                } else {
                    format!("{} {} {}", c.serial, c.flags, c.types.presentation())
                }
            }
            RData::Opt(data) => format!("\\# {} {}", data.len(), hex(data)),
            RData::Unknown { data, .. } => {
                // RFC 3597 generic encoding.
                if data.is_empty() {
                    "\\# 0".to_string()
                } else {
                    format!("\\# {} {}", data.len(), hex(data))
                }
            }
        }
    }
}

/// Lowercase hex without separators; empty input renders as `-` so
/// presentation fields never vanish (parsers map `-` back to empty).
pub fn hex(b: &[u8]) -> String {
    if b.is_empty() {
        return "-".to_string();
    }
    let mut s = String::with_capacity(b.len() * 2);
    for byte in b {
        s.push_str(&format!("{byte:02x}"));
    }
    s
}

/// Parse lowercase/uppercase hex into bytes; `-` is the empty blob.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nib = |b: u8| (b as char).to_digit(16).map(|v| v as u8);
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| match pair {
            [hi, lo] => Some(nib(*hi)? << 4 | nib(*lo)?),
            _ => None,
        })
        .collect()
}

fn txt_escape(s: &[u8]) -> String {
    let mut out = String::new();
    for &b in s {
        match b {
            b'"' | b'\\' => {
                out.push('\\');
                out.push(b as char);
            }
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\{:03}", b)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;
    use crate::record::Record;

    fn roundtrip(rd: RData) {
        let rec = Record::new(name!("x.example"), 300, rd);
        let mut w = WireWriter::new();
        rec.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Record::read(&mut r).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn roundtrip_address_types() {
        roundtrip(RData::A(Ipv4Addr::new(192, 0, 2, 7)));
        roundtrip(RData::Aaaa("2001:db8::7".parse().unwrap()));
    }

    #[test]
    fn roundtrip_name_types() {
        roundtrip(RData::Ns(name!("ns1.example.net")));
        roundtrip(RData::Cname(name!("target.example.org")));
        roundtrip(RData::Mx {
            preference: 10,
            exchange: name!("mail.example.com"),
        });
    }

    #[test]
    fn roundtrip_txt() {
        roundtrip(RData::Txt(vec![b"hello world".to_vec(), b"x".to_vec()]));
        roundtrip(RData::Txt(vec![]));
    }

    #[test]
    fn roundtrip_soa() {
        roundtrip(RData::Soa(SoaData {
            mname: name!("ns1.example.com"),
            rname: name!("hostmaster.example.com"),
            serial: 2025040100,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }));
    }

    #[test]
    fn roundtrip_dnssec_types() {
        roundtrip(RData::Dnskey(DnskeyData {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }));
        roundtrip(RData::Cdnskey(DnskeyData::delete_sentinel()));
        roundtrip(RData::Ds(DsData {
            key_tag: 12345,
            algorithm: 13,
            digest_type: 2,
            digest: vec![0xab; 32],
        }));
        roundtrip(RData::Cds(DsData::delete_sentinel()));
        roundtrip(RData::Rrsig(RrsigData {
            type_covered: RecordType::Cds.code(),
            algorithm: 13,
            labels: 2,
            original_ttl: 3600,
            expiration: 1_800_000_000,
            inception: 1_700_000_000,
            key_tag: 4242,
            signer_name: name!("example.com"),
            signature: vec![9; 32],
        }));
        roundtrip(RData::Nsec(NsecData {
            next_name: name!("b.example"),
            types: TypeBitmap::from_types([RecordType::A, RecordType::Rrsig]),
        }));
        roundtrip(RData::Nsec3(Nsec3Data {
            hash_algorithm: 1,
            flags: 1,
            iterations: 0,
            salt: vec![0xde, 0xad],
            next_hashed: vec![7; 20],
            types: TypeBitmap::from_types([RecordType::Ns, RecordType::Ds]),
        }));
        roundtrip(RData::Nsec3param(Nsec3ParamData {
            hash_algorithm: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
        }));
    }

    #[test]
    fn roundtrip_csync() {
        roundtrip(RData::Csync(CsyncData {
            serial: 2025040100,
            flags: CsyncData::FLAG_IMMEDIATE | CsyncData::FLAG_SOAMINIMUM,
            types: TypeBitmap::from_types([RecordType::Ns, RecordType::A, RecordType::Aaaa]),
        }));
        roundtrip(RData::Csync(CsyncData {
            serial: 0,
            flags: 0,
            types: TypeBitmap::new(),
        }));
    }

    #[test]
    fn csync_flags() {
        let c = CsyncData {
            serial: 1,
            flags: CsyncData::FLAG_IMMEDIATE,
            types: TypeBitmap::new(),
        };
        assert!(c.immediate());
        assert!(!c.soa_minimum());
    }

    #[test]
    fn roundtrip_unknown_type() {
        roundtrip(RData::Unknown {
            rtype: 63,
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn delete_sentinels_match_rfc8078() {
        let cds = DsData::delete_sentinel();
        assert!(cds.is_delete());
        assert_eq!(
            (
                cds.key_tag,
                cds.algorithm,
                cds.digest_type,
                cds.digest.as_slice()
            ),
            (0, 0, 0, &[0u8][..])
        );
        let cdnskey = DnskeyData::delete_sentinel();
        assert!(cdnskey.is_delete());
        assert_eq!(cdnskey.protocol, 3);
    }

    #[test]
    fn a_rdlength_enforced() {
        // Record with A type and 3-byte RDATA must be rejected.
        let mut bytes = Vec::new();
        name!("x.example").write_uncompressed(&mut bytes);
        bytes.extend_from_slice(&1u16.to_be_bytes()); // type A
        bytes.extend_from_slice(&1u16.to_be_bytes()); // class IN
        bytes.extend_from_slice(&300u32.to_be_bytes());
        bytes.extend_from_slice(&3u16.to_be_bytes()); // rdlength 3
        bytes.extend_from_slice(&[192, 0, 2]);
        let mut r = WireReader::new(&bytes);
        assert!(Record::read(&mut r).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let b = vec![0x00, 0xff, 0x10, 0xab];
        assert_eq!(unhex(&hex(&b)).unwrap(), b);
        assert_eq!(unhex("abc"), None);
        assert_eq!(unhex("zz"), None);
        // Empty blobs use the '-' sentinel.
        assert_eq!(hex(&[]), "-");
        assert_eq!(unhex("-"), Some(vec![]));
    }

    #[test]
    fn ksk_zsk_flags() {
        let ksk = DnskeyData {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![1],
        };
        assert!(ksk.is_ksk() && ksk.is_zone_key());
        let zsk = DnskeyData {
            flags: 256,
            ..ksk.clone()
        };
        assert!(!zsk.is_ksk() && zsk.is_zone_key());
    }

    #[test]
    fn rrsig_signed_prefix_layout() {
        let sig = RrsigData {
            type_covered: 1,
            algorithm: 13,
            labels: 2,
            original_ttl: 300,
            expiration: 20,
            inception: 10,
            key_tag: 7,
            signer_name: name!("example"),
            signature: vec![1, 2, 3],
        };
        let p = sig.signed_prefix();
        // 18 fixed bytes + "example." wire name (9 bytes).
        assert_eq!(p.len(), 18 + 9);
        assert_eq!(&p[0..2], &[0, 1]);
        assert_eq!(p[2], 13);
        // Signature itself must not be part of the signed prefix.
        assert!(!p.windows(3).any(|w| w == [1, 2, 3]));
    }
}
