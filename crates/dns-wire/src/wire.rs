//! Low-level wire framing: a bounds-checked reader with compression-pointer
//! support. The compressing writer lives in [`crate::compress`] (encoding
//! consumes only locally-validated buffers, so it sits outside the
//! panic-safety lint scope that covers this decode module); its
//! [`WireWriter`] is re-exported here for compatibility.

use crate::name::{Name, NameError};
use std::fmt;

pub use crate::compress::WireWriter;

/// Errors while encoding or decoding wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Read past the end of the buffer.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label length byte used the reserved `0b10`/`0b01` prefixes.
    BadLabelType(u8),
    /// A decoded name violated name limits.
    Name(NameError),
    /// RDATA length did not match the RDLENGTH field.
    RdataLength { expected: usize, actual: usize },
    /// A field held a value that is not valid for its type.
    BadValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            WireError::Name(e) => write!(f, "invalid name: {e}"),
            WireError::RdataLength { expected, actual } => {
                write!(
                    f,
                    "rdata length mismatch: rdlength {expected}, consumed {actual}"
                )
            }
            WireError::BadValue(what) => write!(f, "invalid value for {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        WireError::Name(e)
    }
}

/// Bounds-checked cursor over a received message.
///
/// Holds the *whole* message so that compression pointers (which are
/// absolute offsets) can be chased from any position.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Create a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current offset from the start of the message.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Move the cursor to an absolute offset (used for bounded sub-reads).
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.buf.len() {
            return Err(WireError::Truncated);
        }
        self.pos = pos;
        Ok(())
    }

    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        let v = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        let hi = self.read_u8()? as u16;
        let lo = self.read_u8()? as u16;
        Ok(hi << 8 | lo)
    }

    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let hi = self.read_u16()? as u32;
        let lo = self.read_u16()? as u32;
        Ok(hi << 16 | lo)
    }

    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let s = self
            .buf
            .get(self.pos..self.pos.checked_add(n).ok_or(WireError::Truncated)?)
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(s)
    }

    /// Decode a (possibly compressed) domain name at the cursor.
    ///
    /// The cursor advances past the name *as stored* (i.e. past the pointer
    /// if one is used). Pointers must point strictly backwards, which also
    /// rules out loops; a hop budget guards against pathological chains.
    pub fn read_name(&mut self) -> Result<Name, WireError> {
        // Decode straight into the canonical flat wire form (lowercased,
        // length-prefixed labels + root byte): one allocation per name,
        // no per-label vectors.
        let mut wire: Vec<u8> = Vec::with_capacity(32);
        let mut label_count = 0u8;
        let mut pos = self.pos;
        // End of the name as stored inline; set when the first pointer is
        // followed.
        let mut resume: Option<usize> = None;
        let mut hops = 0usize;
        // Accumulated uncompressed length (root byte included). Enforced
        // *during* accumulation: a hostile message can otherwise make each
        // name decode copy megabytes of labels through backward pointer
        // chains before the post-hoc limit check fires.
        let mut wire_len = 1usize;
        loop {
            let len = *self.buf.get(pos).ok_or(WireError::Truncated)? as usize;
            match len & 0xc0 {
                0x00 => {
                    if len == 0 {
                        pos += 1;
                        break;
                    }
                    let end = pos + 1 + len;
                    let label = self.buf.get(pos + 1..end).ok_or(WireError::Truncated)?;
                    wire_len += 1 + len;
                    if wire_len > crate::name::MAX_NAME_LEN {
                        return Err(WireError::Name(NameError::NameTooLong(wire_len)));
                    }
                    wire.push(len as u8);
                    wire.extend(label.iter().map(|b| b.to_ascii_lowercase()));
                    label_count += 1;
                    pos = end;
                }
                0xc0 => {
                    let lo = *self.buf.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                    let target = (len & 0x3f) << 8 | lo;
                    if target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > 128 {
                        return Err(WireError::BadPointer);
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    pos = target;
                }
                other => return Err(WireError::BadLabelType(other as u8)),
            }
        }
        self.pos = resume.unwrap_or(pos);
        wire.push(0);
        // Label length ≤63 is guaranteed by the 0x00 tag check, emptiness
        // by `len == 0` terminating, and the total by the in-loop cap —
        // the buffer is canonical by construction.
        Ok(Name::from_decoded_wire(wire, label_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;

    fn roundtrip(names: &[Name]) {
        let mut w = WireWriter::new();
        for n in names {
            w.write_name(n);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for n in names {
            assert_eq!(&r.read_name().unwrap(), n);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(&[name!("www.example.com")]);
    }

    #[test]
    fn compression_shares_suffixes() {
        let a = name!("www.example.com");
        let b = name!("mail.example.com");
        let c = name!("example.com");
        let mut w = WireWriter::new();
        w.write_name(&a);
        w.write_name(&b);
        w.write_name(&c);
        let bytes = w.into_bytes();
        // Second and third names must be shorter than uncompressed.
        assert!(bytes.len() < a.wire_len() + b.wire_len() + c.wire_len());
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), b);
        assert_eq!(r.read_name().unwrap(), c);
    }

    #[test]
    fn full_pointer_when_name_repeats() {
        let a = name!("example.com");
        let mut w = WireWriter::new();
        w.write_name(&a);
        let first = w.len();
        w.write_name(&a);
        let bytes = w.into_bytes();
        // The repeat is exactly one 2-byte pointer.
        assert_eq!(bytes.len(), first + 2);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), a);
    }

    #[test]
    fn compression_disabled_inside_rdata() {
        let a = name!("example.com");
        let mut w = WireWriter::new();
        w.write_name(&a);
        w.without_compression(|w| w.write_name(&a));
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), a.wire_len() * 2);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to offset 4 at offset 0: forward → invalid.
        let bytes = [0xc0, 0x04, 0, 0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name(), Err(WireError::BadPointer));
    }

    #[test]
    fn self_pointer_rejected() {
        let bytes = [0xc0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name(), Err(WireError::BadPointer));
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let bytes = [0x80, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn truncated_label_rejected() {
        let bytes = [0x05, b'a', b'b'];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name(), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_integers() {
        let mut r = WireReader::new(&[0x01]);
        assert_eq!(r.read_u16(), Err(WireError::Truncated));
        let mut r = WireReader::new(&[0x01, 0x02, 0x03]);
        assert_eq!(r.read_u32(), Err(WireError::Truncated));
    }

    #[test]
    fn reader_primitives() {
        let mut r = WireReader::new(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
        assert_eq!(r.read_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.read_u8().unwrap(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn pointer_chain_roundtrip() {
        // c.b.a, then b.a as pointer, then d.b.a sharing the b.a suffix.
        roundtrip(&[name!("c.b.a"), name!("b.a"), name!("d.b.a")]);
    }
}
