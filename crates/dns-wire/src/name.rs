//! Domain names (RFC 1035 §3.1) with the semantics DNSSEC needs.
//!
//! A [`Name`] is a sequence of labels stored lowercase (DNS names compare
//! case-insensitively; RFC 4034 §6.2 canonical form lowercases them anyway,
//! and this crate is a measurement stack, not a 0x20-randomising resolver).
//! The root name has zero labels.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a whole name in wire octets, including the root byte
/// (RFC 1035 §2.3.4). The paper's §2 notes that Authenticated Bootstrapping
/// signal names can exceed this for unusually long child/NS names.
pub const MAX_NAME_LEN: usize = 255;

/// Errors produced while parsing or constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (e.g. `a..b`) in a context where that is invalid.
    EmptyLabel,
    /// A label exceeded [`MAX_LABEL_LEN`] octets.
    LabelTooLong(usize),
    /// The whole name would exceed [`MAX_NAME_LEN`] wire octets.
    NameTooLong(usize),
    /// An escape sequence in presentation format was malformed.
    BadEscape,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            NameError::NameTooLong(n) => write!(f, "name of {n} wire octets exceeds 255"),
            NameError::BadEscape => write!(f, "malformed escape sequence"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully-qualified domain name.
///
/// Stored as its canonical (lowercase) uncompressed wire encoding behind
/// an `Arc`, with the label count and an FNV-1a hash computed once at
/// construction: clones are refcount bumps, hashing is a single `u64`
/// write, and equality short-circuits on the cached hash. Equality and
/// ordering are case-insensitive by construction.
#[derive(Clone)]
pub struct Name {
    /// Canonical lowercase uncompressed encoding, including the root byte.
    wire: Arc<[u8]>,
    /// FNV-1a of `wire`, computed once.
    hash: u64,
    /// Number of labels (the root has zero; max 127 for a 255-octet name).
    labels: u8,
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.wire == other.wire
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::root()
    }
}

/// Label-by-label ordering from the *left* (the historical derive order
/// of the label-vector representation; `BTreeSet<Name>` seed compilation
/// depends on it, e.g. `zz…`-prefixed names sorting after the benign
/// populations).
impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut a = self.labels();
        let mut b = other.labels();
        loop {
            match (a.next(), b.next()) {
                (Some(x), Some(y)) => match x.cmp(y) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                },
                (None, None) => return std::cmp::Ordering::Equal,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name::from_canonical_wire(vec![0], 0)
    }

    /// Wrap an already-canonical (lowercase, validated) wire encoding.
    fn from_canonical_wire(wire: Vec<u8>, labels: u8) -> Self {
        let hash = fnv64_bytes(&wire);
        Name {
            wire: wire.into(),
            hash,
            labels,
        }
    }

    /// Crate-internal: build from a canonical lowercase wire buffer the
    /// caller assembled (message decoding), skipping re-validation. The
    /// buffer must be a well-formed uncompressed encoding ≤255 octets
    /// with every label 1–63 octets and already lowercased.
    pub(crate) fn from_decoded_wire(wire: Vec<u8>, labels: u8) -> Self {
        debug_assert!(wire.len() <= MAX_NAME_LEN && wire.last() == Some(&0));
        Name::from_canonical_wire(wire, labels)
    }

    /// Build a name from raw label byte-strings (first = leftmost).
    ///
    /// Labels are lowercased. Returns an error on empty or oversized labels
    /// or an oversized total name.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut wire = Vec::with_capacity(32);
        let mut count = 0u16;
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(l.len()));
            }
            wire.push(l.len() as u8);
            wire.extend(l.iter().map(|b| b.to_ascii_lowercase()));
            count += 1;
        }
        wire.push(0);
        if wire.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire.len()));
        }
        Ok(Name::from_canonical_wire(wire, count as u8))
    }

    /// Parse presentation format (`www.example.com.` or `www.example.com`).
    ///
    /// A single `.` (or empty string) is the root. Supports `\.`-style and
    /// `\DDD` decimal escapes per RFC 1035 §5.1.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let mut rest = s.as_bytes();
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        while let Some((&b, tail)) = rest.split_first() {
            match b {
                b'\\' => match tail {
                    [c, tail @ ..] if !c.is_ascii_digit() => {
                        cur.push(*c);
                        rest = tail;
                    }
                    [d1, d2, d3, tail @ ..] if d2.is_ascii_digit() && d3.is_ascii_digit() => {
                        let v = (*d1 - b'0') as u32 * 100
                            + (*d2 - b'0') as u32 * 10
                            + (*d3 - b'0') as u32;
                        if v > 255 {
                            return Err(NameError::BadEscape);
                        }
                        cur.push(v as u8);
                        rest = tail;
                    }
                    _ => return Err(NameError::BadEscape),
                },
                b'.' => {
                    if cur.is_empty() {
                        return Err(NameError::EmptyLabel);
                    }
                    labels.push(std::mem::take(&mut cur));
                    rest = tail;
                }
                b => {
                    cur.push(b);
                    rest = tail;
                }
            }
        }
        if !cur.is_empty() {
            labels.push(cur);
        }
        Name::from_labels(labels)
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels as usize
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels == 0
    }

    /// The cached FNV-1a hash of the canonical wire encoding — the
    /// stable key the striped caches shard on.
    pub fn fnv64(&self) -> u64 {
        self.hash
    }

    /// The canonical uncompressed wire encoding, borrowed.
    pub fn wire_bytes(&self) -> &[u8] {
        &self.wire
    }

    /// Iterate over labels, leftmost first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        LabelIter {
            wire: &self.wire,
            pos: 0,
        }
    }

    /// Byte offset in `wire` where label `k` (0-based, leftmost first)
    /// starts; `k == label_count()` gives the root byte.
    fn label_offset(&self, k: usize) -> usize {
        let mut pos = 0usize;
        for _ in 0..k {
            match self.wire.get(pos) {
                Some(&len) => pos += len as usize + 1,
                None => break,
            }
        }
        pos
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        let (&len, rest) = self.wire.split_first()?;
        if len == 0 {
            None
        } else {
            rest.get(..len as usize)
        }
    }

    /// Length of the uncompressed wire encoding, including the root byte.
    pub fn wire_len(&self) -> usize {
        self.wire.len()
    }

    /// Parent name (one label stripped from the left); `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels == 0 {
            return None;
        }
        let skip = *self.wire.first()? as usize + 1;
        let tail = self.wire.get(skip..)?;
        Some(Name::from_canonical_wire(tail.to_vec(), self.labels - 1))
    }

    /// True if `self` equals `ancestor` or is underneath it.
    ///
    /// Every name is a subdomain of the root. The comparison is on label
    /// boundaries: a wire-byte suffix match alone would falsely accept
    /// names whose label *contents* happen to embed the ancestor's length
    /// bytes.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels > self.labels {
            return false;
        }
        let skip = self.label_offset((self.labels - ancestor.labels) as usize);
        self.wire.get(skip..) == Some(&*ancestor.wire)
    }

    /// Strictly below `ancestor` (subdomain but not equal).
    pub fn is_strict_subdomain_of(&self, ancestor: &Name) -> bool {
        self != ancestor && self.is_subdomain_of(ancestor)
    }

    /// Prepend a single label, e.g. `"_dsboot"` in front of a child name.
    pub fn prepend_label(&self, label: &[u8]) -> Result<Name, NameError> {
        if label.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(label.len()));
        }
        let mut wire = Vec::with_capacity(1 + label.len() + self.wire.len());
        wire.push(label.len() as u8);
        wire.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        wire.extend_from_slice(&self.wire);
        if wire.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire.len()));
        }
        Ok(Name::from_canonical_wire(wire, self.labels + 1))
    }

    /// Concatenate: `self` + `suffix` (self's labels first).
    pub fn concat(&self, suffix: &Name) -> Result<Name, NameError> {
        let mut wire = Vec::with_capacity(self.wire.len() - 1 + suffix.wire.len());
        if let Some((_root, stem)) = self.wire.split_last() {
            wire.extend_from_slice(stem);
        }
        wire.extend_from_slice(&suffix.wire);
        if wire.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wire.len()));
        }
        Ok(Name::from_canonical_wire(wire, self.labels + suffix.labels))
    }

    /// Strip `suffix` from the right, returning the remaining prefix labels
    /// as a relative stub. `None` when `self` is not under `suffix`.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Vec<Vec<u8>>> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        Some(
            self.labels()
                .take((self.labels - suffix.labels) as usize)
                .map(|l| l.to_vec())
                .collect(),
        )
    }

    /// Canonical DNSSEC ordering (RFC 4034 §6.1): compare label-by-label
    /// from the *right* (most significant first), each label as a
    /// lowercase octet string; absent labels sort first.
    pub fn canonical_cmp(&self, other: &Name) -> std::cmp::Ordering {
        // Label start offsets on the stack: a 255-octet name has ≤127
        // labels and every offset fits a byte.
        let mut offs_a = [0u8; 128];
        let mut offs_b = [0u8; 128];
        let na = collect_offsets(&self.wire, &mut offs_a);
        let nb = collect_offsets(&other.wire, &mut offs_b);
        let n = na.min(nb);
        for i in 1..=n {
            let la = offs_a
                .get(na - i)
                .map_or(&[] as &[u8], |&p| label_at(&self.wire, p as usize));
            let lb = offs_b
                .get(nb - i)
                .map_or(&[] as &[u8], |&p| label_at(&other.wire, p as usize));
            match la.cmp(lb) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        na.cmp(&nb)
    }

    /// Encode without compression into `out`.
    pub fn write_uncompressed(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.wire);
    }

    /// The uncompressed wire encoding as a fresh vector.
    pub fn to_wire(&self) -> Vec<u8> {
        self.wire.to_vec()
    }

    /// Presentation format with a trailing dot; the root is `"."`.
    pub fn to_string_fqdn(&self) -> String {
        if self.labels == 0 {
            return ".".to_string();
        }
        let mut s = String::new();
        for l in self.labels() {
            for &b in l {
                match b {
                    // Master-file metacharacters must be escaped so the
                    // presentation form survives a zone-file round trip
                    // (RFC 1035 §5.1).
                    b'.' | b'\\' | b';' | b'"' | b'(' | b')' | b'@' | b'$' => {
                        s.push('\\');
                        s.push(b as char);
                    }
                    0x21..=0x7e => s.push(b as char),
                    _ => s.push_str(&format!("\\{:03}", b)),
                }
            }
            s.push('.');
        }
        s
    }
}

/// Iterator over the labels of a canonical wire encoding.
struct LabelIter<'a> {
    wire: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let len = *self.wire.get(self.pos)? as usize;
        if len == 0 {
            return None;
        }
        let start = self.pos + 1;
        let label = self.wire.get(start..start + len)?;
        self.pos = start + len;
        Some(label)
    }
}

/// Fill `offs` with the start offset of every label in `wire`; returns
/// the label count.
fn collect_offsets(wire: &[u8], offs: &mut [u8; 128]) -> usize {
    let mut pos = 0usize;
    let mut n = 0usize;
    while let Some(&len) = wire.get(pos) {
        if len == 0 {
            break;
        }
        match offs.get_mut(n) {
            Some(slot) => *slot = pos as u8,
            // A canonical name has ≤127 labels; defend anyway.
            None => break,
        }
        n += 1;
        pos += len as usize + 1;
    }
    n
}

/// The label starting at `pos` in `wire` (empty if out of bounds).
fn label_at(wire: &[u8], pos: usize) -> &[u8] {
    let len = wire.get(pos).copied().unwrap_or(0) as usize;
    wire.get(pos + 1..pos + 1 + len).unwrap_or(&[])
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_fqdn())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.to_string_fqdn())
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Convenience: `name!("example.com")`-style construction in tests and
/// examples; panics on invalid input.
#[macro_export]
macro_rules! name {
    ($s:expr) => {
        // bootscan-allow(P001): compile-time literal helper for tests and examples; never fed network input
        $crate::name::Name::parse($s).expect("invalid name literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = Name::root();
        assert!(r.is_root());
        assert_eq!(r.label_count(), 0);
        assert_eq!(r.wire_len(), 1);
        assert_eq!(r.to_string_fqdn(), ".");
        assert_eq!(Name::parse(".").unwrap(), r);
        assert_eq!(Name::parse("").unwrap(), r);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let n = Name::parse("www.Example.COM.").unwrap();
        assert_eq!(n.to_string_fqdn(), "www.example.com.");
        assert_eq!(n.label_count(), 3);
        let again = Name::parse(&n.to_string_fqdn()).unwrap();
        assert_eq!(n, again);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(name!("ExAmPlE.Com"), name!("example.com"));
    }

    #[test]
    fn trailing_dot_optional() {
        assert_eq!(name!("example.com"), name!("example.com."));
    }

    #[test]
    fn empty_label_rejected() {
        assert_eq!(Name::parse("a..b"), Err(NameError::EmptyLabel));
    }

    #[test]
    fn label_too_long_rejected() {
        let l = "a".repeat(64);
        assert!(matches!(Name::parse(&l), Err(NameError::LabelTooLong(64))));
        assert!(Name::parse(&"a".repeat(63)).is_ok());
    }

    #[test]
    fn name_too_long_rejected() {
        // Four 63-byte labels: 4*64 + 1 = 257 > 255.
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(matches!(Name::parse(&s), Err(NameError::NameTooLong(_))));
        // Three labels: 3*64 + 1 = 193, fine.
        let s = format!("{l}.{l}.{l}");
        assert!(Name::parse(&s).is_ok());
    }

    #[test]
    fn signal_names_can_exceed_255_as_paper_notes() {
        // Section 2 of the paper: _dsboot.<long child>._signal.<long ns>
        // can exceed 255 octets — our constructor must reject it so the
        // ecosystem can model the "cannot be bootstrapped" case.
        let l = "a".repeat(63);
        let child = Name::parse(&format!("{l}.{l}.example")).unwrap();
        let ns = Name::parse(&format!("{l}.{l}.ns.example")).unwrap();
        let sig = ns.prepend_label(b"_signal").unwrap();
        let dsboot = child.prepend_label(b"_dsboot").unwrap();
        assert!(matches!(
            dsboot.concat(&sig),
            Err(NameError::NameTooLong(_))
        ));
    }

    #[test]
    fn escapes() {
        let n = Name::parse(r"a\.b.c").unwrap();
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.first_label().unwrap(), b"a.b");
        assert_eq!(n.to_string_fqdn(), r"a\.b.c.");
        let n = Name::parse(r"a\032b.c").unwrap();
        assert_eq!(n.first_label().unwrap(), b"a b");
        assert!(Name::parse(r"a\").is_err());
        assert!(Name::parse(r"a\25").is_err());
        assert!(Name::parse(r"a\999").is_err());
    }

    #[test]
    fn subdomain_relations() {
        let apex = name!("example.com");
        let www = name!("www.example.com");
        let other = name!("example.org");
        assert!(www.is_subdomain_of(&apex));
        assert!(www.is_strict_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!apex.is_strict_subdomain_of(&apex));
        assert!(!other.is_subdomain_of(&apex));
        assert!(www.is_subdomain_of(&Name::root()));
        // "badexample.com" must not match "example.com" (label, not string
        // suffix, comparison).
        assert!(!name!("badexample.com").is_subdomain_of(&apex));
    }

    #[test]
    fn parent_chain() {
        let n = name!("a.b.c");
        let p = n.parent().unwrap();
        assert_eq!(p, name!("b.c"));
        assert_eq!(p.parent().unwrap(), name!("c"));
        assert_eq!(p.parent().unwrap().parent().unwrap(), Name::root());
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn canonical_ordering_rfc4034_example() {
        // RFC 4034 §6.1 gives this sorted sequence.
        let sorted = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
            r"\001.z.example.",
            "*.z.example.",
            r"\200.z.example.",
        ];
        let names: Vec<Name> = sorted.iter().map(|s| Name::parse(s).unwrap()).collect();
        for w in names.windows(2) {
            assert_eq!(
                w[0].canonical_cmp(&w[1]),
                std::cmp::Ordering::Less,
                "{} should sort before {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn strip_suffix_and_concat() {
        let n = name!("_dsboot.example.co.uk._signal.ns1.example.net");
        let suffix = name!("_signal.ns1.example.net");
        let stub = n.strip_suffix(&suffix).unwrap();
        assert_eq!(stub.len(), 4);
        assert_eq!(stub[0], b"_dsboot");
        let rebuilt = Name::from_labels(stub).unwrap().concat(&suffix).unwrap();
        assert_eq!(rebuilt, n);
        assert!(n.strip_suffix(&name!("example.org")).is_none());
    }

    #[test]
    fn wire_roundtrip_uncompressed() {
        let n = name!("www.example.com");
        let w = n.to_wire();
        assert_eq!(w, b"\x03www\x07example\x03com\x00".to_vec());
        assert_eq!(w.len(), n.wire_len());
    }
}
