//! Canonical form and ordering of RRs (RFC 4034 §6) — the input to DNSSEC
//! signing and verification.
//!
//! Canonical form of an RR: owner name lowercased and uncompressed, TTL set
//! to the RRSIG's Original TTL, names inside RDATA (for the RFC 3597 §4
//! "well-known" types) lowercased and uncompressed. Canonical ordering of an
//! RRset sorts RRs by their canonical RDATA treated as an octet string.

use crate::name::Name;
use crate::rdata::RData;
use crate::record::{Record, RecordClass};
use crate::wire::WireWriter;
use std::cmp::Ordering;

/// A record rendered into canonical wire form, ready for hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalRecord {
    /// Owner name, lowercased (names are stored lowercase already).
    pub owner: Name,
    pub rtype: u16,
    pub class: u16,
    /// TTL to embed — callers pass the RRSIG "original TTL".
    pub ttl: u32,
    /// Canonical RDATA octets.
    pub rdata: Vec<u8>,
}

impl CanonicalRecord {
    /// Render a record into canonical form with the given TTL override.
    pub fn from_record(rec: &Record, original_ttl: u32) -> Self {
        CanonicalRecord {
            owner: rec.name.clone(),
            rtype: rec.rtype().code(),
            class: rec.class.code(),
            ttl: original_ttl,
            rdata: canonical_rdata(&rec.rdata),
        }
    }

    /// Serialise: owner | type | class | TTL | RDLENGTH | RDATA.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.owner.wire_len() + 10 + self.rdata.len());
        self.owner.write_uncompressed(&mut out);
        out.extend_from_slice(&self.rtype.to_be_bytes());
        out.extend_from_slice(&self.class.to_be_bytes());
        out.extend_from_slice(&self.ttl.to_be_bytes());
        out.extend_from_slice(&(self.rdata.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.rdata);
        out
    }
}

/// Canonical RDATA octets for an RDATA value: uncompressed, names already
/// lowercase (enforced by [`Name`]'s construction).
pub fn canonical_rdata(rdata: &RData) -> Vec<u8> {
    let mut w = WireWriter::new();
    // Compression never applies outside a full message; `WireWriter` only
    // compresses against names previously written to the *same* buffer, and
    // each RDATA is rendered into a fresh writer, so the output here is
    // uncompressed as required.
    w.without_compression(|w| rdata.write(w));
    w.into_bytes()
}

/// RFC 4034 §6.3 comparison of two RDATA values as canonical octet strings.
pub fn canonical_rdata_cmp(a: &RData, b: &RData) -> Ordering {
    canonical_rdata(a).cmp(&canonical_rdata(b))
}

/// Serialise a full RRset in canonical order with the RRSIG original TTL,
/// concatenating the canonical wire form of each RR. This is the exact byte
/// string that RFC 4034 §3.1.8.1 appends after the RRSIG RDATA prefix when
/// computing a signature.
pub fn canonical_rrset_wire(
    owner: &Name,
    class: RecordClass,
    original_ttl: u32,
    rdatas: &[RData],
) -> Vec<u8> {
    let mut sorted: Vec<&RData> = rdatas.iter().collect();
    sorted.sort_by(|a, b| canonical_rdata_cmp(a, b));
    sorted.dedup_by(|a, b| canonical_rdata_cmp(a, b) == Ordering::Equal);
    let mut out = Vec::new();
    for rd in sorted {
        let rec = Record {
            name: owner.clone(),
            class,
            ttl: original_ttl,
            rdata: (*rd).clone(),
        };
        out.extend_from_slice(&CanonicalRecord::from_record(&rec, original_ttl).to_wire());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;
    use std::net::Ipv4Addr;

    #[test]
    fn canonical_wire_is_order_independent() {
        let owner = name!("example.com");
        let a = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        let b = RData::A(Ipv4Addr::new(192, 0, 2, 2));
        let w1 = canonical_rrset_wire(&owner, RecordClass::In, 300, &[a.clone(), b.clone()]);
        let w2 = canonical_rrset_wire(&owner, RecordClass::In, 300, &[b, a]);
        assert_eq!(w1, w2);
    }

    #[test]
    fn canonical_wire_dedupes() {
        let owner = name!("example.com");
        let a = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        let w1 = canonical_rrset_wire(&owner, RecordClass::In, 300, &[a.clone(), a.clone()]);
        let w2 = canonical_rrset_wire(&owner, RecordClass::In, 300, &[a]);
        assert_eq!(w1, w2);
    }

    #[test]
    fn ttl_override_changes_bytes() {
        let owner = name!("example.com");
        let a = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        let w1 = canonical_rrset_wire(&owner, RecordClass::In, 300, std::slice::from_ref(&a));
        let w2 = canonical_rrset_wire(&owner, RecordClass::In, 600, &[a]);
        assert_ne!(w1, w2);
    }

    #[test]
    fn rdata_names_uncompressed_and_lowercase() {
        let rd = RData::Ns(name!("NS1.Example.COM"));
        let bytes = canonical_rdata(&rd);
        assert_eq!(bytes, b"\x03ns1\x07example\x03com\x00".to_vec());
    }

    #[test]
    fn rdata_ordering_is_bytewise() {
        let a = RData::A(Ipv4Addr::new(10, 0, 0, 1));
        let b = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(canonical_rdata_cmp(&a, &b), Ordering::Less);
        assert_eq!(canonical_rdata_cmp(&b, &a), Ordering::Greater);
        assert_eq!(canonical_rdata_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn canonical_record_layout() {
        let rec = Record::new(
            name!("a.example"),
            999,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        let c = CanonicalRecord::from_record(&rec, 300);
        let w = c.to_wire();
        // owner (11) + type(2)+class(2)+ttl(4)+rdlen(2)+rdata(4)
        assert_eq!(w.len(), 11 + 10 + 4);
        // TTL replaced by original TTL 300.
        assert_eq!(&w[15..19], &300u32.to_be_bytes());
        // RDLENGTH = 4.
        assert_eq!(&w[19..21], &4u16.to_be_bytes());
    }
}
