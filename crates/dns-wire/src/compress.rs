//! The compressing message writer (RFC 1035 §4.1.4).
//!
//! Split out of [`crate::wire`] so the panic-safety lint scope can cover
//! the decode module without the encoder: a [`WireWriter`] only ever
//! consumes `Name` values whose canonical wire buffers were validated at
//! construction, so its internal offset arithmetic is in-bounds by
//! invariant, never by the grace of network input. Roundtrip coverage
//! stays with the reader tests in `wire.rs`.

use crate::name::Name;
use std::collections::HashMap;

/// Message writer with label compression.
pub struct WireWriter {
    buf: Vec<u8>,
    /// Offsets of previously written names, keyed by the canonical wire
    /// bytes of the name suffix they start; only offsets < 0x4000 are
    /// usable as pointer targets.
    offsets: HashMap<Vec<u8>, usize>,
    /// When false (inside RDATA of types whose RDATA must not be
    /// compressed per RFC 3597 §4), names are written uncompressed.
    compress: bool,
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter {
            buf: Vec::with_capacity(512),
            offsets: HashMap::new(),
            compress: true,
        }
    }

    /// Current length of the encoded message.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the message bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn write_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Overwrite a previously-written u16 (e.g. RDLENGTH backpatching).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Run `f` with compression disabled (for RDATA of "new" types whose
    /// embedded names must be uncompressed, RFC 3597 §4).
    pub fn without_compression<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.compress;
        self.compress = false;
        let r = f(self);
        self.compress = prev;
        r
    }

    /// Write a domain name, emitting a compression pointer when a suffix of
    /// it has been written before.
    pub fn write_name(&mut self, name: &Name) {
        if !self.compress {
            name.write_uncompressed(&mut self.buf);
            return;
        }
        // Walk suffixes from the full name down, looking for a known one.
        // Suffix keys are slices of the name's canonical wire form — no
        // intermediate `Name` construction on this path.
        let wire = name.wire_bytes();
        let mut starts: Vec<usize> = Vec::with_capacity(name.label_count());
        let mut pos = 0usize;
        while wire[pos] != 0 {
            starts.push(pos);
            pos += wire[pos] as usize + 1;
        }
        for (skip, &start) in starts.iter().enumerate() {
            if let Some(&off) = self.offsets.get(&wire[start..]) {
                // Emit labels up to `skip`, then a pointer.
                for &s in &starts[..skip] {
                    let here = self.buf.len();
                    if here < 0x4000 {
                        self.offsets.entry(wire[s..].to_vec()).or_insert(here);
                    }
                    self.buf
                        .extend_from_slice(&wire[s..s + wire[s] as usize + 1]);
                }
                self.write_u16(0xc000 | off as u16);
                return;
            }
        }
        // No suffix known: write all labels, remembering each suffix.
        for &s in &starts {
            let here = self.buf.len();
            if here < 0x4000 {
                self.offsets.entry(wire[s..].to_vec()).or_insert(here);
            }
            self.buf
                .extend_from_slice(&wire[s..s + wire[s] as usize + 1]);
        }
        self.buf.push(0);
    }
}
