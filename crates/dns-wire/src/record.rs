//! Resource records, record types/classes, and RRsets.

use crate::name::Name;
use crate::rdata::RData;
use crate::wire::{WireError, WireReader, WireWriter};
use std::fmt;

/// DNS record types. Values per the IANA registry; unknown values are
/// carried verbatim (RFC 3597).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    A,
    Ns,
    Cname,
    Soa,
    Mx,
    Txt,
    Aaaa,
    Opt,
    Ds,
    Rrsig,
    Nsec,
    Dnskey,
    Nsec3,
    Nsec3param,
    Cds,
    Cdnskey,
    /// CSYNC (RFC 7477) — the child-to-parent synchronisation record the
    /// paper's conclusion names as future work.
    Csync,
    /// Any other type, carried by value.
    Unknown(u16),
}

impl RecordType {
    /// Numeric type code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Ds => 43,
            RecordType::Rrsig => 46,
            RecordType::Nsec => 47,
            RecordType::Dnskey => 48,
            RecordType::Nsec3 => 50,
            RecordType::Nsec3param => 51,
            RecordType::Cds => 59,
            RecordType::Cdnskey => 60,
            RecordType::Csync => 62,
            RecordType::Unknown(v) => v,
        }
    }

    /// From a numeric type code.
    pub fn from_code(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            43 => RecordType::Ds,
            46 => RecordType::Rrsig,
            47 => RecordType::Nsec,
            48 => RecordType::Dnskey,
            50 => RecordType::Nsec3,
            51 => RecordType::Nsec3param,
            59 => RecordType::Cds,
            60 => RecordType::Cdnskey,
            62 => RecordType::Csync,
            other => RecordType::Unknown(other),
        }
    }

    /// Mnemonic for presentation format; unknown types use the RFC 3597
    /// `TYPE12345` form.
    pub fn mnemonic(self) -> String {
        match self {
            RecordType::A => "A".into(),
            RecordType::Ns => "NS".into(),
            RecordType::Cname => "CNAME".into(),
            RecordType::Soa => "SOA".into(),
            RecordType::Mx => "MX".into(),
            RecordType::Txt => "TXT".into(),
            RecordType::Aaaa => "AAAA".into(),
            RecordType::Opt => "OPT".into(),
            RecordType::Ds => "DS".into(),
            RecordType::Rrsig => "RRSIG".into(),
            RecordType::Nsec => "NSEC".into(),
            RecordType::Dnskey => "DNSKEY".into(),
            RecordType::Nsec3 => "NSEC3".into(),
            RecordType::Nsec3param => "NSEC3PARAM".into(),
            RecordType::Cds => "CDS".into(),
            RecordType::Cdnskey => "CDNSKEY".into(),
            RecordType::Csync => "CSYNC".into(),
            RecordType::Unknown(v) => format!("TYPE{v}"),
        }
    }

    /// Parse a presentation-format mnemonic (including `TYPEnnn`).
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "A" => RecordType::A,
            "NS" => RecordType::Ns,
            "CNAME" => RecordType::Cname,
            "SOA" => RecordType::Soa,
            "MX" => RecordType::Mx,
            "TXT" => RecordType::Txt,
            "AAAA" => RecordType::Aaaa,
            "OPT" => RecordType::Opt,
            "DS" => RecordType::Ds,
            "RRSIG" => RecordType::Rrsig,
            "NSEC" => RecordType::Nsec,
            "DNSKEY" => RecordType::Dnskey,
            "NSEC3" => RecordType::Nsec3,
            "NSEC3PARAM" => RecordType::Nsec3param,
            "CDS" => RecordType::Cds,
            "CDNSKEY" => RecordType::Cdnskey,
            "CSYNC" => RecordType::Csync,
            _ => {
                let n = up.strip_prefix("TYPE")?.parse::<u16>().ok()?;
                RecordType::from_code(n)
            }
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// DNS classes. Only `IN` matters for this work; others are carried by
/// value for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    In,
    Ch,
    Hs,
    Any,
    Unknown(u16),
}

impl RecordClass {
    pub fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Hs => 4,
            RecordClass::Any => 255,
            RecordClass::Unknown(v) => v,
        }
    }

    pub fn from_code(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            4 => RecordClass::Hs,
            255 => RecordClass::Any,
            other => RecordClass::Unknown(other),
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordClass::In => write!(f, "IN"),
            RecordClass::Ch => write!(f, "CH"),
            RecordClass::Hs => write!(f, "HS"),
            RecordClass::Any => write!(f, "ANY"),
            RecordClass::Unknown(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// A single resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub name: Name,
    pub class: RecordClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class `IN`.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// The record's type, derived from its RDATA.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// Encode into `w`, including the RDLENGTH backpatch.
    pub fn write(&self, w: &mut WireWriter) {
        w.write_name(&self.name);
        w.write_u16(self.rtype().code());
        w.write_u16(self.class.code());
        w.write_u32(self.ttl);
        let len_at = w.len();
        w.write_u16(0);
        let start = w.len();
        self.rdata.write(w);
        let rdlen = w.len() - start;
        w.patch_u16(len_at, rdlen as u16);
    }

    /// Decode a record at the reader's cursor.
    pub fn read(r: &mut WireReader) -> Result<Record, WireError> {
        let name = r.read_name()?;
        let rtype = RecordType::from_code(r.read_u16()?);
        let class = RecordClass::from_code(r.read_u16()?);
        let ttl = r.read_u32()?;
        let rdlen = r.read_u16()? as usize;
        let end = r.position() + rdlen;
        if end > r.position() + r.remaining() {
            return Err(WireError::Truncated);
        }
        let rdata = RData::read(r, rtype, rdlen)?;
        if r.position() != end {
            return Err(WireError::RdataLength {
                expected: rdlen,
                actual: r.position() + rdlen - end,
            });
        }
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rtype().mnemonic(),
            self.rdata.presentation()
        )
    }
}

/// An RRset: all records sharing (name, class, type). DNSSEC signs RRsets,
/// not individual records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrSet {
    pub name: Name,
    pub class: RecordClass,
    pub rtype: RecordType,
    pub ttl: u32,
    pub rdatas: Vec<RData>,
}

impl RrSet {
    /// Group records into RRsets, preserving first-seen order of sets.
    pub fn group(records: &[Record]) -> Vec<RrSet> {
        let mut sets: Vec<RrSet> = Vec::new();
        for rec in records {
            if let Some(set) = sets
                .iter_mut()
                .find(|s| s.name == rec.name && s.class == rec.class && s.rtype == rec.rtype())
            {
                set.ttl = set.ttl.min(rec.ttl);
                if !set.rdatas.contains(&rec.rdata) {
                    set.rdatas.push(rec.rdata.clone());
                }
            } else {
                sets.push(RrSet {
                    name: rec.name.clone(),
                    class: rec.class,
                    rtype: rec.rtype(),
                    ttl: rec.ttl,
                    rdatas: vec![rec.rdata.clone()],
                });
            }
        }
        sets
    }

    /// Expand back into individual records.
    pub fn records(&self) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record {
                name: self.name.clone(),
                class: self.class,
                ttl: self.ttl,
                rdata: rd.clone(),
            })
            .collect()
    }

    /// Set-equality of RDATA contents, ignoring order and TTL. This is the
    /// comparison the paper's consistency checks use: "all NSes return the
    /// same CDS RRs".
    pub fn same_rdatas(&self, other: &RrSet) -> bool {
        if self.rtype != other.rtype || self.rdatas.len() != other.rdatas.len() {
            return false;
        }
        self.rdatas.iter().all(|r| other.rdatas.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;
    use std::net::Ipv4Addr;

    #[test]
    fn type_codes_roundtrip() {
        for code in [
            1u16, 2, 5, 6, 15, 16, 28, 41, 43, 46, 47, 48, 50, 51, 59, 60, 61, 62, 9999,
        ] {
            assert_eq!(RecordType::from_code(code).code(), code);
        }
    }

    #[test]
    fn cds_and_cdnskey_codes() {
        // RFC 7344 assignments, load-bearing for this paper.
        assert_eq!(RecordType::Cds.code(), 59);
        assert_eq!(RecordType::Cdnskey.code(), 60);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Soa,
            RecordType::Dnskey,
            RecordType::Rrsig,
            RecordType::Nsec,
            RecordType::Nsec3,
            RecordType::Cds,
            RecordType::Cdnskey,
            RecordType::Unknown(4242),
        ] {
            assert_eq!(RecordType::from_mnemonic(&t.mnemonic()), Some(t));
        }
        assert_eq!(RecordType::from_mnemonic("bogus"), None);
    }

    #[test]
    fn record_wire_roundtrip() {
        let rec = Record::new(
            name!("www.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        let mut w = WireWriter::new();
        rec.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Record::read(&mut r).unwrap();
        assert_eq!(back, rec);
        assert!(r.is_empty());
    }

    #[test]
    fn rrset_grouping_and_equality() {
        let a = Record::new(name!("x.test"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        let b = Record::new(name!("x.test"), 200, RData::A(Ipv4Addr::new(192, 0, 2, 2)));
        let c = Record::new(name!("x.test"), 300, RData::Ns(name!("ns.test")));
        let sets = RrSet::group(&[a, b, c]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].rdatas.len(), 2);
        assert_eq!(sets[0].ttl, 200); // min TTL
        let mut reordered = sets[0].clone();
        reordered.rdatas.reverse();
        assert!(sets[0].same_rdatas(&reordered));
        assert!(!sets[0].same_rdatas(&sets[1]));
    }

    #[test]
    fn grouping_dedupes_identical_rdata() {
        let a = Record::new(name!("x.test"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        let sets = RrSet::group(&[a.clone(), a]);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].rdatas.len(), 1);
    }
}
