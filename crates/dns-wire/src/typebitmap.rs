//! NSEC / NSEC3 type bitmaps (RFC 4034 §4.1.2).
//!
//! A bitmap is a list of (window, length, bits) blocks; type `t` lives in
//! window `t >> 8`, bit `t & 0xff`. Windows with no set bits are omitted,
//! and each window's bitmap is truncated to its last non-zero byte.

use crate::record::RecordType;
use crate::wire::WireError;
use std::collections::BTreeSet;

/// An ordered set of record types as used in NSEC-family records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeBitmap {
    types: BTreeSet<u16>,
}

impl TypeBitmap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of record types.
    pub fn from_types<I: IntoIterator<Item = RecordType>>(types: I) -> Self {
        TypeBitmap {
            types: types.into_iter().map(|t| t.code()).collect(),
        }
    }

    pub fn insert(&mut self, t: RecordType) {
        self.types.insert(t.code());
    }

    pub fn contains(&self, t: RecordType) -> bool {
        self.types.contains(&t.code())
    }

    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Types in ascending code order.
    pub fn iter(&self) -> impl Iterator<Item = RecordType> + '_ {
        self.types.iter().map(|&c| RecordType::from_code(c))
    }

    /// Encode to wire format, appending to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        let mut window: Option<u8> = None;
        let mut bits = [0u8; 32];
        let flush = |w: u8, bits: &mut [u8; 32], out: &mut Vec<u8>| {
            let last = bits.iter().rposition(|&b| b != 0);
            if let Some(last) = last {
                out.push(w);
                out.push((last + 1) as u8);
                out.extend(bits.iter().take(last + 1));
            }
            *bits = [0u8; 32];
        };
        for &t in &self.types {
            let w = (t >> 8) as u8;
            if window != Some(w) {
                if let Some(prev) = window {
                    flush(prev, &mut bits, out);
                }
                window = Some(w);
            }
            let lo = (t & 0xff) as usize;
            if let Some(byte) = bits.get_mut(lo / 8) {
                *byte |= 0x80 >> (lo % 8);
            }
        }
        if let Some(w) = window {
            flush(w, &mut bits, out);
        }
    }

    /// Decode from a complete RDATA tail.
    pub fn read(buf: &[u8]) -> Result<Self, WireError> {
        let mut types = BTreeSet::new();
        let mut rest = buf;
        let mut prev_window: Option<u8> = None;
        while let Some((&window, tail)) = rest.split_first() {
            let (&len, tail) = tail.split_first().ok_or(WireError::Truncated)?;
            let len = len as usize;
            if len == 0 || len > 32 {
                return Err(WireError::BadValue("type bitmap window length"));
            }
            if let Some(p) = prev_window {
                if window <= p {
                    return Err(WireError::BadValue("type bitmap window order"));
                }
            }
            prev_window = Some(window);
            if tail.len() < len {
                return Err(WireError::Truncated);
            }
            let (bits, tail) = tail.split_at(len);
            for (byte_idx, &b) in bits.iter().enumerate() {
                for bit in 0..8 {
                    if b & (0x80 >> bit) != 0 {
                        types.insert((window as u16) << 8 | (byte_idx as u16 * 8 + bit as u16));
                    }
                }
            }
            rest = tail;
        }
        Ok(TypeBitmap { types })
    }

    /// Presentation format: space-separated mnemonics in code order.
    pub fn presentation(&self) -> String {
        self.iter()
            .map(|t| t.mnemonic())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let bm = TypeBitmap::from_types([
            RecordType::A,
            RecordType::Ns,
            RecordType::Soa,
            RecordType::Rrsig,
            RecordType::Nsec,
            RecordType::Dnskey,
        ]);
        let mut out = Vec::new();
        bm.write(&mut out);
        let back = TypeBitmap::read(&out).unwrap();
        assert_eq!(back, bm);
        assert!(back.contains(RecordType::Dnskey));
        assert!(!back.contains(RecordType::Cds));
    }

    #[test]
    fn multiple_windows() {
        // Type 1 (window 0) and an unknown type 0x1234 (window 0x12).
        let bm = TypeBitmap::from_types([RecordType::A, RecordType::Unknown(0x1234)]);
        let mut out = Vec::new();
        bm.write(&mut out);
        let back = TypeBitmap::read(&out).unwrap();
        assert_eq!(back, bm);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_bitmap_is_zero_bytes() {
        let bm = TypeBitmap::new();
        let mut out = Vec::new();
        bm.write(&mut out);
        assert!(out.is_empty());
        assert!(TypeBitmap::read(&[]).unwrap().is_empty());
    }

    #[test]
    fn wire_is_minimal() {
        // Only type A (bit 1 of window 0): window 0, length 1, one byte.
        let bm = TypeBitmap::from_types([RecordType::A]);
        let mut out = Vec::new();
        bm.write(&mut out);
        assert_eq!(out, vec![0x00, 0x01, 0x40]);
    }

    #[test]
    fn bad_window_length_rejected() {
        assert!(TypeBitmap::read(&[0x00, 0x00]).is_err());
        assert!(TypeBitmap::read(&[0x00, 33]).is_err());
    }

    #[test]
    fn out_of_order_windows_rejected() {
        // Window 1 then window 0.
        let mut out = Vec::new();
        TypeBitmap::from_types([RecordType::Unknown(0x0100)]).write(&mut out);
        TypeBitmap::from_types([RecordType::A]).write(&mut out);
        assert!(TypeBitmap::read(&out).is_err());
    }

    #[test]
    fn presentation_order() {
        let bm = TypeBitmap::from_types([RecordType::Rrsig, RecordType::A, RecordType::Ns]);
        assert_eq!(bm.presentation(), "A NS RRSIG");
    }
}
