//! # dns-wire — DNS wire & presentation format, from scratch
//!
//! A dependency-free implementation of the DNS data model used by the
//! reproduction of *"Measuring the Deployment of DNSSEC Bootstrapping Using
//! Authenticated Signals"* (IMC 2025):
//!
//! * [`Name`] — domain names with case-insensitive equality, canonical
//!   (RFC 4034 §6.1) ordering, and the length limits of RFC 1035.
//! * [`Message`] — full DNS message encode/decode with label compression,
//!   EDNS(0) (RFC 6891) and the DO bit.
//! * [`RData`] — typed record data for every record type the paper touches
//!   (`A`, `AAAA`, `NS`, `SOA`, `CNAME`, `TXT`, `MX`, `DNSKEY`, `RRSIG`,
//!   `DS`, `NSEC`, `NSEC3`, `NSEC3PARAM`, `CDS`, `CDNSKEY`, `OPT`) plus
//!   RFC 3597 opaque handling for unknown types.
//! * Canonical form and canonical RRset ordering (RFC 4034 §6) used for
//!   DNSSEC signing and validation.
//! * A presentation-format (zone file) parser and serialiser.
//!
//! The crate is deliberately synchronous and allocation-conscious in the
//! spirit of `smoltcp`: simple, explicit framing with no macro tricks.

#![forbid(unsafe_code)]

pub mod canonical;
pub mod compress;
pub mod message;
pub mod name;
pub mod presentation;
pub mod rdata;
pub mod record;
pub mod typebitmap;
pub mod wire;

pub use canonical::{canonical_rdata_cmp, canonical_rrset_wire, CanonicalRecord};
pub use message::{Flags, Header, Message, Opcode, Question, Rcode};
pub use name::{Name, NameError};
pub use rdata::RData;
pub use record::{Record, RecordClass, RecordType, RrSet};
pub use wire::{WireError, WireReader, WireWriter};

/// The conventional maximum UDP payload advertised via EDNS(0) after the
/// 2020 DNS Flag Day: responses larger than this are truncated and the
/// client retries over TCP.
pub const EDNS_UDP_PAYLOAD: u16 = 1232;

/// Classic (pre-EDNS) UDP payload limit of RFC 1035.
pub const CLASSIC_UDP_PAYLOAD: u16 = 512;
