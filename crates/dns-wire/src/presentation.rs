//! Zone-file (master file, RFC 1035 §5) parsing and serialisation.
//!
//! Supports the subset the reproduction needs: `$ORIGIN` / `$TTL`
//! directives, one record per line, `@` for the origin, relative names,
//! comments, and the presentation formats emitted by
//! [`RData::presentation`](crate::rdata::RData::presentation) (hex blobs for
//! key/signature material, `\# n hex` for unknown types). Multi-line
//! parenthesised records are intentionally out of scope — our serialiser
//! never emits them.

use crate::name::Name;
use crate::rdata::{
    unhex, CsyncData, DnskeyData, DsData, Nsec3Data, Nsec3ParamData, NsecData, RData, RrsigData,
    SoaData,
};
use crate::record::{Record, RecordClass, RecordType};
use crate::typebitmap::TypeBitmap;
use std::fmt;

/// Errors raised by the zone-file parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete zone file into records.
///
/// `default_origin` seeds `$ORIGIN`; a `$ORIGIN` directive in the file
/// overrides it.
pub fn parse_zone_file(text: &str, default_origin: &Name) -> Result<Vec<Record>, ParseError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut records = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        let starts_with_ws = line.starts_with(' ') || line.starts_with('\t');
        let tokens = tokenize(line).map_err(|reason| ParseError {
            line: lineno,
            reason,
        })?;
        if tokens.is_empty() {
            continue;
        }
        if tokens[0] == "$ORIGIN" {
            let n = tokens.get(1).ok_or_else(|| ParseError {
                line: lineno,
                reason: "$ORIGIN needs a name".into(),
            })?;
            origin = Name::parse(n).map_err(|e| ParseError {
                line: lineno,
                reason: e.to_string(),
            })?;
            continue;
        }
        if tokens[0] == "$TTL" {
            default_ttl = tokens
                .get(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseError {
                    line: lineno,
                    reason: "$TTL needs a number".into(),
                })?;
            continue;
        }

        let mut i = 0;
        // Owner: blank start means "previous owner".
        let owner = if starts_with_ws {
            last_owner.clone().ok_or_else(|| ParseError {
                line: lineno,
                reason: "record with no owner and no previous owner".into(),
            })?
        } else {
            let tok = &tokens[0];
            i = 1;
            resolve_name(tok, &origin).map_err(|reason| ParseError {
                line: lineno,
                reason,
            })?
        };

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut class = RecordClass::In;
        loop {
            let Some(tok) = tokens.get(i) else {
                return Err(ParseError {
                    line: lineno,
                    reason: "record is missing a type".into(),
                });
            };
            if let Ok(n) = tok.parse::<u32>() {
                ttl = n;
                i += 1;
            } else if tok.eq_ignore_ascii_case("IN") {
                class = RecordClass::In;
                i += 1;
            } else if tok.eq_ignore_ascii_case("CH") {
                class = RecordClass::Ch;
                i += 1;
            } else {
                break;
            }
        }
        let type_tok = &tokens[i];
        let rtype = RecordType::from_mnemonic(type_tok).ok_or_else(|| ParseError {
            line: lineno,
            reason: format!("unknown record type {type_tok}"),
        })?;
        i += 1;
        let rdata = parse_rdata(rtype, &tokens[i..], &origin).map_err(|reason| ParseError {
            line: lineno,
            reason,
        })?;
        last_owner = Some(owner.clone());
        records.push(Record {
            name: owner,
            class,
            ttl,
            rdata,
        });
    }
    Ok(records)
}

/// Serialise records into zone-file text with a `$ORIGIN` header.
///
/// Names are written fully qualified, so the output is origin-independent
/// and round-trips through [`parse_zone_file`].
pub fn to_zone_file(origin: &Name, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {origin}\n"));
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

fn strip_comment(line: &str) -> &str {
    // A ';' starts a comment unless inside a quoted string or escaped.
    let mut in_quote = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1, // skip the escaped character everywhere
            b'"' => in_quote = !in_quote,
            b';' if !in_quote => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    let mut chars = line.chars().peekable();
    let mut quoted_token = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quote {
                    // Closing quote: push even if empty (empty TXT string).
                    tokens.push(format!("\"{cur}"));
                    cur.clear();
                    in_quote = false;
                    quoted_token = false;
                } else {
                    in_quote = true;
                    quoted_token = true;
                }
            }
            '\\' => {
                // Keep escapes verbatim (the name/TXT parsers decode
                // them); a backslash protects the next character both
                // inside and outside quotes, so `\"` in a name token does
                // not open a string.
                cur.push('\\');
                if let Some(&n) = chars.peek() {
                    cur.push(n);
                    chars.next();
                }
            }
            c if c.is_whitespace() && !in_quote => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quote {
        return Err("unterminated quoted string".into());
    }
    if !cur.is_empty() || quoted_token {
        tokens.push(cur);
    }
    Ok(tokens)
}

fn resolve_name(tok: &str, origin: &Name) -> Result<Name, String> {
    if tok == "@" {
        return Ok(origin.clone());
    }
    if tok.ends_with('.') && !tok.ends_with("\\.") {
        return Name::parse(tok).map_err(|e| e.to_string());
    }
    let rel = Name::parse(tok).map_err(|e| e.to_string())?;
    rel.concat(origin).map_err(|e| e.to_string())
}

fn parse_u8(tok: Option<&String>, what: &str) -> Result<u8, String> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad or missing {what}"))
}

fn parse_u16(tok: Option<&String>, what: &str) -> Result<u16, String> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad or missing {what}"))
}

fn parse_u32(tok: Option<&String>, what: &str) -> Result<u32, String> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad or missing {what}"))
}

fn parse_name_tok(tok: Option<&String>, origin: &Name, what: &str) -> Result<Name, String> {
    let t = tok.ok_or_else(|| format!("missing {what}"))?;
    resolve_name(t, origin)
}

fn parse_hex_tok(tok: Option<&String>, what: &str) -> Result<Vec<u8>, String> {
    let t = tok.ok_or_else(|| format!("missing {what}"))?;
    unhex(t).ok_or_else(|| format!("bad hex in {what}"))
}

fn parse_rdata(rtype: RecordType, toks: &[String], origin: &Name) -> Result<RData, String> {
    // RFC 3597 generic form works for any type.
    if toks.first().map(String::as_str) == Some("\\#") {
        let len: usize = toks
            .get(1)
            .and_then(|t| t.parse().ok())
            .ok_or("bad \\# length")?;
        let data = if len == 0 {
            Vec::new()
        } else {
            parse_hex_tok(toks.get(2), "\\# data")?
        };
        if data.len() != len {
            return Err("\\# length mismatch".into());
        }
        return Ok(match rtype {
            RecordType::Opt => RData::Opt(data),
            other => RData::Unknown {
                rtype: other.code(),
                data,
            },
        });
    }
    Ok(match rtype {
        RecordType::A => {
            let t = toks.first().ok_or("missing address")?;
            RData::A(t.parse().map_err(|_| "bad IPv4 address")?)
        }
        RecordType::Aaaa => {
            let t = toks.first().ok_or("missing address")?;
            RData::Aaaa(t.parse().map_err(|_| "bad IPv6 address")?)
        }
        RecordType::Ns => RData::Ns(parse_name_tok(toks.first(), origin, "NS target")?),
        RecordType::Cname => RData::Cname(parse_name_tok(toks.first(), origin, "CNAME target")?),
        RecordType::Mx => RData::Mx {
            preference: parse_u16(toks.first(), "MX preference")?,
            exchange: parse_name_tok(toks.get(1), origin, "MX exchange")?,
        },
        RecordType::Txt => {
            let mut strings = Vec::new();
            for t in toks {
                let s = t.strip_prefix('"').ok_or("TXT strings must be quoted")?;
                strings.push(txt_unescape(s)?);
            }
            RData::Txt(strings)
        }
        RecordType::Soa => RData::Soa(SoaData {
            mname: parse_name_tok(toks.first(), origin, "SOA mname")?,
            rname: parse_name_tok(toks.get(1), origin, "SOA rname")?,
            serial: parse_u32(toks.get(2), "SOA serial")?,
            refresh: parse_u32(toks.get(3), "SOA refresh")?,
            retry: parse_u32(toks.get(4), "SOA retry")?,
            expire: parse_u32(toks.get(5), "SOA expire")?,
            minimum: parse_u32(toks.get(6), "SOA minimum")?,
        }),
        RecordType::Dnskey | RecordType::Cdnskey => {
            let d = DnskeyData {
                flags: parse_u16(toks.first(), "DNSKEY flags")?,
                protocol: parse_u8(toks.get(1), "DNSKEY protocol")?,
                algorithm: parse_u8(toks.get(2), "DNSKEY algorithm")?,
                public_key: parse_hex_tok(toks.get(3), "DNSKEY key")?,
            };
            if rtype == RecordType::Dnskey {
                RData::Dnskey(d)
            } else {
                RData::Cdnskey(d)
            }
        }
        RecordType::Ds | RecordType::Cds => {
            let d = DsData {
                key_tag: parse_u16(toks.first(), "DS key tag")?,
                algorithm: parse_u8(toks.get(1), "DS algorithm")?,
                digest_type: parse_u8(toks.get(2), "DS digest type")?,
                digest: parse_hex_tok(toks.get(3), "DS digest")?,
            };
            if rtype == RecordType::Ds {
                RData::Ds(d)
            } else {
                RData::Cds(d)
            }
        }
        RecordType::Rrsig => {
            let covered = toks.first().ok_or("missing RRSIG type covered")?;
            let type_covered = RecordType::from_mnemonic(covered)
                .ok_or("bad RRSIG type covered")?
                .code();
            RData::Rrsig(RrsigData {
                type_covered,
                algorithm: parse_u8(toks.get(1), "RRSIG algorithm")?,
                labels: parse_u8(toks.get(2), "RRSIG labels")?,
                original_ttl: parse_u32(toks.get(3), "RRSIG original TTL")?,
                expiration: parse_u32(toks.get(4), "RRSIG expiration")?,
                inception: parse_u32(toks.get(5), "RRSIG inception")?,
                key_tag: parse_u16(toks.get(6), "RRSIG key tag")?,
                signer_name: parse_name_tok(toks.get(7), origin, "RRSIG signer")?,
                signature: parse_hex_tok(toks.get(8), "RRSIG signature")?,
            })
        }
        RecordType::Nsec => {
            let next_name = parse_name_tok(toks.first(), origin, "NSEC next name")?;
            let types = toks[1..]
                .iter()
                .map(|t| RecordType::from_mnemonic(t).ok_or(format!("bad type {t}")))
                .collect::<Result<Vec<_>, _>>()?;
            RData::Nsec(NsecData {
                next_name,
                types: TypeBitmap::from_types(types),
            })
        }
        RecordType::Nsec3 => {
            let hash_algorithm = parse_u8(toks.first(), "NSEC3 hash alg")?;
            let flags = parse_u8(toks.get(1), "NSEC3 flags")?;
            let iterations = parse_u16(toks.get(2), "NSEC3 iterations")?;
            let salt_tok = toks.get(3).ok_or("missing NSEC3 salt")?;
            let salt = if salt_tok == "-" {
                Vec::new()
            } else {
                unhex(salt_tok).ok_or("bad NSEC3 salt hex")?
            };
            let next_hashed = parse_hex_tok(toks.get(4), "NSEC3 next hash")?;
            let types = toks[5..]
                .iter()
                .map(|t| RecordType::from_mnemonic(t).ok_or(format!("bad type {t}")))
                .collect::<Result<Vec<_>, _>>()?;
            RData::Nsec3(Nsec3Data {
                hash_algorithm,
                flags,
                iterations,
                salt,
                next_hashed,
                types: TypeBitmap::from_types(types),
            })
        }
        RecordType::Nsec3param => {
            let salt_tok = toks.get(3).ok_or("missing NSEC3PARAM salt")?;
            RData::Nsec3param(Nsec3ParamData {
                hash_algorithm: parse_u8(toks.first(), "hash alg")?,
                flags: parse_u8(toks.get(1), "flags")?,
                iterations: parse_u16(toks.get(2), "iterations")?,
                salt: if salt_tok == "-" {
                    Vec::new()
                } else {
                    unhex(salt_tok).ok_or("bad salt hex")?
                },
            })
        }
        RecordType::Csync => {
            let types = toks[2..]
                .iter()
                .map(|t| RecordType::from_mnemonic(t).ok_or(format!("bad type {t}")))
                .collect::<Result<Vec<_>, _>>()?;
            RData::Csync(CsyncData {
                serial: parse_u32(toks.first(), "CSYNC serial")?,
                flags: parse_u16(toks.get(1), "CSYNC flags")?,
                types: TypeBitmap::from_types(types),
            })
        }
        RecordType::Opt => return Err("OPT records do not appear in zone files".into()),
        RecordType::Unknown(_) => return Err("unknown types need \\# syntax".into()),
    })
}

fn txt_unescape(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            if i + 1 >= bytes.len() {
                return Err("dangling escape in TXT".into());
            }
            if bytes[i + 1].is_ascii_digit() {
                if i + 3 >= bytes.len() {
                    return Err("bad decimal escape in TXT".into());
                }
                let v: u32 = s[i + 1..i + 4].parse().map_err(|_| "bad decimal escape")?;
                if v > 255 {
                    return Err("decimal escape out of range".into());
                }
                out.push(v as u8);
                i += 4;
            } else {
                out.push(bytes[i + 1]);
                i += 2;
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;
    use std::net::Ipv4Addr;

    #[test]
    fn parse_simple_zone() {
        let text = "\
$ORIGIN example.ch.
$TTL 300
@ IN SOA ns1.example.ch. hostmaster.example.ch. 1 7200 3600 1209600 300
@ IN NS ns1 ; in-zone nameserver
@ IN NS ns2.example.net.
www 600 IN A 192.0.2.10
";
        let recs = parse_zone_file(text, &Name::root()).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].name, name!("example.ch"));
        assert_eq!(recs[1].rdata, RData::Ns(name!("ns1.example.ch")));
        assert_eq!(recs[2].rdata, RData::Ns(name!("ns2.example.net")));
        assert_eq!(recs[3].ttl, 600);
        assert_eq!(recs[3].name, name!("www.example.ch"));
        assert_eq!(recs[3].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 10)));
    }

    #[test]
    fn blank_owner_repeats_previous() {
        let text = "\
$ORIGIN t.
a IN A 192.0.2.1
  IN A 192.0.2.2
";
        let recs = parse_zone_file(text, &Name::root()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].name, name!("a.t"));
    }

    #[test]
    fn default_ttl_applies() {
        let text = "$ORIGIN t.\n$TTL 1234\na IN A 192.0.2.1\n";
        let recs = parse_zone_file(text, &Name::root()).unwrap();
        assert_eq!(recs[0].ttl, 1234);
    }

    #[test]
    fn roundtrip_via_serialiser() {
        let origin = name!("example.ch");
        let records = vec![
            Record::new(
                origin.clone(),
                300,
                RData::Soa(SoaData {
                    mname: name!("ns1.example.ch"),
                    rname: name!("hostmaster.example.ch"),
                    serial: 42,
                    refresh: 7200,
                    retry: 3600,
                    expire: 1209600,
                    minimum: 300,
                }),
            ),
            Record::new(origin.clone(), 300, RData::Ns(name!("ns1.example.ch"))),
            Record::new(
                name!("www.example.ch"),
                300,
                RData::A(Ipv4Addr::new(192, 0, 2, 1)),
            ),
            Record::new(
                origin.clone(),
                300,
                RData::Cds(DsData {
                    key_tag: 7,
                    algorithm: 13,
                    digest_type: 2,
                    digest: vec![0xaa; 32],
                }),
            ),
            Record::new(
                origin.clone(),
                300,
                RData::Txt(vec![b"v=test \"quoted\"".to_vec()]),
            ),
            Record::new(
                origin.clone(),
                300,
                RData::Unknown {
                    rtype: 99,
                    data: vec![1, 2, 3],
                },
            ),
        ];
        let text = to_zone_file(&origin, &records);
        let back = parse_zone_file(&text, &Name::root()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn dnssec_records_roundtrip() {
        let origin = name!("example.ch");
        let records = vec![
            Record::new(
                origin.clone(),
                300,
                RData::Dnskey(DnskeyData {
                    flags: 257,
                    protocol: 3,
                    algorithm: 13,
                    public_key: vec![1, 2, 3],
                }),
            ),
            Record::new(
                origin.clone(),
                300,
                RData::Rrsig(RrsigData {
                    type_covered: RecordType::Dnskey.code(),
                    algorithm: 13,
                    labels: 2,
                    original_ttl: 300,
                    expiration: 2000,
                    inception: 1000,
                    key_tag: 7,
                    signer_name: origin.clone(),
                    signature: vec![9; 16],
                }),
            ),
            Record::new(
                origin.clone(),
                300,
                RData::Nsec(NsecData {
                    next_name: name!("a.example.ch"),
                    types: TypeBitmap::from_types([RecordType::Ns, RecordType::Soa]),
                }),
            ),
        ];
        let text = to_zone_file(&origin, &records);
        let back = parse_zone_file(&text, &Name::root()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "; header\n\n$ORIGIN t.\na IN A 192.0.2.1 ; trailing\n";
        let recs = parse_zone_file(text, &Name::root()).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn semicolon_in_quotes_not_comment() {
        let text = "$ORIGIN t.\na IN TXT \"x;y\"\n";
        let recs = parse_zone_file(text, &Name::root()).unwrap();
        assert_eq!(recs[0].rdata, RData::Txt(vec![b"x;y".to_vec()]));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "$ORIGIN t.\na IN A not-an-ip\n";
        let err = parse_zone_file(text, &Name::root()).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn at_sign_is_origin() {
        let text = "$ORIGIN example.ch.\n@ IN NS ns1.example.net.\n";
        let recs = parse_zone_file(text, &Name::root()).unwrap();
        assert_eq!(recs[0].name, name!("example.ch"));
    }

    #[test]
    fn csync_roundtrip() {
        let origin = name!("x.ch");
        let records = vec![Record::new(
            origin.clone(),
            300,
            RData::Csync(CsyncData {
                serial: 42,
                flags: 3,
                types: TypeBitmap::from_types([RecordType::Ns, RecordType::A]),
            }),
        )];
        let text = to_zone_file(&origin, &records);
        let back = parse_zone_file(&text, &Name::root()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn delete_sentinel_cds_roundtrip() {
        let origin = name!("x.ch");
        let records = vec![Record::new(
            origin.clone(),
            300,
            RData::Cds(DsData::delete_sentinel()),
        )];
        let text = to_zone_file(&origin, &records);
        let back = parse_zone_file(&text, &Name::root()).unwrap();
        assert_eq!(back, records);
        match &back[0].rdata {
            RData::Cds(d) => assert!(d.is_delete()),
            _ => panic!("wrong type"),
        }
    }
}
