//! DNS messages (RFC 1035 §4) with EDNS(0) (RFC 6891).

use crate::name::Name;
use crate::rdata::RData;
use crate::record::{Record, RecordClass, RecordType};
use crate::wire::{WireError, WireReader, WireWriter};

/// Query/response operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    Query,
    Notify,
    Update,
    Unknown(u8),
}

impl Opcode {
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v,
        }
    }

    pub fn from_code(v: u8) -> Self {
        match v {
            0 => Opcode::Query,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// Response codes, including the common server-misbehaviour ones the paper
/// observes (FORMERR/SERVFAIL/NOTIMP/REFUSED on CDS queries, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Unknown(u8),
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(v) => v,
        }
    }

    pub fn from_code(v: u8) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }

    /// Whether this rcode indicates the server errored rather than giving a
    /// definitive answer (the paper's "failed to respond, or returned an
    /// error response, when queried about these RRs").
    pub fn is_error(self) -> bool {
        !matches!(self, Rcode::NoError | Rcode::NxDomain)
    }
}

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// QR: true for responses.
    pub response: bool,
    pub opcode_bits: u8,
    /// AA: authoritative answer.
    pub authoritative: bool,
    /// TC: truncated (retry over TCP).
    pub truncated: bool,
    /// RD: recursion desired.
    pub recursion_desired: bool,
    /// RA: recursion available.
    pub recursion_available: bool,
    /// AD: authentic data (DNSSEC-validated by a resolver).
    pub authentic_data: bool,
    /// CD: checking disabled.
    pub checking_disabled: bool,
    pub rcode_bits: u8,
}

impl Flags {
    fn to_u16(self) -> u16 {
        (self.response as u16) << 15
            | (self.opcode_bits as u16 & 0xf) << 11
            | (self.authoritative as u16) << 10
            | (self.truncated as u16) << 9
            | (self.recursion_desired as u16) << 8
            | (self.recursion_available as u16) << 7
            | (self.authentic_data as u16) << 5
            | (self.checking_disabled as u16) << 4
            | (self.rcode_bits as u16 & 0xf)
    }

    fn from_u16(v: u16) -> Self {
        Flags {
            response: v & 0x8000 != 0,
            opcode_bits: ((v >> 11) & 0xf) as u8,
            authoritative: v & 0x0400 != 0,
            truncated: v & 0x0200 != 0,
            recursion_desired: v & 0x0100 != 0,
            recursion_available: v & 0x0080 != 0,
            authentic_data: v & 0x0020 != 0,
            checking_disabled: v & 0x0010 != 0,
            rcode_bits: (v & 0xf) as u8,
        }
    }
}

/// Message header (ID + flags + section counts are derived at encode time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    pub id: u16,
    pub flags: Flags,
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub name: Name,
    pub rtype: RecordType,
    pub class: RecordClass,
}

impl Question {
    pub fn new(name: Name, rtype: RecordType) -> Self {
        Question {
            name,
            rtype,
            class: RecordClass::In,
        }
    }
}

/// EDNS(0) parameters extracted from / encoded into an OPT pseudo-record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edns {
    /// Advertised maximum UDP payload size.
    pub udp_payload: u16,
    /// Extended RCODE upper bits (we only model the low 4 bits elsewhere).
    pub extended_rcode: u8,
    pub version: u8,
    /// DO bit: DNSSEC OK — ask for RRSIGs/NSECs.
    pub dnssec_ok: bool,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload: crate::EDNS_UDP_PAYLOAD,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
    /// EDNS parameters; encoded as an OPT record in the additional section.
    pub edns: Option<Edns>,
}

impl Message {
    /// Build a query for (name, type) with EDNS and the DO bit set —
    /// the shape every scanner query takes.
    pub fn query(id: u16, name: Name, rtype: RecordType, dnssec_ok: bool) -> Self {
        Message {
            header: Header {
                id,
                flags: Flags {
                    recursion_desired: false,
                    ..Flags::default()
                },
            },
            questions: vec![Question::new(name, rtype)],
            edns: Some(Edns {
                dnssec_ok,
                ..Edns::default()
            }),
            ..Message::default()
        }
    }

    /// Start a response to `query`, echoing ID and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                flags: Flags {
                    response: true,
                    rcode_bits: rcode.code(),
                    ..Flags::default()
                },
            },
            questions: query.questions.clone(),
            edns: query.edns.map(|_| Edns::default()),
            ..Message::default()
        }
    }

    /// This message's response code.
    pub fn rcode(&self) -> Rcode {
        Rcode::from_code(self.header.flags.rcode_bits)
    }

    /// Set the response code.
    pub fn set_rcode(&mut self, rcode: Rcode) {
        self.header.flags.rcode_bits = rcode.code();
    }

    /// The opcode.
    pub fn opcode(&self) -> Opcode {
        Opcode::from_code(self.header.flags.opcode_bits)
    }

    /// Whether the query (or response) asks for / carries DNSSEC records.
    pub fn dnssec_ok(&self) -> bool {
        self.edns.map(|e| e.dnssec_ok).unwrap_or(false)
    }

    /// All answer records of a given type.
    pub fn answers_of(&self, rtype: RecordType) -> Vec<&Record> {
        self.answers.iter().filter(|r| r.rtype() == rtype).collect()
    }

    /// Encode to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.write_u16(self.header.id);
        w.write_u16(self.header.flags.to_u16());
        w.write_u16(self.questions.len() as u16);
        w.write_u16(self.answers.len() as u16);
        w.write_u16(self.authorities.len() as u16);
        let arcount = self.additionals.len() + self.edns.is_some() as usize;
        w.write_u16(arcount as u16);
        for q in &self.questions {
            w.write_name(&q.name);
            w.write_u16(q.rtype.code());
            w.write_u16(q.class.code());
        }
        for r in self
            .answers
            .iter()
            .chain(self.authorities.iter())
            .chain(self.additionals.iter())
        {
            r.write(&mut w);
        }
        if let Some(e) = self.edns {
            // OPT pseudo-record: name=root, class=udp payload, TTL packs
            // extended rcode / version / DO bit.
            let ttl = (e.extended_rcode as u32) << 24
                | (e.version as u32) << 16
                | (e.dnssec_ok as u32) << 15;
            let opt = Record {
                name: Name::root(),
                class: RecordClass::from_code(e.udp_payload),
                ttl,
                rdata: RData::Opt(Vec::new()),
            };
            opt.write(&mut w);
        }
        w.into_bytes()
    }

    /// Decode from wire bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(buf);
        let id = r.read_u16()?;
        let flags = Flags::from_u16(r.read_u16()?);
        let qdcount = r.read_u16()? as usize;
        let ancount = r.read_u16()? as usize;
        let nscount = r.read_u16()? as usize;
        let arcount = r.read_u16()? as usize;
        // Cap preallocation by what the remaining bytes could possibly
        // hold (a question needs ≥ 5 octets, a record ≥ 11): hostile
        // headers can otherwise claim 65535 entries in a 12-byte datagram
        // and have us allocate megabytes up front.
        let mut questions = Vec::with_capacity(qdcount.min(r.remaining() / 5));
        for _ in 0..qdcount {
            let name = r.read_name()?;
            let rtype = RecordType::from_code(r.read_u16()?);
            let class = RecordClass::from_code(r.read_u16()?);
            questions.push(Question { name, rtype, class });
        }
        let read_section = |n: usize, r: &mut WireReader| -> Result<Vec<Record>, WireError> {
            let mut v = Vec::with_capacity(n.min(r.remaining() / 11));
            for _ in 0..n {
                v.push(Record::read(r)?);
            }
            Ok(v)
        };
        let answers = read_section(ancount, &mut r)?;
        let authorities = read_section(nscount, &mut r)?;
        let mut additionals = read_section(arcount, &mut r)?;
        // Extract the OPT pseudo-record, if any.
        let mut edns = None;
        additionals.retain(|rec| {
            if rec.rtype() == RecordType::Opt {
                edns = Some(Edns {
                    udp_payload: rec.class.code(),
                    extended_rcode: (rec.ttl >> 24) as u8,
                    version: (rec.ttl >> 16) as u8,
                    dnssec_ok: rec.ttl & 0x8000 != 0,
                });
                false
            } else {
                true
            }
        });
        Ok(Message {
            header: Header { id, flags },
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;
    use std::net::Ipv4Addr;

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, name!("example.ch"), RecordType::Cds, true);
        let bytes = q.to_bytes();
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(back, q);
        assert!(back.dnssec_ok());
        assert_eq!(back.questions[0].rtype, RecordType::Cds);
        assert_eq!(back.header.id, 0x1234);
        assert!(!back.header.flags.response);
    }

    #[test]
    fn response_roundtrip_with_sections() {
        let q = Message::query(7, name!("example.ch"), RecordType::A, true);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.header.flags.authoritative = true;
        resp.answers.push(Record::new(
            name!("example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        resp.authorities.push(Record::new(
            name!("example.ch"),
            300,
            RData::Ns(name!("ns1.example.ch")),
        ));
        resp.additionals.push(Record::new(
            name!("ns1.example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        let bytes = resp.to_bytes();
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(back, resp);
        assert!(back.header.flags.authoritative);
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.authorities.len(), 1);
        assert_eq!(back.additionals.len(), 1);
        assert_eq!(back.rcode(), Rcode::NoError);
    }

    #[test]
    fn rcode_roundtrip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
        ] {
            let q = Message::query(1, name!("x.test"), RecordType::A, false);
            let resp = Message::response_to(&q, rc);
            let back = Message::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(back.rcode(), rc);
        }
    }

    #[test]
    fn error_rcodes_classified() {
        assert!(!Rcode::NoError.is_error());
        assert!(!Rcode::NxDomain.is_error());
        assert!(Rcode::ServFail.is_error());
        assert!(Rcode::FormErr.is_error());
        assert!(Rcode::NotImp.is_error());
        assert!(Rcode::Refused.is_error());
    }

    #[test]
    fn edns_do_bit_and_payload() {
        let mut q = Message::query(1, name!("x.test"), RecordType::Dnskey, true);
        q.edns = Some(Edns {
            udp_payload: 4096,
            dnssec_ok: true,
            ..Edns::default()
        });
        let back = Message::from_bytes(&q.to_bytes()).unwrap();
        let e = back.edns.unwrap();
        assert_eq!(e.udp_payload, 4096);
        assert!(e.dnssec_ok);
    }

    #[test]
    fn message_without_edns() {
        let mut q = Message::query(1, name!("x.test"), RecordType::A, false);
        q.edns = None;
        let back = Message::from_bytes(&q.to_bytes()).unwrap();
        assert!(back.edns.is_none());
        assert!(!back.dnssec_ok());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(Message::from_bytes(&[0, 1, 2]).is_err());
    }

    #[test]
    fn count_mismatch_rejected() {
        let q = Message::query(9, name!("a.test"), RecordType::A, false);
        let mut bytes = q.to_bytes();
        // Claim one answer that isn't there.
        bytes[7] = 1;
        assert!(Message::from_bytes(&bytes).is_err());
    }

    #[test]
    fn answers_of_filters_by_type() {
        let q = Message::query(7, name!("example.ch"), RecordType::Cds, true);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(Record::new(
            name!("example.ch"),
            300,
            RData::Cds(crate::rdata::DsData::delete_sentinel()),
        ));
        resp.answers.push(Record::new(
            name!("example.ch"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        assert_eq!(resp.answers_of(RecordType::Cds).len(), 1);
        assert_eq!(resp.answers_of(RecordType::Dnskey).len(), 0);
    }
}
