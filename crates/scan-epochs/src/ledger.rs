//! The carry-over ledger: cache effects remembered across epochs.
//!
//! Every journaled [`ZoneEvent`](bootscan::ZoneEvent) carries the cache
//! inserts its zone scan performed ([`ZoneEffects`]). The ledger records
//! them stamped with the epoch that learned them; at the next epoch's
//! start, each entry is seeded into the fresh scanner with its
//! **remaining validity** — `(learn time + TTL) − now` in virtual time —
//! so a carried entry expires at exactly the same virtual instant it
//! would have in one continuous run. Expired entries are never seeded
//! (the lazy-eviction analog of the in-scanner expiry check), and
//! churn-invalidated entries are dropped the moment the churn log names
//! their zone cut.
//!
//! Health deltas are deliberately **not** carried: a fresh health
//! tracker per epoch is what a cold scan would see, and health, unlike
//! the caches, is not a pure function of the world (it encodes failure
//! history). Within-epoch crash resume still replays health via
//! [`Recovery::apply_to`](scan_journal::Recovery::apply_to) — that path
//! must reproduce the interrupted epoch verbatim.

use bootscan::scanner::Scanner;
use bootscan::ZoneEffects;
use dns_resolver::ReferralData;
use dns_wire::name::Name;
use dns_wire::rdata::DnskeyData;
use netsim::{Addr, SimMicros};
use std::sync::Arc;

/// One cache insert remembered from a past epoch.
#[derive(Debug, Clone)]
enum CarriedInsert {
    /// Validated-DNSKEY cache: zone apex → keys.
    Keys(Name, Vec<DnskeyData>),
    /// Resolver address cache: NS hostname → addresses.
    Addrs(Name, Arc<Vec<Addr>>),
    /// Resolver delegation cache: zone cut → referral data.
    Referral(Name, Arc<ReferralData>),
}

impl CarriedInsert {
    fn name(&self) -> &Name {
        match self {
            CarriedInsert::Keys(n, _)
            | CarriedInsert::Addrs(n, _)
            | CarriedInsert::Referral(n, _) => n,
        }
    }
}

/// One ledger entry: the insert, the epoch that learned it, and the
/// **source zone** — the scanned zone whose event produced the insert.
/// The source is what makes the ledger distributable: the continuous
/// service partitions entries by the source zone's fabric shard, so a
/// carried cache travels with the shard that will re-scan its zone.
#[derive(Debug, Clone)]
struct CarriedEntry {
    epoch: u32,
    source: Name,
    insert: CarriedInsert,
}

/// Cache inserts carried across epochs, in journal order, each stamped
/// with the epoch that learned it and the zone whose scan learned it.
#[derive(Debug, Clone, Default)]
pub struct CarryLedger {
    entries: Vec<CarriedEntry>,
}

impl CarryLedger {
    pub fn new() -> Self {
        CarryLedger::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record one zone event's cache effects, learned during `epoch` by
    /// the scan of `source`. Order matters: seeding replays entries in
    /// absorption order, so later inserts overwrite earlier ones exactly
    /// as the live caches did.
    pub fn absorb(&mut self, epoch: u32, source: &Name, effects: &ZoneEffects) {
        for (zone, keys) in &effects.key_inserts {
            self.entries.push(CarriedEntry {
                epoch,
                source: source.clone(),
                insert: CarriedInsert::Keys(zone.clone(), keys.clone()),
            });
        }
        for (ns, addrs) in &effects.addr_inserts {
            self.entries.push(CarriedEntry {
                epoch,
                source: source.clone(),
                insert: CarriedInsert::Addrs(ns.clone(), Arc::clone(addrs)),
            });
        }
        for (cut, data) in &effects.referral_inserts {
            self.entries.push(CarriedEntry {
                epoch,
                source: source.clone(),
                insert: CarriedInsert::Referral(cut.clone(), Arc::clone(data)),
            });
        }
    }

    /// Partition the ledger by the fabric shard of each entry's source
    /// zone (`shard_of`, the same fnv64 bucketing `ShardPlan` uses).
    /// Entry order is preserved within each partition, so seeding a
    /// partition replays its inserts in the original journal order. The
    /// evidence plane never reads carried caches (they shape cost, not
    /// classification), so distribution cannot change any zone's record.
    pub fn partition(&self, shards: u32) -> Vec<CarryLedger> {
        let mut parts = vec![CarryLedger::new(); shards.max(1) as usize];
        for entry in &self.entries {
            let shard = dns_ecosystem::shard_of(&entry.source, shards) as usize;
            if let Some(part) = parts.get_mut(shard) {
                part.entries.push(entry.clone());
            }
        }
        parts
    }

    /// Drop every entry at or below one of the churn-invalidated zone
    /// cuts. Called before an epoch's scan with that epoch's
    /// [`ChurnLog::invalidated_cuts`](dns_ecosystem::ChurnLog) — a
    /// churned zone's keys and referral must never be consulted again,
    /// no matter how much validity they had left.
    pub fn invalidate(&mut self, cuts: &[Name]) {
        if cuts.is_empty() {
            return;
        }
        self.entries
            .retain(|e| !cuts.iter().any(|c| e.insert.name().is_subdomain_of(c)));
    }

    /// Drop entries already expired at virtual time `now` (epoch start).
    /// Seeding skips them anyway; pruning keeps the ledger from growing
    /// without bound over long studies.
    pub fn prune_expired(&mut self, now: SimMicros, ttl: SimMicros, spacing: SimMicros) {
        self.entries.retain(|e| {
            let learned = (e.epoch as SimMicros).saturating_mul(spacing);
            learned.saturating_add(ttl) > now
        });
    }

    /// Seed every still-valid entry into a fresh scanner for the epoch
    /// starting at virtual time `now`. The entry's expiry is translated
    /// into the scanner's local clock (which starts each epoch at 0):
    /// `remaining = (learn time + TTL) − now`. Entries with no validity
    /// left are skipped — never consulted, exactly like an in-scanner
    /// expired entry.
    pub fn seed_into(&self, scanner: &Scanner, now: SimMicros, ttl: SimMicros, spacing: SimMicros) {
        for entry in &self.entries {
            let learned = (entry.epoch as SimMicros).saturating_mul(spacing);
            let expires_at_world = learned.saturating_add(ttl);
            let Some(remaining) = expires_at_world.checked_sub(now).filter(|r| *r > 0) else {
                continue;
            };
            match &entry.insert {
                CarriedInsert::Keys(zone, keys) => {
                    scanner.seed_validated_keys_until(zone.clone(), keys.clone(), remaining);
                }
                CarriedInsert::Addrs(ns, addrs) => {
                    scanner
                        .resolver()
                        .seed_address_until(ns.clone(), (**addrs).clone(), remaining);
                }
                CarriedInsert::Referral(cut, data) => {
                    scanner.resolver().seed_referral_until(
                        cut.clone(),
                        (**data).clone(),
                        remaining,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn effects(zone: &str) -> ZoneEffects {
        let referral = ReferralData {
            parent_apex: name("example"),
            ns_names: Vec::new(),
            ds: None,
            ds_rrsigs: Vec::new(),
            child_servers: Vec::new(),
            parent_servers: Vec::new(),
        };
        ZoneEffects {
            key_inserts: vec![(name(zone), Vec::new())],
            addr_inserts: Vec::new(),
            referral_inserts: vec![(name(zone), Arc::new(referral))],
            health: Vec::new(),
        }
    }

    #[test]
    fn invalidation_drops_at_and_below_cut() {
        let mut ledger = CarryLedger::new();
        ledger.absorb(0, &name("a.example"), &effects("a.example"));
        ledger.absorb(0, &name("sub.a.example"), &effects("sub.a.example"));
        ledger.absorb(0, &name("b.example"), &effects("b.example"));
        assert_eq!(ledger.len(), 6);
        ledger.invalidate(&[name("a.example")]);
        assert_eq!(ledger.len(), 2, "a.example and its subdomain dropped");
        ledger.invalidate(&[]);
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn pruning_respects_remaining_validity() {
        let spacing = 1_800_000_000; // 30 min
        let ttl = 3_600_000_000; // 1 h
        let mut ledger = CarryLedger::new();
        ledger.absorb(0, &name("a.example"), &effects("a.example"));
        ledger.absorb(1, &name("b.example"), &effects("b.example"));
        // At epoch 2's start (t = 2·spacing = TTL), epoch-0 entries have
        // exactly zero validity left — expired, pruned; epoch-1 entries
        // have half a TTL left.
        ledger.prune_expired(2 * spacing, ttl, spacing);
        assert_eq!(ledger.len(), 2);
        ledger.prune_expired(3 * spacing, ttl, spacing);
        assert_eq!(ledger.len(), 0);
    }

    #[test]
    fn partition_routes_entries_by_source_shard_preserving_order() {
        let shards = 4;
        let sources = ["a.example", "b.example", "c.example", "d.example"];
        let mut ledger = CarryLedger::new();
        for s in sources {
            ledger.absorb(0, &name(s), &effects(s));
        }
        let parts = ledger.partition(shards);
        assert_eq!(parts.len(), shards as usize);
        assert_eq!(
            parts.iter().map(CarryLedger::len).sum::<usize>(),
            ledger.len(),
            "partitioning never drops an entry"
        );
        for s in sources {
            let source = name(s);
            let home = dns_ecosystem::shard_of(&source, shards) as usize;
            for (k, part) in parts.iter().enumerate() {
                let here = part.entries.iter().filter(|e| e.source == source).count();
                assert_eq!(here, if k == home { 2 } else { 0 }, "{s} in shard {k}");
            }
        }
        // Within a partition, absorption order is preserved.
        for part in &parts {
            let mut idx = Vec::new();
            for e in &part.entries {
                idx.push(sources.iter().position(|s| name(s) == e.source).unwrap());
            }
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            assert_eq!(idx, sorted);
        }
    }
}
