//! # scan-epochs — the longitudinal scan service
//!
//! The paper is a deployment-over-time study: repeated scans separated
//! by real-world churn, reported as adoption trends. This crate runs
//! that study against the synthetic world (DESIGN.md §10):
//!
//! 1. **Churn.** Each epoch `e ≥ 1` generates and applies a seeded
//!    [`ChurnPlan`] — a pure function of `(truth, churn seed, e)` — and
//!    receives the ground-truth [`ChurnLog`].
//! 2. **Delta scan.** Only zones that *need* re-scanning are scanned:
//!    churned zones, zones whose evidence outlived the evidence TTL,
//!    and zones whose prior evidence was degraded or `Indeterminate`.
//!    Everyone else's prior evidence is carried forward verbatim.
//! 3. **Cache carry-over.** Delegation-, address- and validated-key
//!    cache entries learned by past epochs are seeded into the fresh
//!    epoch scanner with their *remaining* virtual-time validity
//!    ([`CarryLedger`]); churn-invalidated entries are dropped first.
//!    Carried caches change *when* datagrams are sent, never what the
//!    classifier concludes — so each epoch's incremental report is
//!    byte-identical to a cold scan of the same world state
//!    (`tests/epoch_equivalence.rs`) at a small fraction of its cost.
//! 4. **Crash safety.** Each epoch journals through `scan-journal`
//!    under epoch-namespaced run ids and state directories, and an
//!    epoch enters the time series only after its `COMMIT` marker is
//!    renamed into place. A kill at any point — mid-epoch, after the
//!    journal but before the commit, or during carry-over — resumes
//!    into the *same* epoch and reproduces the uninterrupted series
//!    byte-for-byte (`tests/epoch_recovery.rs`).
//! 5. **Honest degradation.** An epoch whose re-scan budget is
//!    exhausted reports the deferred zones as `Indeterminate` with a
//!    stale-evidence marker — outdated evidence is never silently
//!    re-reported as current.

#![forbid(unsafe_code)]

pub mod ledger;
pub mod report;

pub use ledger::CarryLedger;
pub use report::{canonical_evidence, EpochReport, SkippedEpoch, TimeSeries, TrendRow};

use bootscan::operator::OperatorTable;
use bootscan::scanner::Scanner;
use bootscan::types::{DnssecClass, ZoneScan};
use bootscan::{ProgressSink, RetryStats, ScanPolicy, ZoneEvent};
use dns_ecosystem::{apply_churn, build, ChurnConfig, ChurnLog, ChurnPlan, EcosystemConfig};
use dns_wire::name::Name;
use netsim::SimMicros;
use scan_journal::{recover, JournalSink, Namespace};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// Injected crash points for the epoch-boundary kill matrix
/// (`tests/epoch_recovery.rs`). Mirrors the fabric's fault plan: the
/// study returns [`io::ErrorKind::Interrupted`] at the named point, and
/// re-running against the same state root must resume byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die during `epoch`'s scan, refusing the journal append of event
    /// number `at_event` (0-based, counted within this attempt).
    MidEpoch { epoch: u32, at_event: u64 },
    /// Die after `epoch`'s journal (and final checkpoint) is complete
    /// but before its `COMMIT` marker lands.
    BeforeCommit { epoch: u32 },
    /// Die after `epoch` committed, during carry-over into the next
    /// epoch (caches invalidated/pruned, nothing scanned yet).
    DuringCarryOver { epoch: u32 },
}

/// Configuration of one longitudinal study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Total number of epochs, including the initial full scan
    /// (epoch 0). Churn applies from epoch 1 onward.
    pub epochs: u32,
    /// Seed of the churn model (independent of the world seed).
    pub churn_seed: u64,
    pub churn: ChurnConfig,
    /// Study run id: namespaces every epoch's journal.
    pub run_id: u64,
    /// Virtual time between epoch starts. Default 30 minutes — half the
    /// cache TTL, so carried cache entries span exactly one further
    /// epoch before expiring.
    pub epoch_spacing: SimMicros,
    /// Cache-entry validity, matching the resolver's in-scan TTL.
    pub cache_ttl: SimMicros,
    /// Evidence validity: zones whose last fresh scan is older than
    /// this are re-scanned even without churn. Default 24 h.
    pub evidence_ttl: SimMicros,
    /// Maximum zones re-scanned per epoch. Deferred zones are reported
    /// `Indeterminate` with a stale-evidence marker. `None` = no cap.
    pub rescan_budget: Option<usize>,
    /// Journal checkpoint cadence (events per checkpoint).
    pub checkpoint_every: u64,
    /// Test-only crash injection.
    pub fault: Option<KillPoint>,
}

impl StudyConfig {
    pub fn new(epochs: u32, churn_seed: u64) -> Self {
        StudyConfig {
            epochs,
            churn_seed,
            churn: ChurnConfig::default(),
            run_id: 1,
            epoch_spacing: 1_800_000_000,
            cache_ttl: dns_resolver::CACHE_TTL_MICROS,
            evidence_ttl: 86_400_000_000,
            rescan_budget: None,
            checkpoint_every: 32,
            fault: None,
        }
    }
}

/// Marker file whose presence (renamed atomically into place) commits an
/// epoch into the time series. A directory without it is a torn epoch:
/// resume re-enters it, it never contaminates the series.
const COMMIT_FILE: &str = "COMMIT";

fn commit_path(dir: &Path) -> std::path::PathBuf {
    dir.join(COMMIT_FILE)
}

fn write_commit(dir: &Path, epoch: u32) -> io::Result<()> {
    let tmp = dir.join("COMMIT.tmp");
    fs::write(&tmp, format!("epoch {epoch}\n"))?;
    fs::rename(&tmp, commit_path(dir))
}

fn killed(point: KillPoint) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!("injected kill: {point:?}"),
    )
}

/// Journal sink that also captures every accepted event in memory (the
/// ledger and evidence fold need the effects), and optionally refuses
/// the append at an injected kill point.
struct TeeSink {
    journal: JournalSink,
    captured: Mutex<Vec<ZoneEvent>>,
    kill_at: Option<u64>,
    seen: Mutex<u64>,
    died: Mutex<bool>,
}

impl TeeSink {
    fn new(journal: JournalSink, kill_at: Option<u64>) -> Self {
        TeeSink {
            journal,
            captured: Mutex::new(Vec::new()),
            kill_at,
            seen: Mutex::new(0),
            died: Mutex::new(false),
        }
    }

    fn died(&self) -> bool {
        *self.died.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn into_captured(self) -> Vec<ZoneEvent> {
        self.captured
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl ProgressSink for TeeSink {
    fn on_zone(&self, event: &ZoneEvent) -> bool {
        {
            let mut seen = self.seen.lock().unwrap_or_else(PoisonError::into_inner);
            if Some(*seen) == self.kill_at {
                *self.died.lock().unwrap_or_else(PoisonError::into_inner) = true;
                return false;
            }
            *seen += 1;
        }
        // Write-ahead: journal first, capture only what the journal
        // accepted — the in-memory fold must never run ahead of disk.
        if !self.journal.on_zone(event) {
            return false;
        }
        self.captured
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
        true
    }
}

/// Prior evidence for one zone: the kept scan plus the epoch whose
/// fresh scan produced it (stale markers keep their source epoch).
#[derive(Debug, Clone)]
struct Evidence {
    scan: ZoneScan,
    epoch: u32,
}

/// The stale-evidence marker: what a budget-deferred zone reports.
/// Deliberately *not* the outdated evidence — `Indeterminate` and
/// degraded, so the epoch's degradation report names it and the next
/// epoch's delta rule re-scans it.
fn stale_marker(name: &Name) -> ZoneScan {
    ZoneScan {
        name: name.clone(),
        ns_names: Vec::new(),
        parent_ds: Vec::new(),
        ns_observations: Vec::new(),
        signal_observations: Vec::new(),
        dnssec: DnssecClass::Indeterminate,
        cds: bootscan::CdsClass::Absent,
        ab: bootscan::AbClass::NoSignal,
        operator: bootscan::Identified::Unknown,
        queries: 0,
        elapsed: 0,
        sampled: false,
        retry_stats: RetryStats::default(),
        degraded: true,
    }
}

fn scanner_for(eco: &dns_ecosystem::Ecosystem, policy: &ScanPolicy) -> Arc<Scanner> {
    let table = OperatorTable::from_operators(
        eco.operators
            .iter()
            .map(|o| (o.name.as_str(), o.hosts.as_slice())),
    );
    Arc::new(Scanner::new(
        Arc::clone(&eco.net),
        eco.roots.clone(),
        eco.anchors.clone(),
        table,
        eco.now,
        policy.clone(),
    ))
}

/// Run (or resume) a longitudinal study.
///
/// Deterministic end to end: the world is rebuilt from `world`, each
/// epoch's churn is replayed from `(churn seed, epoch)`, committed
/// epochs are folded back from their journals without re-scanning, and
/// the first uncommitted epoch is resumed exactly where it died. Two
/// invocations over the same arguments and state root — interrupted
/// anywhere, any number of times — produce byte-identical time series
/// (`TimeSeries::canonical_bytes`, exact at `parallelism = 1`).
pub fn run_study(
    world: EcosystemConfig,
    policy: ScanPolicy,
    cfg: &StudyConfig,
    state_root: &Path,
) -> io::Result<TimeSeries> {
    fs::create_dir_all(state_root)?;
    let mut eco = build(world);
    let mut seeds = eco.seeds.compile(&eco.psl);
    seeds.sort_by(|a, b| a.canonical_cmp(b));
    seeds.dedup();

    let mut evidence: BTreeMap<Name, Evidence> = BTreeMap::new();
    let mut ledger = CarryLedger::new();
    let mut series = TimeSeries::default();

    for epoch in 0..cfg.epochs {
        let now = (epoch as SimMicros).saturating_mul(cfg.epoch_spacing);

        // -- Churn: mutate the world, learn what changed. -------------
        let churn: ChurnLog = if epoch == 0 {
            ChurnLog::default()
        } else {
            let plan = ChurnPlan::generate(&eco, &cfg.churn, cfg.churn_seed, epoch);
            apply_churn(&mut eco, &plan)
        };

        // -- Carry-over: invalidate and age the cache ledger. ---------
        ledger.invalidate(&churn.invalidated_cuts);
        ledger.prune_expired(now, cfg.cache_ttl, cfg.epoch_spacing);
        if let Some(KillPoint::DuringCarryOver { epoch: at }) = cfg.fault {
            if epoch > 0 && at == epoch - 1 {
                return Err(killed(KillPoint::DuringCarryOver { epoch: at }));
            }
        }

        // -- Delta scan set. ------------------------------------------
        let churned: Vec<Name> = churn
            .churned_zones()
            .into_iter()
            .filter(|z| seeds.binary_search_by(|s| s.canonical_cmp(z)).is_ok())
            .collect();
        let mut delta: Vec<Name> = if epoch == 0 {
            seeds.clone()
        } else {
            let mut d = churned.clone();
            for (name, ev) in &evidence {
                let age = now.saturating_sub((ev.epoch as SimMicros) * cfg.epoch_spacing);
                let expired = age >= cfg.evidence_ttl;
                let weak = ev.scan.degraded || ev.scan.dnssec == DnssecClass::Indeterminate;
                if expired || weak {
                    d.push(name.clone());
                }
            }
            // Seeds that never produced evidence (e.g. deferred at epoch
            // 0 under a budget) stay in the delta set until scanned.
            for s in &seeds {
                if !evidence.contains_key(s) {
                    d.push(s.clone());
                }
            }
            d
        };
        delta.sort_by(|a, b| a.canonical_cmp(b));
        delta.dedup();

        let (scanned, deferred) = match cfg.rescan_budget {
            Some(budget) if delta.len() > budget => {
                let deferred = delta.split_off(budget);
                (delta, deferred)
            }
            _ => (delta, Vec::new()),
        };

        // -- Journal recovery: committed epochs fold without scanning.
        let ns = Namespace::root(state_root, cfg.run_id).epoch(epoch);
        let dir = ns.dir().to_path_buf();
        let header = ns.header(&scanned);
        let recovery = recover(&dir, header)?;
        let committed = commit_path(&dir).exists();

        let (zones, queries, duration) = if committed {
            // Fold the journaled epoch back; the scanner never runs.
            for (_, event) in &recovery.events {
                ledger.absorb(epoch, &event.scan.name, &event.effects);
            }
            let resume = recovery.resume_state();
            let queries: u64 = resume.zones.iter().map(|z| z.queries as u64).sum();
            (resume.zones, queries, resume.duration_so_far)
        } else {
            // Fresh scanner per epoch: cold except for the carried
            // ledger (expiry-stamped) and this epoch's own replayed
            // journal effects (verbatim, like any crash resume).
            let scanner = scanner_for(&eco, &policy);
            ledger.seed_into(&scanner, now, cfg.cache_ttl, cfg.epoch_spacing);
            for (_, event) in &recovery.events {
                ledger.absorb(epoch, &event.scan.name, &event.effects);
            }
            recovery.apply_to(&scanner);
            let resume = recovery.resume_state();
            let sink =
                JournalSink::resume(&dir, &recovery)?.with_checkpoint_every(cfg.checkpoint_every);
            let kill_at = match cfg.fault {
                Some(KillPoint::MidEpoch {
                    epoch: at,
                    at_event,
                }) if at == epoch => Some(at_event),
                _ => None,
            };
            let sink = TeeSink::new(sink, kill_at);
            let results = scanner.scan_all_with(&scanned, Some(&sink), Some(resume));
            if sink.died() {
                return Err(killed(KillPoint::MidEpoch {
                    epoch,
                    at_event: kill_at.unwrap_or_default(),
                }));
            }
            sink.journal.checkpoint_now()?;
            for event in sink.into_captured() {
                ledger.absorb(epoch, &event.scan.name, &event.effects);
            }
            if let Some(KillPoint::BeforeCommit { epoch: at }) = cfg.fault {
                if at == epoch {
                    return Err(killed(KillPoint::BeforeCommit { epoch: at }));
                }
            }
            write_commit(&dir, epoch)?;
            (
                results.zones,
                results.total_queries,
                results.simulated_duration,
            )
        };

        // -- Fold evidence: fresh results overwrite, deferred zones get
        //    the stale marker (honest degradation, never reuse).
        for z in zones {
            evidence.insert(z.name.clone(), Evidence { scan: z, epoch });
        }
        for name in &deferred {
            let source = evidence.get(name).map(|e| e.epoch).unwrap_or(epoch);
            evidence.insert(
                name.clone(),
                Evidence {
                    scan: stale_marker(name),
                    epoch: source,
                },
            );
        }

        let mut table: Vec<ZoneScan> = evidence.values().map(|e| e.scan.clone()).collect();
        table.sort_by(|a, b| a.name.canonical_cmp(&b.name));
        series.epochs.push(EpochReport {
            epoch,
            zones: table,
            fresh: scanned,
            stale: deferred,
            churned,
            queries,
            simulated_duration: duration,
        });
    }
    Ok(series)
}
