//! Time-series reporting for longitudinal runs.
//!
//! Every epoch's report is the *full* evidence table as of that epoch —
//! freshly scanned delta zones plus carried-forward evidence — in
//! canonical zone order. [`canonical_evidence`] normalizes it exactly
//! like the evidence-plane invariance suite (`parallel_invariance.rs`):
//! cost counters zeroed, zones + figure 1 + degradation population
//! serialized. Two reports with equal canonical bytes are
//! indistinguishable everywhere the paper's analysis looks — which is
//! what lets the headline test pin each incremental epoch byte-identical
//! to a cold from-scratch scan of the same world state.

use bootscan::{report, DnssecClass, RetryStats, ScanResults, ZoneScan};
use bootscan::{AbClass, CdsClass};
use dns_wire::name::Name;
use netsim::SimMicros;

/// The evidence plane of a zone table, serialized canonically. Mirrors
/// `parallel_invariance.rs::evidence`: cost counters (queries, elapsed,
/// I/O stats) are exactly what carried caches exist to change, so they
/// are excluded; everything the classifier concluded is included.
pub fn canonical_evidence(zones: &[ZoneScan]) -> String {
    let mut zones = zones.to_vec();
    zones.sort_by(|a, b| a.name.canonical_cmp(&b.name));
    for z in &mut zones {
        z.queries = 0;
        z.elapsed = 0;
        z.retry_stats = RetryStats::default();
    }
    let results = ScanResults {
        zones,
        simulated_duration: 0,
        total_queries: 0,
    };
    let zones_json = serde_json::to_string(&results.zones).expect("zones serialize");
    let fig1 = serde_json::to_string(&report::figure1(&results)).expect("figure1 serializes");
    let deg = report::degradation(&results);
    let deg_zones: Vec<String> = deg
        .zones
        .iter()
        .map(|z| format!("{}:{:?}", z.name, z.class))
        .collect();
    format!(
        "{zones_json}\n{fig1}\ndegraded={} indeterminate={} {:?}",
        deg.degraded_zones, deg.indeterminate_zones, deg_zones
    )
}

/// One epoch's complete report.
#[derive(Debug, Clone)]
pub struct EpochReport {
    pub epoch: u32,
    /// Full evidence table as of this epoch's end (fresh + carried),
    /// canonical order.
    pub zones: Vec<ZoneScan>,
    /// Zones actually re-scanned this epoch, canonical order.
    pub fresh: Vec<Name>,
    /// Zones the re-scan budget deferred: reported `Indeterminate` with
    /// a stale-evidence marker, never as silently-reused old evidence.
    pub stale: Vec<Name>,
    /// Zones this epoch's churn transitioned (ground truth).
    pub churned: Vec<Name>,
    /// Logical queries spent by this epoch's re-scan (cost plane).
    pub queries: u64,
    /// Simulated duration of this epoch's re-scan.
    pub simulated_duration: SimMicros,
}

impl EpochReport {
    /// Canonical evidence bytes of this epoch's full zone table.
    pub fn canonical_evidence(&self) -> String {
        canonical_evidence(&self.zones)
    }

    fn trend_row(&self) -> TrendRow {
        let mut row = TrendRow {
            epoch: self.epoch,
            ..TrendRow::default()
        };
        for z in &self.zones {
            match z.dnssec {
                DnssecClass::Secured => row.secured += 1,
                DnssecClass::Island => row.island += 1,
                DnssecClass::Unsigned => row.unsigned += 1,
                _ => {}
            }
            if z.cds == CdsClass::Valid {
                row.cds_valid += 1;
            }
            if z.dnssec == DnssecClass::Island && z.cds == CdsClass::Valid {
                row.bootstrappable += 1;
            }
            if z.ab == AbClass::SignalCorrect {
                row.signal_correct += 1;
            }
        }
        row.fresh = self.fresh.len();
        row.stale = self.stale.len();
        row.churned = self.churned.len();
        row.queries = self.queries;
        row
    }
}

/// Per-epoch adoption counts — the paper's trend quantities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrendRow {
    pub epoch: u32,
    pub secured: usize,
    pub island: usize,
    pub unsigned: usize,
    pub cds_valid: usize,
    pub bootstrappable: usize,
    pub signal_correct: usize,
    pub fresh: usize,
    pub stale: usize,
    pub churned: usize,
    pub queries: u64,
}

/// A scheduled observation the admission controller coalesced instead
/// of scanning: the backlog exceeded the pipeline depth when it
/// arrived. A skipped epoch is an *explicit* record — the time series
/// never silently loses a scheduled observation — and it names the
/// churn that hit the world during its window; the next admitted
/// epoch's delta set absorbed exactly those zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedEpoch {
    pub epoch: u32,
    /// Scheduled (virtual-time) arrival of the observation.
    pub arrival: SimMicros,
    /// How many epoch spacings the pipeline was behind at arrival.
    pub behind: u32,
    /// Zones churned during this epoch's window, canonical order —
    /// absorbed into the next admitted epoch's delta set.
    pub churned: Vec<Name>,
}

/// The full longitudinal run: one report per committed epoch plus one
/// explicit marker per coalesced epoch, both in epoch order.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    pub epochs: Vec<EpochReport>,
    /// Scheduled observations coalesced under backpressure. Empty for
    /// every run whose epochs all drained on time (in particular, every
    /// pre-continuous study), so existing canonical bytes are unchanged.
    pub skipped: Vec<SkippedEpoch>,
}

impl TimeSeries {
    /// Adoption-trend rows, one per epoch.
    pub fn trend(&self) -> Vec<TrendRow> {
        self.epochs.iter().map(|e| e.trend_row()).collect()
    }

    /// Render the adoption-trend table with per-epoch deltas — the
    /// longitudinal counterpart of the paper's §4 trend discussion.
    pub fn render_trend(&self) -> String {
        let rows = self.trend();
        let mut out = String::new();
        out.push_str(
            "epoch | secured       | island        | CDS valid     | bootstrappable \
             | AB correct    | fresh | stale | churned\n",
        );
        out.push_str(
            "------+---------------+---------------+---------------+----------------\
             +---------------+-------+-------+--------\n",
        );
        let delta = |cur: usize, prev: Option<usize>| -> String {
            match prev {
                None => format!("{cur:6}        "),
                Some(p) => {
                    let d = cur as i64 - p as i64;
                    format!("{cur:6} ({d:+5}) ")
                }
            }
        };
        let mut prev: Option<&TrendRow> = None;
        let mut skipped = self.skipped.iter().peekable();
        let skipped_row = |out: &mut String, s: &SkippedEpoch| {
            out.push_str(&format!(
                "{:5} | coalesced under backpressure ({} behind); {} churned zone(s) \
                 absorbed by next epoch\n",
                s.epoch,
                s.behind,
                s.churned.len(),
            ));
        };
        for r in &rows {
            while let Some(s) = skipped.peek() {
                if s.epoch >= r.epoch {
                    break;
                }
                skipped_row(&mut out, s);
                skipped.next();
            }
            out.push_str(&format!(
                "{:5} | {}| {}| {}| {} | {}| {:5} | {:5} | {:6}\n",
                r.epoch,
                delta(r.secured, prev.map(|p| p.secured)),
                delta(r.island, prev.map(|p| p.island)),
                delta(r.cds_valid, prev.map(|p| p.cds_valid)),
                delta(r.bootstrappable, prev.map(|p| p.bootstrappable)),
                delta(r.signal_correct, prev.map(|p| p.signal_correct)),
                r.fresh,
                r.stale,
                r.churned,
            ));
            prev = Some(r);
        }
        for s in skipped {
            skipped_row(&mut out, s);
        }
        out
    }

    /// Full deterministic serialization of the series: canonical
    /// evidence plus the cost plane and the fresh/stale/churned sets,
    /// with coalesced observations interleaved at their epoch position
    /// as explicit `SKIPPED` lines. Two series with equal bytes went
    /// through identical epochs — including identical per-epoch costs
    /// and identical admission decisions — which is what the
    /// crash-recovery matrices compare (at `parallelism = 1`, where
    /// resumed costs are exactly reproducible).
    pub fn canonical_bytes(&self) -> String {
        let mut out = String::new();
        let mut skipped = self.skipped.iter().peekable();
        for e in &self.epochs {
            while let Some(s) = skipped.peek() {
                if s.epoch >= e.epoch {
                    break;
                }
                push_skipped(&mut out, s);
                skipped.next();
            }
            out.push_str(&format!(
                "== epoch {} fresh={:?} stale={:?} churned={:?} queries={} duration={}\n{}\n",
                e.epoch,
                e.fresh.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                e.stale.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                e.churned.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                e.queries,
                e.simulated_duration,
                e.canonical_evidence(),
            ));
        }
        for s in skipped {
            push_skipped(&mut out, s);
        }
        out
    }
}

fn push_skipped(out: &mut String, s: &SkippedEpoch) {
    out.push_str(&format!(
        "== epoch {} SKIPPED arrival={} behind={} churned={:?}\n",
        s.epoch,
        s.arrival,
        s.behind,
        s.churned.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
    ));
}
