//! Edge cases for composed journal namespaces: deep epoch×shard
//! nesting, path-collision resistance between namespace directories and
//! look-alike literal directories, and resume from a namespace whose
//! parent directory exists but whose leaf was never created.

use bootscan::{ProgressSink, ZoneEffects, ZoneEvent, ZoneScan};
use dns_wire::name;
use dns_wire::name::Name;
use scan_journal::{recover, JournalSink, Namespace};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

fn tmpdir(label: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bootscan-ns-edges-{label}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// A minimal but journalable event: empty observations, default
/// effects. Namespace tests only care about identity and placement,
/// not event content.
fn event_for(zone: &str, pass: u32) -> ZoneEvent {
    ZoneEvent {
        pass,
        scan: ZoneScan {
            name: name!(zone),
            ns_names: Vec::new(),
            parent_ds: Vec::new(),
            ns_observations: Vec::new(),
            signal_observations: Vec::new(),
            dnssec: bootscan::DnssecClass::Unsigned,
            cds: bootscan::CdsClass::Absent,
            ab: bootscan::AbClass::NoSignal,
            operator: bootscan::operator::Identified::Unknown,
            queries: 0,
            elapsed: 0,
            sampled: false,
            retry_stats: Default::default(),
            degraded: false,
        },
        effects: ZoneEffects::default(),
        duration_delta: 10,
    }
}

fn seeds() -> Vec<Name> {
    vec![name!("a.example"), name!("b.example")]
}

/// Deep nesting: an epoch×shard grid yields pairwise-distinct
/// directories and pairwise-foreign run ids, each leaf recovers its own
/// events, and a sibling's header is a hard error — never a silent
/// mis-resume.
#[test]
fn deep_epoch_shard_grid_is_disjoint_and_mutually_foreign() {
    let root = tmpdir("grid");
    let zones = seeds();
    let mut leaves = Vec::new();
    for epoch in 0..3u32 {
        for shard in 0..3u32 {
            leaves.push((
                epoch,
                shard,
                Namespace::root(&root, 7).epoch(epoch).shard(shard),
            ));
        }
    }
    // Pairwise-distinct directories and run ids across the whole grid.
    for (i, (_, _, a)) in leaves.iter().enumerate() {
        for (_, _, b) in leaves.iter().skip(i + 1) {
            assert_ne!(a.dir(), b.dir());
            assert_ne!(a.run_id(), b.run_id());
        }
    }
    // Nesting order matters: epoch(e).shard(s) and shard(s).epoch(e)
    // are different namespaces even though both mention (e, s).
    let es = Namespace::root(&root, 7).epoch(1).shard(2);
    let se = Namespace::root(&root, 7).shard(2).epoch(1);
    assert_ne!(es.dir(), se.dir());
    assert_ne!(es.run_id(), se.run_id());

    // Journal one event per leaf; each leaf recovers exactly its own.
    for (epoch, shard, ns) in &leaves {
        let sink = JournalSink::create(ns.dir(), ns.header(&zones)).unwrap();
        assert!(sink.on_zone(&event_for(&format!("e{epoch}s{shard}.example"), 0)));
    }
    for (epoch, shard, ns) in &leaves {
        let rec = recover(ns.dir(), ns.header(&zones)).unwrap();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(
            rec.events[0].1.scan.name,
            name!(&format!("e{epoch}s{shard}.example"))
        );
    }
    // A sibling's header against this leaf's directory is a hard error.
    let (_, _, mine) = &leaves[0];
    let (_, _, sibling) = &leaves[1];
    let err = recover(mine.dir(), sibling.header(&zones)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&root);
}

/// Collision resistance: a directory whose *path* collides with a
/// namespace (a literal `epoch-0003` dir written by someone else, or a
/// zone literally named `epoch-0003`) can share bytes in the path but
/// never an identity. Recovery under the rightful namespace of a
/// foreign journal at the colliding path is a hard error.
#[test]
fn colliding_literal_dirs_and_zone_names_cannot_be_mistaken_for_a_namespace() {
    let root = tmpdir("collide");
    let zones = seeds();
    let ns = Namespace::root(&root, 7).epoch(3);

    // A zone literally named after the directory component journals
    // fine — zone names live inside events, never in the path — and
    // `epoch-0003` (index 3) vs `epoch-0123` (a look-alike literal) stay
    // distinct directories.
    let sink = JournalSink::create(ns.dir(), ns.header(&zones)).unwrap();
    assert!(sink.on_zone(&event_for("epoch-0003.example", 0)));
    drop(sink);
    assert_ne!(
        Namespace::root(&root, 7).epoch(123).dir(),
        root.join("epoch-0123-x")
    );
    assert_eq!(ns.dir(), root.join("epoch-0003"));

    // Simulate a foreign writer squatting on the colliding path: a
    // different run's journal placed where our epoch-3 namespace lives.
    let foreign_dir = tmpdir("collide-foreign");
    let foreign = Namespace::root(&foreign_dir, 8).epoch(3);
    let fsink = JournalSink::create(foreign.dir(), foreign.header(&zones)).unwrap();
    assert!(fsink.on_zone(&event_for("foreign.example", 0)));
    drop(fsink);
    let squat = ns.dir();
    let _ = fs::remove_dir_all(squat);
    fs::create_dir_all(squat.parent().unwrap()).unwrap();
    copy_tree(foreign.dir(), squat);

    // Same path, foreign identity: hard error, not a silent mis-resume
    // and not "fresh directory".
    let err = recover(ns.dir(), ns.header(&zones)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&foreign_dir);
}

/// Resume from a namespace whose parent directory was created but whose
/// leaf never was (a crash between `create_dir_all` levels, or a plan
/// that assigned the shard but never started it): recovery is cleanly
/// empty and `JournalSink::create` completes the missing levels.
#[test]
fn partially_created_parent_dir_resumes_as_fresh() {
    let root = tmpdir("partial");
    let zones = seeds();
    let ns = Namespace::root(&root, 7).epoch(2).shard(5);

    // Parent (`epoch-0002`) exists, leaf (`shard-0005`) does not.
    fs::create_dir_all(ns.dir().parent().unwrap()).unwrap();
    assert!(!ns.dir().exists());
    let rec = recover(ns.dir(), ns.header(&zones)).unwrap();
    assert!(rec.events.is_empty());
    assert_eq!(rec.next_seq(), 0);

    // create() fills in the leaf (and would fill deeper gaps too), and
    // a subsequent recovery round-trips the journaled event.
    let sink = JournalSink::create(ns.dir(), ns.header(&zones)).unwrap();
    assert!(sink.on_zone(&event_for("late.example", 0)));
    drop(sink);
    let rec = recover(ns.dir(), ns.header(&zones)).unwrap();
    assert_eq!(rec.events.len(), 1);

    // Entirely missing ancestry also works: nothing under the root yet.
    let deep = Namespace::root(root.join("untouched"), 9).epoch(0).shard(0);
    assert!(!deep.dir().parent().unwrap().exists());
    let rec = recover(deep.dir(), deep.header(&zones)).unwrap();
    assert!(rec.events.is_empty());
    let sink = JournalSink::create(deep.dir(), deep.header(&zones)).unwrap();
    assert!(sink.on_zone(&event_for("deep.example", 0)));
    let _ = fs::remove_dir_all(&root);
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dest = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dest);
        } else {
            fs::copy(entry.path(), &dest).unwrap();
        }
    }
}
