//! Checksums used by the journal and checkpoint formats.
//!
//! CRC32 (IEEE 802.3 polynomial, reflected) guards every frame: it is
//! cheap, detects all burst errors shorter than 32 bits, and — unlike a
//! plain length check — catches the classic torn-write failure where a
//! frame's length field survives but its payload bytes are garbage or
//! zero-filled. FNV-1a provides the stable 64-bit hashes used for shard
//! assignment and run fingerprints; both are hand-rolled because the
//! build environment has no registry access.

/// CRC32 lookup table for the reflected IEEE polynomial `0xEDB88320`,
/// generated at compile time.
const CRC_TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32-IEEE of `data` (the checksum `cksum`/zlib/PNG use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit hash, streamable across several byte slices.
pub fn fnv64(chunks: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn fnv64_is_chunking_invariant() {
        assert_eq!(fnv64(&[b"ab", b"cd"]), fnv64(&[b"abcd"]));
        assert_ne!(fnv64(&[b"abcd"]), fnv64(&[b"abce"]));
    }
}
