//! Sharded checkpoints: periodic compaction of the journal.
//!
//! A checkpoint is a re-encoding of every journaled event so far,
//! sharded across `shard-<k>.bsc` files by a stable hash of the zone
//! name, plus a `manifest.bsc` that names the run, the last sequence
//! number covered, and every shard's entry count (all under a CRC).
//!
//! The manifest is written **last**, via a temp file and an atomic
//! rename: shard files without a matching manifest are invisible, so a
//! crash mid-checkpoint can never produce a half-checkpoint that
//! recovery trusts. Conversely *any* validation failure — bad magic,
//! bad CRC, wrong run id or fingerprint, a missing shard, an entry
//! count mismatch, a non-contiguous sequence — makes
//! [`read_checkpoint`] return `Ok(None)`: the checkpoint is simply
//! ignored and recovery falls back to replaying the journal alone.
//! Checkpoints are an optimization, never a source of truth the journal
//! doesn't also have — except after journal loss, where a valid
//! checkpoint alone still restores every zone it covers.

use crate::codec::{decode_event, encode_event};
use crate::crc::{crc32, fnv64};
use crate::journal::{JournalHeader, FORMAT_VERSION};
use bootscan::ZoneEvent;
use dns_wire::name::Name;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Manifest file name inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.bsc";
const MANIFEST_MAGIC: [u8; 4] = *b"BSCM";
const SHARD_MAGIC: [u8; 4] = *b"BSCS";
const MAX_FRAME: u32 = 1 << 26;

/// Path of shard `k` inside `dir`.
pub fn shard_path(dir: &Path, k: u32) -> PathBuf {
    dir.join(format!("shard-{k}.bsc"))
}

/// Stable shard assignment for a zone: FNV-1a of the canonical wire
/// name, reduced mod `shards`. This is the scheme the distributed scan
/// fabric (`scan-fabric`) generalizes for zone-space partitioning, so
/// it is public: checkpoint buckets and fabric shards agree by
/// construction.
pub fn zone_shard(name: &Name, shards: u32) -> u32 {
    (fnv64(&[&name.to_wire()]) % shards.max(1) as u64) as u32
}

/// Write a checkpoint covering `entries` (which must be the full
/// contiguous journal prefix, in sequence order). Shards first, then
/// the manifest via temp-file + atomic rename.
pub fn write_checkpoint(
    dir: &Path,
    header: JournalHeader,
    entries: &[(u64, ZoneEvent)],
    shards: u32,
) -> io::Result<()> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<&(u64, ZoneEvent)>> = vec![Vec::new(); shards as usize];
    for entry in entries {
        buckets[zone_shard(&entry.1.scan.name, shards) as usize].push(entry);
    }

    for (k, bucket) in buckets.iter().enumerate() {
        let mut body = Vec::new();
        body.extend_from_slice(&SHARD_MAGIC);
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&header.run_id.to_le_bytes());
        body.extend_from_slice(&(k as u32).to_le_bytes());
        for (seq, event) in bucket.iter().map(|e| (&e.0, &e.1)) {
            let mut payload = Vec::with_capacity(64);
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&encode_event(event));
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(&crc32(&payload).to_le_bytes());
            body.extend_from_slice(&payload);
        }
        write_atomically(&shard_path(dir, k as u32), &body)?;
    }

    let last_seq = entries.last().map(|e| e.0).unwrap_or(0);
    let mut m = Vec::new();
    m.extend_from_slice(&MANIFEST_MAGIC);
    m.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    m.extend_from_slice(&header.run_id.to_le_bytes());
    m.extend_from_slice(&header.fingerprint.to_le_bytes());
    m.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    m.extend_from_slice(&last_seq.to_le_bytes());
    m.extend_from_slice(&shards.to_le_bytes());
    for bucket in &buckets {
        m.extend_from_slice(&(bucket.len() as u64).to_le_bytes());
    }
    let crc = crc32(&m);
    m.extend_from_slice(&crc.to_le_bytes());
    write_atomically(&dir.join(MANIFEST_FILE), &m)
}

fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// Read and validate a checkpoint. `Ok(None)` means "no usable
/// checkpoint" — absent, foreign, or corrupt in any way; recovery then
/// relies on the journal alone. Entries come back in sequence order.
pub fn read_checkpoint(
    dir: &Path,
    expected: JournalHeader,
) -> io::Result<Option<Vec<(u64, ZoneEvent)>>> {
    let raw = match fs::read(dir.join(MANIFEST_FILE)) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    // Manifest: magic(4) version(2) run_id(8) fingerprint(8) total(8)
    // last_seq(8) shards(4) counts(8×shards) crc(4).
    if raw.len() < 46 || raw[0..4] != MANIFEST_MAGIC {
        return Ok(None);
    }
    let body = &raw[..raw.len() - 4];
    let crc = u32::from_le_bytes(raw[raw.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return Ok(None);
    }
    let version = u16::from_le_bytes(raw[4..6].try_into().unwrap());
    let run_id = u64::from_le_bytes(raw[6..14].try_into().unwrap());
    let fingerprint = u64::from_le_bytes(raw[14..22].try_into().unwrap());
    let total = u64::from_le_bytes(raw[22..30].try_into().unwrap());
    let last_seq = u64::from_le_bytes(raw[30..38].try_into().unwrap());
    let shards = u32::from_le_bytes(raw[38..42].try_into().unwrap());
    if version != FORMAT_VERSION
        || run_id != expected.run_id
        || fingerprint != expected.fingerprint
        || shards == 0
        || body.len() != 42 + 8 * shards as usize
    {
        return Ok(None);
    }
    let counts: Vec<u64> = (0..shards as usize)
        .map(|k| u64::from_le_bytes(raw[42 + 8 * k..50 + 8 * k].try_into().unwrap()))
        .collect();
    if counts.iter().sum::<u64>() != total {
        return Ok(None);
    }

    let mut entries: Vec<(u64, ZoneEvent)> = Vec::new();
    for (k, &count) in counts.iter().enumerate() {
        match read_shard(&shard_path(dir, k as u32), run_id, k as u32, count) {
            ShardRead::Entries(mut shard_entries) => entries.append(&mut shard_entries),
            // A shard the manifest says is empty owes recovery nothing:
            // whether its file is missing, zero-length, or a truncated
            // header stub (a worker killed between create and the
            // rename-commit, or a power cut that kept the rename but
            // lost the data), the checkpoint is still whole.
            ShardRead::Absent if count == 0 => {}
            ShardRead::Absent | ShardRead::Invalid => return Ok(None),
        }
    }
    entries.sort_by_key(|e| e.0);
    // The checkpoint must cover exactly the contiguous prefix it claims.
    if entries.len() as u64 != total {
        return Ok(None);
    }
    if total > 0 {
        let first = entries[0].0;
        if entries.last().unwrap().0 != last_seq
            || entries
                .iter()
                .enumerate()
                .any(|(i, e)| e.0 != first + i as u64)
        {
            return Ok(None);
        }
    }
    Ok(Some(entries))
}

/// What a shard file contributed to checkpoint recovery.
enum ShardRead {
    /// A fully validated entry list (matching the manifest's count).
    Entries(Vec<(u64, ZoneEvent)>),
    /// The file is missing or too short to even hold a shard header —
    /// the debris a kill between `File::create` and the rename-commit
    /// (or a power cut reordering rename vs data) leaves behind. Benign
    /// when the manifest expected nothing from this shard.
    Absent,
    /// The file exists with a plausible length but fails validation
    /// (foreign header, bad CRC, count mismatch): the checkpoint as a
    /// whole cannot be trusted.
    Invalid,
}

fn read_shard(path: &Path, run_id: u64, index: u32, count: u64) -> ShardRead {
    let mut raw = Vec::new();
    match File::open(path).and_then(|mut f| f.read_to_end(&mut raw)) {
        Ok(_) => {}
        Err(_) => return ShardRead::Absent,
    }
    if raw.len() < 18 {
        // Zero-length or header-only stub: never committed content.
        return ShardRead::Absent;
    }
    if raw[0..4] != SHARD_MAGIC
        || u16::from_le_bytes(raw[4..6].try_into().unwrap()) != FORMAT_VERSION
        || u64::from_le_bytes(raw[6..14].try_into().unwrap()) != run_id
        || u32::from_le_bytes(raw[14..18].try_into().unwrap()) != index
    {
        return ShardRead::Invalid;
    }
    let mut entries = Vec::new();
    let mut pos = 18usize;
    while pos < raw.len() {
        if raw.len() - pos < 8 {
            return ShardRead::Invalid;
        }
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
        if !(8..=MAX_FRAME).contains(&len) || raw.len() - pos - 8 < len as usize {
            return ShardRead::Invalid;
        }
        let payload = &raw[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return ShardRead::Invalid;
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let event = match decode_event(&payload[8..]) {
            Ok(event) => event,
            Err(_) => return ShardRead::Invalid,
        };
        entries.push((seq, event));
        pos += 8 + len as usize;
    }
    if entries.len() as u64 != count {
        return ShardRead::Invalid;
    }
    ShardRead::Entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::rich_event;
    use dns_wire::name;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("scan-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    const HDR: JournalHeader = JournalHeader {
        run_id: 7,
        fingerprint: 99,
    };

    fn events(n: u64) -> Vec<(u64, ZoneEvent)> {
        (0..n)
            .map(|i| {
                let mut e = rich_event();
                e.scan.name = name!(&format!("zone-{i}.example"));
                e.scan.queries = i as u32;
                (i, e)
            })
            .collect()
    }

    #[test]
    fn checkpoint_round_trips_across_shards() {
        let dir = tmpdir("roundtrip");
        let entries = events(13);
        write_checkpoint(&dir, HDR, &entries, 4).unwrap();
        // Events really are spread over multiple shard files.
        let populated = (0..4)
            .filter(|&k| fs::metadata(shard_path(&dir, k)).unwrap().len() > 18)
            .count();
        assert!(populated > 1, "13 zones should hash to >1 shard");
        let back = read_checkpoint(&dir, HDR).unwrap().expect("valid");
        assert_eq!(back.len(), 13);
        for (i, (seq, e)) in back.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(e.scan.queries, i as u32);
        }
    }

    #[test]
    fn missing_manifest_means_no_checkpoint() {
        let dir = tmpdir("nomanifest");
        assert!(read_checkpoint(&dir, HDR).unwrap().is_none());
        // Shards without a manifest are invisible.
        write_checkpoint(&dir, HDR, &events(5), 2).unwrap();
        fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        assert!(read_checkpoint(&dir, HDR).unwrap().is_none());
    }

    #[test]
    fn corrupt_manifest_is_ignored() {
        let dir = tmpdir("badmanifest");
        write_checkpoint(&dir, HDR, &events(5), 2).unwrap();
        let mut raw = fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let idx = raw.len() / 2;
        raw[idx] ^= 0x01;
        fs::write(dir.join(MANIFEST_FILE), &raw).unwrap();
        assert!(read_checkpoint(&dir, HDR).unwrap().is_none());
    }

    #[test]
    fn corrupt_shard_invalidates_whole_checkpoint() {
        let dir = tmpdir("badshard");
        write_checkpoint(&dir, HDR, &events(8), 2).unwrap();
        for k in 0..2 {
            let p = shard_path(&dir, k);
            let mut raw = fs::read(&p).unwrap();
            if raw.len() <= 18 {
                continue;
            }
            let idx = raw.len() - 5;
            raw[idx] ^= 0xFF;
            fs::write(&p, &raw).unwrap();
            assert!(read_checkpoint(&dir, HDR).unwrap().is_none());
            // Restore for the next iteration.
            raw[idx] ^= 0xFF;
            fs::write(&p, &raw).unwrap();
        }
        assert!(read_checkpoint(&dir, HDR).unwrap().is_some());
    }

    #[test]
    fn foreign_run_is_ignored() {
        let dir = tmpdir("foreign");
        write_checkpoint(&dir, HDR, &events(3), 2).unwrap();
        let other = JournalHeader { run_id: 8, ..HDR };
        assert!(read_checkpoint(&dir, other).unwrap().is_none());
        let other = JournalHeader {
            fingerprint: 100,
            ..HDR
        };
        assert!(read_checkpoint(&dir, other).unwrap().is_none());
    }

    #[test]
    fn missing_shard_invalidates_checkpoint() {
        let dir = tmpdir("missingshard");
        write_checkpoint(&dir, HDR, &events(8), 3).unwrap();
        fs::remove_file(shard_path(&dir, 1)).unwrap();
        assert!(read_checkpoint(&dir, HDR).unwrap().is_none());
    }

    #[test]
    fn empty_shard_debris_is_tolerated() {
        // A worker killed between `File::create` and the rename-commit
        // (or a power cut that keeps the rename but loses the data)
        // leaves a zero-length or header-stub shard file. When the
        // manifest expected nothing from that shard, the checkpoint is
        // still whole.
        let dir = tmpdir("debris");
        // One event over many shards guarantees empty shards exist.
        write_checkpoint(&dir, HDR, &events(1), 8).unwrap();
        let empty: Vec<u32> = (0..8)
            .filter(|&k| fs::metadata(shard_path(&dir, k)).unwrap().len() == 18)
            .collect();
        assert!(empty.len() >= 3, "1 zone over 8 shards leaves >=3 empty");
        // Zero-length file.
        fs::write(shard_path(&dir, empty[0]), b"").unwrap();
        // Truncated header stub (shorter than the 18-byte header).
        fs::write(shard_path(&dir, empty[1]), &b"BSCS\x03\x00"[..]).unwrap();
        // Missing entirely.
        fs::remove_file(shard_path(&dir, empty[2])).unwrap();
        let back = read_checkpoint(&dir, HDR).unwrap().expect("valid");
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn truncated_populated_shard_invalidates_checkpoint() {
        // The same debris on a shard the manifest says holds entries is
        // real data loss: the checkpoint must be rejected.
        let dir = tmpdir("truncated");
        write_checkpoint(&dir, HDR, &events(8), 2).unwrap();
        let populated = (0..2)
            .find(|&k| fs::metadata(shard_path(&dir, k)).unwrap().len() > 18)
            .expect("some shard holds entries");
        fs::write(shard_path(&dir, populated), b"").unwrap();
        assert!(read_checkpoint(&dir, HDR).unwrap().is_none());
    }

    #[test]
    fn zone_shard_is_total_and_stable() {
        for i in 0..64u32 {
            let n = name!(&format!("zone-{i}.example"));
            let k = zone_shard(&n, 4);
            assert!(k < 4);
            assert_eq!(k, zone_shard(&n, 4), "assignment must be stable");
        }
        // shards == 0 is clamped, not a divide-by-zero.
        assert_eq!(zone_shard(&name!("a.example"), 0), 0);
    }

    #[test]
    fn later_checkpoint_replaces_earlier() {
        let dir = tmpdir("replace");
        write_checkpoint(&dir, HDR, &events(3), 2).unwrap();
        write_checkpoint(&dir, HDR, &events(9), 2).unwrap();
        let back = read_checkpoint(&dir, HDR).unwrap().expect("valid");
        assert_eq!(back.len(), 9);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let dir = tmpdir("empty");
        write_checkpoint(&dir, HDR, &[], 2).unwrap();
        let back = read_checkpoint(&dir, HDR).unwrap().expect("valid");
        assert!(back.is_empty());
    }
}
