//! Crash recovery: merge checkpoint + journal tail into resumable state.
//!
//! [`recover`] is the single entry point a restarted scanner calls. It
//! reads whatever survived — a checkpoint, a journal, both, or neither —
//! validates everything against the expected run identity, truncates any
//! torn journal tail on disk, and returns the maximal contiguous event
//! prefix. From that prefix:
//!
//! * [`Recovery::resume_state`] yields the [`ResumeState`] to pass to
//!   [`Scanner::scan_all_with`](bootscan::scanner::Scanner::scan_all_with)
//!   — the latest kept result per completed zone plus the virtual time
//!   already accounted for;
//! * [`Recovery::apply_to`] replays every event's side effects
//!   (validated-key cache, resolver address cache, health counters) into
//!   a fresh [`Scanner`] in journal order, so resumed zone scans see
//!   exactly the shared-cache state the uninterrupted run would have
//!   had at that point.
//!
//! [`JournalSink`] is the production [`ProgressSink`]: it appends each
//! event to the journal (stopping the scan — returning `false` — if the
//! disk fails) and writes a checkpoint every N events.

use crate::checkpoint::{read_checkpoint, write_checkpoint};
use crate::crc::fnv64;
use crate::journal::{
    read_journal, truncate_torn_tail, JournalHeader, JournalWriter, TailStatus, JOURNAL_FILE,
};
use bootscan::scanner::Scanner;
use bootscan::{ProgressSink, ResumeState, ZoneEvent};
use dns_wire::name::Name;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Stable fingerprint of a seed-zone list. Stored in the journal header
/// so a journal cannot silently be resumed against a different target
/// list (which would mis-skip or mis-carry zones).
pub fn fingerprint_names(names: &[Name]) -> u64 {
    let wires: Vec<Vec<u8>> = names.iter().map(|n| n.to_wire()).collect();
    let mut chunks: Vec<&[u8]> = Vec::with_capacity(wires.len() * 2);
    for w in &wires {
        chunks.push(&[0xFF]);
        chunks.push(w);
    }
    fnv64(&chunks)
}

/// Everything recovered from a run directory.
#[derive(Debug)]
pub struct Recovery {
    header: JournalHeader,
    /// The maximal contiguous event prefix (seq 0..len), in order.
    pub events: Vec<(u64, ZoneEvent)>,
    /// Tail state of the journal file as found on disk (already
    /// truncated clean by the time `recover` returns).
    pub journal_tail: TailStatus,
    /// Events only a checkpoint (not the journal file) still held.
    pub checkpoint_only: usize,
    /// The journal file exists with a valid header (resume appends to
    /// it); otherwise resume recreates it.
    journal_writable: bool,
}

impl Recovery {
    /// Sequence number the resumed run's next event will get.
    pub fn next_seq(&self) -> u64 {
        self.events.len() as u64
    }

    /// Completed zones (latest kept result each) and accumulated
    /// virtual duration, ready for
    /// [`scan_all_with`](bootscan::scanner::Scanner::scan_all_with).
    pub fn resume_state(&self) -> ResumeState {
        let mut latest: BTreeMap<Vec<u8>, &ZoneEvent> = BTreeMap::new();
        let mut duration = 0;
        for (_, event) in &self.events {
            duration += event.duration_delta;
            // Later events overwrite: a re-scan pass supersedes the
            // main-pass result for the same zone.
            latest.insert(event.scan.name.to_wire(), event);
        }
        let mut zones: Vec<_> = latest.values().map(|e| e.scan.clone()).collect();
        zones.sort_by(|a, b| a.name.canonical_cmp(&b.name));
        ResumeState {
            zones,
            duration_so_far: duration,
        }
    }

    /// Replay every recovered event's side effects into `scanner`, in
    /// journal order. Must be called on the scanner that will run the
    /// resumed scan, before `scan_all_with`.
    pub fn apply_to(&self, scanner: &Scanner) {
        for (_, event) in &self.events {
            scanner.restore_effects(&event.effects);
        }
    }
}

/// Recover from `dir`. Handles every surviving combination:
///
/// * neither journal nor checkpoint → empty recovery (fresh start);
/// * journal only → replay it (truncating a torn tail on disk);
/// * checkpoint only (journal lost) → restore from the checkpoint;
/// * both → union by sequence number, maximal contiguous prefix.
///
/// A journal whose *header* identifies a different run or seed list is
/// a hard error — resuming against the wrong target list must never
/// happen silently. A corrupt checkpoint is silently ignored (the
/// journal is authoritative); a corrupt journal header drops the file's
/// contents (a valid checkpoint still contributes).
pub fn recover(dir: &Path, expected: JournalHeader) -> io::Result<Recovery> {
    let checkpoint = read_checkpoint(dir, expected)?.unwrap_or_default();

    let journal_path = dir.join(JOURNAL_FILE);
    let (journal_entries, journal_tail, journal_writable) = match read_journal(&journal_path) {
        Ok(read) => {
            match read.header {
                Some(h) if h != expected => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal belongs to a different run \
                             (found run_id={} fingerprint={:#x}, \
                             expected run_id={} fingerprint={:#x})",
                            h.run_id, h.fingerprint, expected.run_id, expected.fingerprint
                        ),
                    ));
                }
                Some(_) => {
                    if let TailStatus::Torn { .. } = read.tail {
                        truncate_torn_tail(&journal_path, read.valid_len)?;
                    }
                    (read.entries, read.tail, true)
                }
                // Header itself torn/corrupt: nothing in the file can be
                // trusted; it will be recreated on resume.
                None => (Vec::new(), read.tail, false),
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), TailStatus::Clean, false),
        Err(e) => return Err(e),
    };

    let mut merged: BTreeMap<u64, ZoneEvent> = BTreeMap::new();
    let mut checkpoint_only = 0usize;
    for (seq, event) in checkpoint {
        merged.insert(seq, event);
        checkpoint_only += 1;
    }
    for (seq, event) in journal_entries {
        if merged.insert(seq, event).is_some() {
            checkpoint_only -= 1;
        }
    }
    let mut events = Vec::with_capacity(merged.len());
    for want in 0.. {
        match merged.remove(&want) {
            Some(event) => events.push((want, event)),
            None => break,
        }
    }

    Ok(Recovery {
        header: expected,
        events,
        journal_tail,
        checkpoint_only,
        journal_writable,
    })
}

/// The production [`ProgressSink`]: write-ahead journal + periodic
/// checkpoints. Returns `false` from `on_zone` (stopping the scan) only
/// when the journal itself cannot be written — a failed *checkpoint* is
/// logged state that simply doesn't compact, never a reason to stop.
/// When the sink compacts the journal into a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cadence {
    Never,
    /// Strictly every N events (predictable coverage; O(n²) total
    /// rewrite work over a long run — fine for tests and short scans).
    EveryN(u64),
    /// When the journal has grown ≥50 % since the last checkpoint (and
    /// by at least `min` events). Each checkpoint rewrites the full
    /// prefix, so the doubling schedule keeps *total* rewrite work O(n)
    /// — the default for registry-scale scans.
    Amortized {
        min: u64,
    },
}

pub struct JournalSink {
    dir: PathBuf,
    header: JournalHeader,
    cadence: Cadence,
    sync_every: u64,
    shards: u32,
    inner: Mutex<SinkInner>,
    /// True while some thread is writing a checkpoint (outside the
    /// `inner` lock). A due checkpoint that finds this set is deferred —
    /// `since_checkpoint` keeps accumulating, so a later event retries —
    /// rather than rewriting the same prefix twice concurrently.
    checkpointing: AtomicBool,
}

struct SinkInner {
    writer: JournalWriter,
    entries: Vec<(u64, ZoneEvent)>,
    since_checkpoint: u64,
    since_sync: u64,
}

impl JournalSink {
    /// Minimum events between checkpoints under the default amortized
    /// cadence (and the interval [`with_checkpoint_every`] is documented
    /// against).
    pub const DEFAULT_CHECKPOINT_EVERY: u64 = 32;
    /// `fdatasync` the journal every this-many events by default (group
    /// commit): power loss can cost at most this many re-scans.
    pub const DEFAULT_SYNC_EVERY: u64 = 8;
    /// Default shard count for checkpoints.
    pub const DEFAULT_SHARDS: u32 = 4;

    /// Start a fresh run in `dir` (created if needed). Any stale
    /// checkpoint manifest in the directory is removed so the directory
    /// unambiguously describes this run.
    pub fn create(dir: &Path, header: JournalHeader) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        match fs::remove_file(dir.join(crate::checkpoint::MANIFEST_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let writer = JournalWriter::create(&dir.join(JOURNAL_FILE), header, 0)?;
        Ok(JournalSink {
            dir: dir.to_path_buf(),
            header,
            cadence: Cadence::Amortized {
                min: Self::DEFAULT_CHECKPOINT_EVERY,
            },
            sync_every: Self::DEFAULT_SYNC_EVERY,
            shards: Self::DEFAULT_SHARDS,
            inner: Mutex::new(SinkInner {
                writer,
                entries: Vec::new(),
                since_checkpoint: 0,
                since_sync: 0,
            }),
            checkpointing: AtomicBool::new(false),
        })
    }

    /// Continue a recovered run: append to the surviving journal, or
    /// recreate it (starting at the recovered sequence) when only a
    /// checkpoint survived.
    pub fn resume(dir: &Path, recovery: &Recovery) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let writer = if recovery.journal_writable {
            JournalWriter::open_append(&path, recovery.next_seq())?
        } else {
            JournalWriter::create(&path, recovery.header, recovery.next_seq())?
        };
        Ok(JournalSink {
            dir: dir.to_path_buf(),
            header: recovery.header,
            cadence: Cadence::Amortized {
                min: Self::DEFAULT_CHECKPOINT_EVERY,
            },
            sync_every: Self::DEFAULT_SYNC_EVERY,
            shards: Self::DEFAULT_SHARDS,
            inner: Mutex::new(SinkInner {
                writer,
                entries: recovery.events.clone(),
                since_checkpoint: 0,
                since_sync: 0,
            }),
            checkpointing: AtomicBool::new(false),
        })
    }

    /// Checkpoint strictly every `every` events (0 disables
    /// checkpoints). Overrides the default amortized cadence; strict
    /// intervals rewrite the full prefix every N events, so prefer the
    /// default for long scans.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.cadence = if every == 0 {
            Cadence::Never
        } else {
            Cadence::EveryN(every)
        };
        self
    }

    /// Override the checkpoint shard count (min 1).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the group-commit interval: `fdatasync` every this-many
    /// appends (min 1; 1 = sync every entry, the strictest durability).
    pub fn with_sync_every(mut self, every: u64) -> Self {
        self.sync_every = every.max(1);
        self
    }

    /// Number of events journaled so far (including recovered ones).
    pub fn entries_logged(&self) -> u64 {
        self.inner.lock().entries.len() as u64
    }

    /// Force a checkpoint of everything journaled so far. Snapshots the
    /// entries under the lock but writes the shards after dropping it,
    /// so concurrent `on_zone` calls never stall behind checkpoint I/O.
    pub fn checkpoint_now(&self) -> io::Result<()> {
        let entries = self.inner.lock().entries.clone();
        write_checkpoint(&self.dir, self.header, &entries, self.shards)
    }
}

impl ProgressSink for JournalSink {
    /// Append (and book-keep) under the `inner` lock, but run both slow
    /// I/O stages — the group-commit `fdatasync` and any due checkpoint
    /// — after dropping it, so concurrent shard workers funnelling into
    /// one sink serialize only on the append itself.
    ///
    /// Durability is unchanged: the sync handle commits every frame the
    /// file has received, so frames appended by other threads between
    /// our unlock and our `fdatasync` are committed early, never missed,
    /// and each appender still triggers a sync every `sync_every` of its
    /// own appends. Checkpoints snapshot the entries under the lock;
    /// the `checkpointing` flag defers (not drops) a checkpoint that
    /// becomes due while another is still being written.
    fn on_zone(&self, event: &ZoneEvent) -> bool {
        let mut inner = self.inner.lock();
        let seq = match inner.writer.append(event) {
            Ok(seq) => seq,
            Err(_) => return false,
        };
        inner.entries.push((seq, event.clone()));
        inner.since_sync += 1;
        let need_sync = if inner.since_sync >= self.sync_every {
            inner.since_sync = 0;
            Some(inner.writer.sync_handle())
        } else {
            None
        };
        inner.since_checkpoint += 1;
        let due = match self.cadence {
            Cadence::Never => false,
            Cadence::EveryN(n) => inner.since_checkpoint >= n,
            Cadence::Amortized { min } => {
                let covered = inner.entries.len() as u64 - inner.since_checkpoint;
                inner.since_checkpoint >= min.max(covered / 2)
            }
        };
        let snapshot = if due && !self.checkpointing.swap(true, Ordering::Acquire) {
            inner.since_checkpoint = 0;
            Some(inner.entries.clone())
        } else {
            // Either not due, or a checkpoint is already in flight — in
            // the latter case `since_checkpoint` keeps counting so a
            // later event re-offers the (larger) prefix.
            None
        };
        drop(inner);

        if let Some(handle) = need_sync {
            // Group commit: a failed sync means the WAL can no longer
            // promise durability — stop like a failed append.
            if handle.sync().is_err() {
                if snapshot.is_some() {
                    self.checkpointing.store(false, Ordering::Release);
                }
                return false;
            }
        }
        if let Some(entries) = snapshot {
            // Best-effort: the journal remains the source of truth.
            let _ = write_checkpoint(&self.dir, self.header, &entries, self.shards);
            self.checkpointing.store(false, Ordering::Release);
        }
        true
    }
}

impl Drop for JournalSink {
    /// Commit any unsynced tail when the scan finishes (best effort — a
    /// failure here costs at most `sync_every` re-scans after power
    /// loss, which recovery handles anyway).
    fn drop(&mut self) {
        let _ = self.inner.get_mut().writer.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::rich_event;
    use crate::namespace::Namespace;
    use dns_wire::name;

    fn shard_run_id(fabric_run_id: u64, shard: u32) -> u64 {
        Namespace::root("", fabric_run_id).shard(shard).run_id()
    }

    fn shard_header(fabric_run_id: u64, shard: u32, seeds: &[Name]) -> JournalHeader {
        Namespace::root("", fabric_run_id)
            .shard(shard)
            .header(seeds)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("scan-recover-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    const HDR: JournalHeader = JournalHeader {
        run_id: 1,
        fingerprint: 2,
    };

    fn event_for(zone: &str, pass: u32, micros: u64) -> ZoneEvent {
        let mut e = rich_event();
        e.scan.name = name!(zone);
        e.pass = pass;
        e.duration_delta = micros;
        e
    }

    fn journal_events(sink: &JournalSink, events: &[ZoneEvent]) {
        for e in events {
            assert!(sink.on_zone(e));
        }
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let rec = recover(&dir, HDR).unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(rec.next_seq(), 0);
        let rs = rec.resume_state();
        assert!(rs.zones.is_empty());
        assert_eq!(rs.duration_so_far, 0);
    }

    #[test]
    fn journal_only_recovery() {
        let dir = tmpdir("jonly");
        let sink = JournalSink::create(&dir, HDR)
            .unwrap()
            .with_checkpoint_every(0);
        journal_events(
            &sink,
            &[
                event_for("a.example", 0, 100),
                event_for("b.example", 0, 50),
                event_for("a.example", 1, 30),
            ],
        );
        let rec = recover(&dir, HDR).unwrap();
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.journal_tail, TailStatus::Clean);
        let rs = rec.resume_state();
        // Latest result per zone: a.example's pass-1 event wins.
        assert_eq!(rs.zones.len(), 2);
        assert_eq!(rs.duration_so_far, 180);
        let a = rs
            .zones
            .iter()
            .find(|z| z.name == name!("a.example"))
            .unwrap();
        assert_eq!(
            a.retry_stats,
            event_for("a.example", 1, 30).scan.retry_stats
        );
    }

    #[test]
    fn checkpoint_only_recovery_after_journal_loss() {
        let dir = tmpdir("conly");
        let sink = JournalSink::create(&dir, HDR).unwrap();
        journal_events(
            &sink,
            &[event_for("a.example", 0, 10), event_for("b.example", 0, 20)],
        );
        sink.checkpoint_now().unwrap();
        drop(sink);
        fs::remove_file(dir.join(JOURNAL_FILE)).unwrap();

        let rec = recover(&dir, HDR).unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.checkpoint_only, 2);
        assert_eq!(rec.resume_state().zones.len(), 2);

        // Resuming recreates the journal at the recovered sequence; a
        // second recovery then sees checkpoint + new journal seamlessly.
        let sink = JournalSink::resume(&dir, &rec).unwrap();
        journal_events(&sink, &[event_for("c.example", 0, 30)]);
        drop(sink);
        let rec2 = recover(&dir, HDR).unwrap();
        assert_eq!(rec2.events.len(), 3);
        assert_eq!(rec2.resume_state().duration_so_far, 60);
    }

    #[test]
    fn torn_tail_is_truncated_on_disk_during_recovery() {
        let dir = tmpdir("torn");
        let sink = JournalSink::create(&dir, HDR)
            .unwrap()
            .with_checkpoint_every(0);
        journal_events(
            &sink,
            &[event_for("a.example", 0, 10), event_for("b.example", 0, 20)],
        );
        drop(sink);
        let path = dir.join(JOURNAL_FILE);
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut raw = fs::read(&path).unwrap();
        raw.extend_from_slice(&[0x55; 23]); // torn partial frame
        fs::write(&path, &raw).unwrap();

        let rec = recover(&dir, HDR).unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.journal_tail, TailStatus::Torn { dropped_bytes: 23 });
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            clean_len,
            "recovery must truncate the torn tail on disk"
        );

        // Appending after truncation yields a clean, contiguous journal.
        let sink = JournalSink::resume(&dir, &rec).unwrap();
        journal_events(&sink, &[event_for("c.example", 0, 30)]);
        drop(sink);
        let rec2 = recover(&dir, HDR).unwrap();
        assert_eq!(rec2.events.len(), 3);
        assert_eq!(rec2.journal_tail, TailStatus::Clean);
    }

    #[test]
    fn foreign_journal_is_a_hard_error() {
        let dir = tmpdir("foreignj");
        let sink = JournalSink::create(&dir, HDR).unwrap();
        journal_events(&sink, &[event_for("a.example", 0, 10)]);
        drop(sink);
        let other = JournalHeader { run_id: 999, ..HDR };
        let err = recover(&dir, other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checkpoint_fills_gap_left_by_recreated_journal() {
        // Checkpoint covers 0..=1; journal was lost and recreated from
        // seq 2. The union is contiguous 0..=2.
        let dir = tmpdir("gap");
        let sink = JournalSink::create(&dir, HDR).unwrap();
        journal_events(
            &sink,
            &[event_for("a.example", 0, 1), event_for("b.example", 0, 2)],
        );
        sink.checkpoint_now().unwrap();
        drop(sink);
        fs::remove_file(dir.join(JOURNAL_FILE)).unwrap();
        let rec = recover(&dir, HDR).unwrap();
        let sink = JournalSink::resume(&dir, &rec).unwrap();
        journal_events(&sink, &[event_for("c.example", 0, 3)]);
        drop(sink);

        // Now corrupt the checkpoint: only the journal (seq 2) is left,
        // which is NOT a contiguous prefix from 0 → nothing usable.
        let manifest = dir.join(crate::checkpoint::MANIFEST_FILE);
        let mut raw = fs::read(&manifest).unwrap();
        let idx = raw.len() - 1;
        raw[idx] ^= 0xFF;
        fs::write(&manifest, &raw).unwrap();
        let rec = recover(&dir, HDR).unwrap();
        assert!(
            rec.events.is_empty(),
            "a non-contiguous survivor set must not be trusted"
        );
    }

    #[test]
    fn shard_namespacing_keeps_shard_journals_foreign_to_each_other() {
        // Two shards of the same fabric run get distinct run ids…
        assert_ne!(shard_run_id(42, 0), shard_run_id(42, 1));
        // …and the same shard of two fabric runs does too.
        assert_ne!(shard_run_id(42, 0), shard_run_id(43, 0));
        // Stable across calls (it is pure FNV).
        assert_eq!(shard_run_id(42, 3), shard_run_id(42, 3));

        // A journal written under shard 0's header is a *hard error*
        // when recovered with shard 1's header — cross-shard resume can
        // never happen silently.
        let dir = tmpdir("shardns");
        let seeds = vec![name!("a.example"), name!("b.example")];
        let h0 = shard_header(42, 0, &seeds);
        let sink = JournalSink::create(&dir, h0).unwrap();
        journal_events(&sink, &[event_for("a.example", 0, 10)]);
        drop(sink);
        let err = recover(&dir, shard_header(42, 1, &seeds)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Same shard, different seed slice: also foreign.
        let err = recover(&dir, shard_header(42, 0, &seeds[..1])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The matching header recovers cleanly.
        assert_eq!(recover(&dir, h0).unwrap().events.len(), 1);
    }

    #[test]
    fn shard_state_dirs_are_disjoint_and_sorted() {
        let root = Namespace::root("/tmp/fabric", 0);
        assert_eq!(root.shard(0).dir(), Path::new("/tmp/fabric/shard-0000"));
        assert_eq!(root.shard(12).dir(), Path::new("/tmp/fabric/shard-0012"));
        assert_ne!(root.shard(1).dir(), root.shard(10).dir());
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_collision_resistant() {
        let a = vec![name!("a.example"), name!("b.example")];
        let b = vec![name!("b.example"), name!("a.example")];
        assert_ne!(fingerprint_names(&a), fingerprint_names(&b));
        assert_eq!(fingerprint_names(&a), fingerprint_names(&a.clone()));
        // Label-boundary shifts must not collide.
        let c = vec![name!("ab.example")];
        let d = vec![name!("a.bexample")];
        assert_ne!(fingerprint_names(&c), fingerprint_names(&d));
    }
}
