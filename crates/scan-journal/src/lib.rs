//! # scan-journal — crash-recoverable scan progress
//!
//! A registry-scale scan (§5/Appendix D of the paper) runs for hours;
//! the scanner must survive being killed at *any* instant without
//! losing completed work or, worse, silently trusting corrupt state.
//! This crate provides the persistence layer that makes the
//! [`bootscan`] scanner crash-recoverable:
//!
//! * [`JournalWriter`]/[`read_journal`] — a versioned, checksummed,
//!   append-only **write-ahead journal** of per-zone scan outcomes
//!   ([`ZoneEvent`](bootscan::ZoneEvent)s, including each zone's side
//!   effects on shared scanner caches). Torn tails from a mid-write
//!   crash are detected by CRC, reported, and physically truncated —
//!   never trusted.
//! * [`write_checkpoint`]/[`read_checkpoint`] — periodic **sharded
//!   checkpoints** compacting the journal; the manifest is written last
//!   via atomic rename, and any validation failure makes the whole
//!   checkpoint invisible (the journal stays authoritative).
//! * [`recover`] — merges whatever survived into the maximal contiguous
//!   event prefix; [`Recovery::resume_state`] +
//!   [`Recovery::apply_to`] then let a fresh
//!   [`Scanner`](bootscan::Scanner) continue mid-queue,
//!   **deterministically**: with a fixed seed and fault plan, a run
//!   killed at any point and resumed produces a byte-identical final
//!   report (`tests/crash_recovery.rs` at the workspace root proves
//!   this at ≥20 cut points).
//! * [`JournalSink`] — the [`ProgressSink`](bootscan::ProgressSink)
//!   that wires all of this into
//!   [`Scanner::scan_all_with`](bootscan::Scanner::scan_all_with).
//!
//! ```no_run
//! use scan_journal::{fingerprint_names, recover, JournalHeader, JournalSink};
//! # fn demo(scanner: std::sync::Arc<bootscan::Scanner>, seeds: Vec<dns_wire::name::Name>) {
//! let dir = std::path::Path::new("scan-state");
//! let header = JournalHeader { run_id: 42, fingerprint: fingerprint_names(&seeds) };
//! let recovery = recover(dir, header).expect("recovery");
//! recovery.apply_to(&scanner);
//! scanner.scan_all_with(
//!     &seeds,
//!     Some(&JournalSink::resume(dir, &recovery).expect("journal")),
//!     Some(recovery.resume_state()),
//! );
//! # }
//! ```

#![forbid(unsafe_code)]

mod checkpoint;
mod codec;
mod crc;
mod journal;
mod namespace;
mod recover;

pub use checkpoint::{read_checkpoint, shard_path, write_checkpoint, zone_shard, MANIFEST_FILE};
pub use codec::{decode_event, encode_event, CodecError};
pub use crc::{crc32, fnv64};
pub use journal::{
    read_journal, truncate_torn_tail, JournalHeader, JournalRead, JournalWriter, TailStatus,
    FORMAT_VERSION, JOURNAL_FILE, JOURNAL_MAGIC,
};
pub use namespace::{Level, Namespace};
pub use recover::{fingerprint_names, recover, JournalSink, Recovery};
