//! Hand-rolled binary codec for [`ZoneEvent`].
//!
//! The journal must round-trip *everything* the scanner produced —
//! including fields the JSON reports skip (`parent_ds`, per-observation
//! addresses, raw DNSKEYs) — because a resumed run replays these events
//! to rebuild scanner caches and must then render byte-identical
//! reports. The serde shims in this workspace only serialize, so the
//! format here is a small explicit little-endian encoding: fixed-width
//! integers, length-prefixed byte strings, one tag byte per enum
//! variant. Framing, checksums, and versioning live in
//! [`journal`](crate::journal); this module is only the payload.

use bootscan::operator::Identified;
use bootscan::types::{
    AbClass, CannotReason, CdsClass, CdsSeen, DnssecClass, NsObservation, SignalObservation,
    SignalViolation, ZoneScan,
};
use bootscan::{AddrHealth, ReferralData, RetryStats, ZoneEffects, ZoneEvent};
use dns_wire::name::Name;
use dns_wire::rdata::{DnskeyData, DsData, RrsigData};
use netsim::Addr;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// Why a checksum-valid payload failed to decode. In a healthy journal
/// this never happens (the CRC already vouches for the bytes); it
/// indicates a format-version bug and is treated by readers as
/// corruption, not a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(&'static str, u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// A name's labels did not form a valid DNS name.
    BadName,
    /// Bytes left over after the event was fully decoded.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated mid-field"),
            CodecError::BadTag(what, tag) => write!(f, "bad {what} tag {tag}"),
            CodecError::BadUtf8 => write!(f, "string field not UTF-8"),
            CodecError::BadName => write!(f, "invalid DNS name"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after event"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------- writer

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn opt_bool(&mut self, v: Option<bool>) {
        self.u8(match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    /// A name as its label count followed by length-prefixed labels
    /// (root = zero labels).
    fn name(&mut self, n: &Name) {
        let labels: Vec<&[u8]> = n.labels().collect();
        self.u8(labels.len() as u8);
        for l in labels {
            self.u8(l.len() as u8);
            self.buf.extend_from_slice(l);
        }
    }
    fn names(&mut self, v: &[Name]) {
        self.u32(v.len() as u32);
        for n in v {
            self.name(n);
        }
    }
    fn addr(&mut self, a: &Addr) {
        match a {
            Addr::V4(ip) => {
                self.u8(4);
                self.buf.extend_from_slice(&ip.octets());
            }
            Addr::V6(ip) => {
                self.u8(6);
                self.buf.extend_from_slice(&ip.octets());
            }
        }
    }
    fn dnskey(&mut self, k: &DnskeyData) {
        self.u16(k.flags);
        self.u8(k.protocol);
        self.u8(k.algorithm);
        self.bytes(&k.public_key);
    }
    fn ds(&mut self, d: &DsData) {
        self.u16(d.key_tag);
        self.u8(d.algorithm);
        self.u8(d.digest_type);
        self.bytes(&d.digest);
    }
    fn rrsig(&mut self, s: &RrsigData) {
        self.u16(s.type_covered);
        self.u8(s.algorithm);
        self.u8(s.labels);
        self.u32(s.original_ttl);
        self.u32(s.expiration);
        self.u32(s.inception);
        self.u16(s.key_tag);
        self.name(&s.signer_name);
        self.bytes(&s.signature);
    }
    fn addrs(&mut self, v: &[Addr]) {
        self.u32(v.len() as u32);
        for a in v {
            self.addr(a);
        }
    }
    fn referral(&mut self, r: &ReferralData) {
        self.name(&r.parent_apex);
        self.names(&r.ns_names);
        match &r.ds {
            None => self.u8(0),
            Some(ds) => {
                self.u8(1);
                self.u32(ds.len() as u32);
                for d in ds {
                    self.ds(d);
                }
            }
        }
        self.u32(r.ds_rrsigs.len() as u32);
        for s in &r.ds_rrsigs {
            self.rrsig(s);
        }
        self.addrs(&r.child_servers);
        self.addrs(&r.parent_servers);
    }
    fn cds_seen(&mut self, c: &CdsSeen) {
        match c {
            CdsSeen::Cds {
                key_tag,
                algorithm,
                digest_type,
                digest,
            } => {
                self.u8(0);
                self.u16(*key_tag);
                self.u8(*algorithm);
                self.u8(*digest_type);
                self.bytes(digest);
            }
            CdsSeen::Cdnskey {
                flags,
                algorithm,
                public_key,
            } => {
                self.u8(1);
                self.u16(*flags);
                self.u8(*algorithm);
                self.bytes(public_key);
            }
        }
    }
    fn cds_list(&mut self, v: &[CdsSeen]) {
        self.u32(v.len() as u32);
        for c in v {
            self.cds_seen(c);
        }
    }
    fn ns_observation(&mut self, o: &NsObservation) {
        self.name(&o.ns_name);
        self.addr(&o.addr);
        self.boolean(o.responded);
        self.boolean(o.soa_present);
        self.boolean(o.cds_query_error);
        self.u32(o.dnskeys.len() as u32);
        for k in &o.dnskeys {
            self.dnskey(k);
        }
        self.cds_list(&o.cds);
        self.opt_bool(o.cds_sig_valid);
        self.boolean(o.csync_present);
    }
    fn signal_observation(&mut self, s: &SignalObservation) {
        self.name(&s.ns_name);
        self.boolean(s.name_unbuildable);
        self.cds_list(&s.cds);
        self.opt_bool(s.dnssec_valid);
        self.boolean(s.zone_cut);
    }
    fn dnssec_class(&mut self, c: DnssecClass) {
        self.u8(match c {
            DnssecClass::Unsigned => 0,
            DnssecClass::Secured => 1,
            DnssecClass::Invalid => 2,
            DnssecClass::Island => 3,
            DnssecClass::Unresolvable => 4,
            DnssecClass::Indeterminate => 5,
        });
    }
    fn cds_class(&mut self, c: CdsClass) {
        self.u8(match c {
            CdsClass::Absent => 0,
            CdsClass::Valid => 1,
            CdsClass::Delete => 2,
            CdsClass::Inconsistent => 3,
            CdsClass::MismatchesDnskey => 4,
            CdsClass::BadSignature => 5,
        });
    }
    fn ab_class(&mut self, c: AbClass) {
        match c {
            AbClass::NoSignal => self.u8(0),
            AbClass::AlreadySecured => self.u8(1),
            AbClass::CannotBootstrap(r) => {
                self.u8(2);
                self.u8(match r {
                    CannotReason::DeletionRequest => 0,
                    CannotReason::ZoneUnsigned => 1,
                    CannotReason::ZoneInvalidDnssec => 2,
                    CannotReason::CdsInconsistent => 3,
                    CannotReason::CdsBadSignature => 4,
                    CannotReason::CdsMismatch => 5,
                });
            }
            AbClass::SignalIncorrect(v) => {
                self.u8(3);
                self.u8(match v {
                    SignalViolation::ZoneCut => 0,
                    SignalViolation::NotUnderEveryNs => 1,
                    SignalViolation::InvalidDnssec => 2,
                    SignalViolation::ContentMismatch => 3,
                });
            }
            AbClass::SignalCorrect => self.u8(4),
        }
    }
    fn identified(&mut self, id: &Identified) {
        match id {
            Identified::Unknown => self.u8(0),
            Identified::Single(s) => {
                self.u8(1);
                self.string(s);
            }
            Identified::Multi(v) => {
                self.u8(2);
                self.u32(v.len() as u32);
                for s in v {
                    self.string(s);
                }
            }
        }
    }
    fn retry_stats(&mut self, r: &RetryStats) {
        self.u32(r.failures);
        self.u32(r.timeouts);
        self.u32(r.unreachable);
        self.u32(r.malformed);
        self.u32(r.servfails);
        self.u32(r.retries);
        self.u32(r.breaker_skips);
        self.u32(r.resolution_failures);
        self.u32(r.rescans);
        self.u32(r.datagrams);
        self.u32(r.tcp_fallbacks);
        self.u64(r.bytes_sent);
        self.u64(r.bytes_received);
        self.u64(r.logical_queries);
        self.u64(r.hostile_mismatched);
        self.u64(r.hostile_foreign);
        self.u64(r.hostile_referral_loops);
        self.u64(r.hostile_wide_referrals);
        self.u64(r.hostile_alias_loops);
        self.u64(r.hostile_budget);
        self.u64(r.hostile_lame);
    }
    fn zone_scan(&mut self, z: &ZoneScan) {
        self.name(&z.name);
        self.names(&z.ns_names);
        self.u32(z.parent_ds.len() as u32);
        for d in &z.parent_ds {
            self.ds(d);
        }
        self.u32(z.ns_observations.len() as u32);
        for o in &z.ns_observations {
            self.ns_observation(o);
        }
        self.u32(z.signal_observations.len() as u32);
        for s in &z.signal_observations {
            self.signal_observation(s);
        }
        self.dnssec_class(z.dnssec);
        self.cds_class(z.cds);
        self.ab_class(z.ab);
        self.identified(&z.operator);
        self.u32(z.queries);
        self.u64(z.elapsed);
        self.boolean(z.sampled);
        self.retry_stats(&z.retry_stats);
        self.boolean(z.degraded);
    }
    fn effects(&mut self, e: &ZoneEffects) {
        self.u32(e.key_inserts.len() as u32);
        for (name, keys) in &e.key_inserts {
            self.name(name);
            self.u32(keys.len() as u32);
            for k in keys {
                self.dnskey(k);
            }
        }
        self.u32(e.addr_inserts.len() as u32);
        for (name, addrs) in &e.addr_inserts {
            self.name(name);
            self.addrs(addrs);
        }
        self.u32(e.referral_inserts.len() as u32);
        for (cut, data) in &e.referral_inserts {
            self.name(cut);
            self.referral(data);
        }
        self.u32(e.health.len() as u32);
        for (addr, h) in &e.health {
            self.addr(addr);
            self.u64(h.successes);
            self.u64(h.failures);
            self.u64(h.breaker_skips);
        }
    }
}

/// Encode one event into a standalone payload (no framing/checksum).
pub fn encode_event(event: &ZoneEvent) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u32(event.pass);
    e.u64(event.duration_delta);
    e.zone_scan(&event.scan);
    e.effects(&event.effects);
    e.buf
}

// ---------------------------------------------------------------- reader

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn boolean(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag("bool", t)),
        }
    }
    fn opt_bool(&mut self) -> Result<Option<bool>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            t => Err(CodecError::BadTag("option<bool>", t)),
        }
    }
    /// A length prefix that is about to drive an allocation: bounded by
    /// the bytes actually remaining, so a corrupt count cannot trigger a
    /// huge reservation before the `Truncated` error surfaces.
    fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.count()?;
        Ok(self.take(n)?.to_vec())
    }
    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }
    fn name(&mut self) -> Result<Name> {
        let n = self.u8()? as usize;
        let mut labels: Vec<&[u8]> = Vec::with_capacity(n);
        for _ in 0..n {
            let len = self.u8()? as usize;
            labels.push(self.take(len)?);
        }
        if labels.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(labels).map_err(|_| CodecError::BadName)
    }
    fn names(&mut self) -> Result<Vec<Name>> {
        let n = self.count()?;
        (0..n).map(|_| self.name()).collect()
    }
    fn addr(&mut self) -> Result<Addr> {
        match self.u8()? {
            4 => {
                let o: [u8; 4] = self.take(4)?.try_into().unwrap();
                Ok(Addr::V4(Ipv4Addr::from(o)))
            }
            6 => {
                let o: [u8; 16] = self.take(16)?.try_into().unwrap();
                Ok(Addr::V6(Ipv6Addr::from(o)))
            }
            t => Err(CodecError::BadTag("addr family", t)),
        }
    }
    fn dnskey(&mut self) -> Result<DnskeyData> {
        Ok(DnskeyData {
            flags: self.u16()?,
            protocol: self.u8()?,
            algorithm: self.u8()?,
            public_key: self.bytes()?,
        })
    }
    fn ds(&mut self) -> Result<DsData> {
        Ok(DsData {
            key_tag: self.u16()?,
            algorithm: self.u8()?,
            digest_type: self.u8()?,
            digest: self.bytes()?,
        })
    }
    fn rrsig(&mut self) -> Result<RrsigData> {
        Ok(RrsigData {
            type_covered: self.u16()?,
            algorithm: self.u8()?,
            labels: self.u8()?,
            original_ttl: self.u32()?,
            expiration: self.u32()?,
            inception: self.u32()?,
            key_tag: self.u16()?,
            signer_name: self.name()?,
            signature: self.bytes()?,
        })
    }
    fn addrs(&mut self) -> Result<Vec<Addr>> {
        let n = self.count()?;
        (0..n).map(|_| self.addr()).collect()
    }
    fn referral(&mut self) -> Result<ReferralData> {
        Ok(ReferralData {
            parent_apex: self.name()?,
            ns_names: self.names()?,
            ds: match self.u8()? {
                0 => None,
                1 => {
                    let n = self.count()?;
                    Some((0..n).map(|_| self.ds()).collect::<Result<_>>()?)
                }
                t => return Err(CodecError::BadTag("referral ds presence", t)),
            },
            ds_rrsigs: {
                let n = self.count()?;
                (0..n).map(|_| self.rrsig()).collect::<Result<_>>()?
            },
            child_servers: self.addrs()?,
            parent_servers: self.addrs()?,
        })
    }
    fn cds_seen(&mut self) -> Result<CdsSeen> {
        match self.u8()? {
            0 => Ok(CdsSeen::Cds {
                key_tag: self.u16()?,
                algorithm: self.u8()?,
                digest_type: self.u8()?,
                digest: self.bytes()?,
            }),
            1 => Ok(CdsSeen::Cdnskey {
                flags: self.u16()?,
                algorithm: self.u8()?,
                public_key: self.bytes()?,
            }),
            t => Err(CodecError::BadTag("cds-seen", t)),
        }
    }
    fn cds_list(&mut self) -> Result<Vec<CdsSeen>> {
        let n = self.count()?;
        (0..n).map(|_| self.cds_seen()).collect()
    }
    fn ns_observation(&mut self) -> Result<NsObservation> {
        Ok(NsObservation {
            ns_name: self.name()?,
            addr: self.addr()?,
            responded: self.boolean()?,
            soa_present: self.boolean()?,
            cds_query_error: self.boolean()?,
            dnskeys: {
                let n = self.count()?;
                (0..n).map(|_| self.dnskey()).collect::<Result<_>>()?
            },
            cds: self.cds_list()?,
            cds_sig_valid: self.opt_bool()?,
            csync_present: self.boolean()?,
        })
    }
    fn signal_observation(&mut self) -> Result<SignalObservation> {
        Ok(SignalObservation {
            ns_name: self.name()?,
            name_unbuildable: self.boolean()?,
            cds: self.cds_list()?,
            dnssec_valid: self.opt_bool()?,
            zone_cut: self.boolean()?,
        })
    }
    fn dnssec_class(&mut self) -> Result<DnssecClass> {
        Ok(match self.u8()? {
            0 => DnssecClass::Unsigned,
            1 => DnssecClass::Secured,
            2 => DnssecClass::Invalid,
            3 => DnssecClass::Island,
            4 => DnssecClass::Unresolvable,
            5 => DnssecClass::Indeterminate,
            t => return Err(CodecError::BadTag("dnssec-class", t)),
        })
    }
    fn cds_class(&mut self) -> Result<CdsClass> {
        Ok(match self.u8()? {
            0 => CdsClass::Absent,
            1 => CdsClass::Valid,
            2 => CdsClass::Delete,
            3 => CdsClass::Inconsistent,
            4 => CdsClass::MismatchesDnskey,
            5 => CdsClass::BadSignature,
            t => return Err(CodecError::BadTag("cds-class", t)),
        })
    }
    fn ab_class(&mut self) -> Result<AbClass> {
        Ok(match self.u8()? {
            0 => AbClass::NoSignal,
            1 => AbClass::AlreadySecured,
            2 => AbClass::CannotBootstrap(match self.u8()? {
                0 => CannotReason::DeletionRequest,
                1 => CannotReason::ZoneUnsigned,
                2 => CannotReason::ZoneInvalidDnssec,
                3 => CannotReason::CdsInconsistent,
                4 => CannotReason::CdsBadSignature,
                5 => CannotReason::CdsMismatch,
                t => return Err(CodecError::BadTag("cannot-reason", t)),
            }),
            3 => AbClass::SignalIncorrect(match self.u8()? {
                0 => SignalViolation::ZoneCut,
                1 => SignalViolation::NotUnderEveryNs,
                2 => SignalViolation::InvalidDnssec,
                3 => SignalViolation::ContentMismatch,
                t => return Err(CodecError::BadTag("signal-violation", t)),
            }),
            4 => AbClass::SignalCorrect,
            t => return Err(CodecError::BadTag("ab-class", t)),
        })
    }
    fn identified(&mut self) -> Result<Identified> {
        Ok(match self.u8()? {
            0 => Identified::Unknown,
            1 => Identified::Single(self.string()?),
            2 => {
                let n = self.count()?;
                Identified::Multi((0..n).map(|_| self.string()).collect::<Result<_>>()?)
            }
            t => return Err(CodecError::BadTag("identified", t)),
        })
    }
    fn retry_stats(&mut self) -> Result<RetryStats> {
        Ok(RetryStats {
            failures: self.u32()?,
            timeouts: self.u32()?,
            unreachable: self.u32()?,
            malformed: self.u32()?,
            servfails: self.u32()?,
            retries: self.u32()?,
            breaker_skips: self.u32()?,
            resolution_failures: self.u32()?,
            rescans: self.u32()?,
            datagrams: self.u32()?,
            tcp_fallbacks: self.u32()?,
            bytes_sent: self.u64()?,
            bytes_received: self.u64()?,
            logical_queries: self.u64()?,
            hostile_mismatched: self.u64()?,
            hostile_foreign: self.u64()?,
            hostile_referral_loops: self.u64()?,
            hostile_wide_referrals: self.u64()?,
            hostile_alias_loops: self.u64()?,
            hostile_budget: self.u64()?,
            hostile_lame: self.u64()?,
        })
    }
    fn zone_scan(&mut self) -> Result<ZoneScan> {
        Ok(ZoneScan {
            name: self.name()?,
            ns_names: self.names()?,
            parent_ds: {
                let n = self.count()?;
                (0..n).map(|_| self.ds()).collect::<Result<_>>()?
            },
            ns_observations: {
                let n = self.count()?;
                (0..n)
                    .map(|_| self.ns_observation())
                    .collect::<Result<_>>()?
            },
            signal_observations: {
                let n = self.count()?;
                (0..n)
                    .map(|_| self.signal_observation())
                    .collect::<Result<_>>()?
            },
            dnssec: self.dnssec_class()?,
            cds: self.cds_class()?,
            ab: self.ab_class()?,
            operator: self.identified()?,
            queries: self.u32()?,
            elapsed: self.u64()?,
            sampled: self.boolean()?,
            retry_stats: self.retry_stats()?,
            degraded: self.boolean()?,
        })
    }
    fn effects(&mut self) -> Result<ZoneEffects> {
        let mut e = ZoneEffects::default();
        let n = self.count()?;
        for _ in 0..n {
            let name = self.name()?;
            let k = self.count()?;
            let keys = (0..k).map(|_| self.dnskey()).collect::<Result<_>>()?;
            e.key_inserts.push((name, keys));
        }
        let n = self.count()?;
        for _ in 0..n {
            let name = self.name()?;
            e.addr_inserts.push((name, Arc::new(self.addrs()?)));
        }
        let n = self.count()?;
        for _ in 0..n {
            let cut = self.name()?;
            e.referral_inserts.push((cut, Arc::new(self.referral()?)));
        }
        let n = self.count()?;
        for _ in 0..n {
            let addr = self.addr()?;
            let h = AddrHealth {
                successes: self.u64()?,
                failures: self.u64()?,
                breaker_skips: self.u64()?,
            };
            e.health.push((addr, h));
        }
        Ok(e)
    }
}

/// Decode one event from a payload produced by [`encode_event`]. The
/// whole payload must be consumed.
pub fn decode_event(payload: &[u8]) -> Result<ZoneEvent> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let event = ZoneEvent {
        pass: d.u32()?,
        duration_delta: d.u64()?,
        scan: d.zone_scan()?,
        effects: d.effects()?,
    };
    if d.pos != payload.len() {
        return Err(CodecError::Trailing(payload.len() - d.pos));
    }
    Ok(event)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dns_wire::name;

    /// An event exercising every field the codec must carry, including
    /// the serde-skipped ones (`parent_ds`, observation `addr`,
    /// `dnskeys`) and both `Addr` families.
    pub(crate) fn rich_event() -> ZoneEvent {
        let key = DnskeyData {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![1, 2, 3, 4, 5],
        };
        let scan = ZoneScan {
            name: name!("zone.example"),
            ns_names: vec![name!("ns1.example"), name!("ns2.example")],
            parent_ds: vec![DsData {
                key_tag: 4711,
                algorithm: 13,
                digest_type: 2,
                digest: vec![9; 32],
            }],
            ns_observations: vec![NsObservation {
                ns_name: name!("ns1.example"),
                addr: Addr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x53)),
                responded: true,
                soa_present: true,
                cds_query_error: false,
                dnskeys: vec![key.clone()],
                cds: vec![
                    CdsSeen::Cds {
                        key_tag: 4711,
                        algorithm: 13,
                        digest_type: 2,
                        digest: vec![9; 32],
                    },
                    CdsSeen::Cdnskey {
                        flags: 257,
                        algorithm: 13,
                        public_key: vec![1, 2, 3, 4, 5],
                    },
                ],
                cds_sig_valid: Some(true),
                csync_present: true,
            }],
            signal_observations: vec![SignalObservation {
                ns_name: name!("ns2.example"),
                name_unbuildable: false,
                cds: vec![],
                dnssec_valid: Some(false),
                zone_cut: true,
            }],
            dnssec: DnssecClass::Island,
            cds: CdsClass::Inconsistent,
            ab: AbClass::SignalIncorrect(SignalViolation::NotUnderEveryNs),
            operator: Identified::Multi(vec!["alpha".into(), "beta".into()]),
            queries: 42,
            elapsed: 1_234_567,
            sampled: true,
            retry_stats: RetryStats {
                failures: 1,
                timeouts: 1,
                unreachable: 2,
                malformed: 3,
                servfails: 4,
                retries: 5,
                breaker_skips: 6,
                resolution_failures: 7,
                rescans: 2,
                datagrams: 99,
                tcp_fallbacks: 1,
                bytes_sent: 12_345,
                bytes_received: 67_890,
                logical_queries: 57,
                hostile_mismatched: 1,
                hostile_foreign: 2,
                hostile_referral_loops: 3,
                hostile_wide_referrals: 4,
                hostile_alias_loops: 5,
                hostile_budget: 6,
                hostile_lame: 7,
            },
            degraded: true,
        };
        ZoneEvent {
            pass: 1,
            duration_delta: 777_001,
            scan,
            effects: ZoneEffects {
                key_inserts: vec![(name!("zone.example"), vec![key])],
                addr_inserts: vec![(
                    name!("ns1.example"),
                    Arc::new(vec![
                        Addr::V4(Ipv4Addr::new(192, 0, 2, 1)),
                        Addr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)),
                    ]),
                )],
                referral_inserts: vec![
                    (
                        name!("zone.example"),
                        Arc::new(ReferralData {
                            parent_apex: name!("example"),
                            ns_names: vec![name!("ns1.example"), name!("ns2.example")],
                            ds: Some(vec![DsData {
                                key_tag: 4711,
                                algorithm: 13,
                                digest_type: 2,
                                digest: vec![9; 32],
                            }]),
                            ds_rrsigs: vec![RrsigData {
                                type_covered: 43,
                                algorithm: 13,
                                labels: 2,
                                original_ttl: 3600,
                                expiration: 1_700_086_400,
                                inception: 1_700_000_000,
                                key_tag: 1234,
                                signer_name: name!("example"),
                                signature: vec![7; 64],
                            }],
                            child_servers: vec![Addr::V4(Ipv4Addr::new(192, 0, 2, 1))],
                            parent_servers: vec![Addr::V6(Ipv6Addr::new(
                                0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x35,
                            ))],
                        }),
                    ),
                    (
                        // An insecure delegation: `ds: None` is itself
                        // cached state (the negative DS answer).
                        name!("unsigned.example"),
                        Arc::new(ReferralData {
                            parent_apex: name!("example"),
                            ns_names: vec![name!("ns.unsigned.example")],
                            ds: None,
                            ds_rrsigs: vec![],
                            child_servers: vec![],
                            parent_servers: vec![Addr::V4(Ipv4Addr::new(192, 0, 2, 53))],
                        }),
                    ),
                ],
                health: vec![(
                    Addr::V4(Ipv4Addr::new(192, 0, 2, 1)),
                    AddrHealth {
                        successes: 10,
                        failures: 2,
                        breaker_skips: 1,
                    },
                )],
            },
        }
    }

    fn assert_events_equal(a: &ZoneEvent, b: &ZoneEvent) {
        // ZoneScan has no PartialEq; its Serialize impl covers the
        // report-visible fields, and the skipped fields are compared
        // explicitly below.
        assert_eq!(a.pass, b.pass);
        assert_eq!(a.duration_delta, b.duration_delta);
        assert_eq!(
            serde_json::to_string(&a.scan).unwrap(),
            serde_json::to_string(&b.scan).unwrap()
        );
        assert_eq!(a.scan.parent_ds, b.scan.parent_ds);
        assert_eq!(a.scan.retry_stats, b.scan.retry_stats);
        for (oa, ob) in a.scan.ns_observations.iter().zip(&b.scan.ns_observations) {
            assert_eq!(oa.addr, ob.addr);
            assert_eq!(oa.dnskeys, ob.dnskeys);
        }
        assert_eq!(a.effects.key_inserts, b.effects.key_inserts);
        assert_eq!(a.effects.addr_inserts, b.effects.addr_inserts);
        assert_eq!(a.effects.referral_inserts, b.effects.referral_inserts);
        assert_eq!(a.effects.health, b.effects.health);
    }

    #[test]
    fn event_round_trips_including_skipped_fields() {
        let event = rich_event();
        let payload = encode_event(&event);
        let back = decode_event(&payload).expect("decode");
        assert_events_equal(&event, &back);
    }

    #[test]
    fn minimal_event_round_trips() {
        let event = ZoneEvent {
            pass: 0,
            duration_delta: 0,
            scan: ZoneScan {
                name: Name::root(),
                ns_names: vec![],
                parent_ds: vec![],
                ns_observations: vec![],
                signal_observations: vec![],
                dnssec: DnssecClass::Unresolvable,
                cds: CdsClass::Absent,
                ab: AbClass::NoSignal,
                operator: Identified::Unknown,
                queries: 0,
                elapsed: 0,
                sampled: false,
                retry_stats: RetryStats::default(),
                degraded: false,
            },
            effects: ZoneEffects::default(),
        };
        let payload = encode_event(&event);
        let back = decode_event(&payload).expect("decode");
        assert_events_equal(&event, &back);
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        let payload = encode_event(&rich_event());
        for cut in 0..payload.len() {
            match decode_event(&payload[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("decode of {cut}-byte prefix unexpectedly succeeded"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_event(&rich_event());
        payload.push(0);
        assert!(matches!(
            decode_event(&payload),
            Err(CodecError::Trailing(1))
        ));
    }
}
