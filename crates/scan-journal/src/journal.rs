//! The write-ahead journal: an append-only file of checksummed frames.
//!
//! ## On-disk layout
//!
//! ```text
//! header  := magic "BSJ1" | version u16 LE | run_id u64 LE |
//!            fingerprint u64 LE | crc32(previous 22 bytes) u32 LE
//! frame   := len u32 LE | crc32(payload) u32 LE | payload
//! payload := seq u64 LE | encoded ZoneEvent (codec.rs)
//! ```
//!
//! Sequence numbers are assigned by the writer and must be contiguous
//! within a file (a resumed run whose original journal was lost starts a
//! fresh file at the recovered sequence, so a file's *first* seq may be
//! non-zero). Every append is written before the scanner is allowed to
//! fold the zone into memory — the write-ahead discipline. *Durability*
//! is batched (group commit): the caller decides when to
//! [`sync`](JournalWriter::sync), trading a bounded window of re-scannable
//! work on power loss for not paying an `fdatasync` per zone.
//! [`JournalSink`](crate::recover::JournalSink) syncs every few entries
//! by default; whatever an unsynced tail loses is exactly what recovery
//! re-scans, so determinism is unaffected.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a torn tail: a truncated frame, a frame
//! whose length survived but whose payload is garbage, or trailing junk.
//! [`read_journal`] never trusts such bytes — it stops at the last frame
//! whose checksum verifies and reports everything after it as
//! [`TailStatus::Torn`]; recovery then physically truncates the file to
//! `valid_len` so the next append starts on a clean boundary. The zones
//! whose events were dropped simply get re-scanned.

use crate::codec::{decode_event, encode_event};
use crate::crc::crc32;
use bootscan::ZoneEvent;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Journal file magic ("Bootstrap Scan Journal v1").
pub const JOURNAL_MAGIC: [u8; 4] = *b"BSJ1";
/// Current format version (bumped on any codec or framing change).
/// v2: `RetryStats` grew logical-query and per-cause hostile counters.
/// v3: `ZoneEffects` grew delegation-cache inserts (`referral_inserts`),
///     replayed on resume alongside the address-cache inserts.
pub const FORMAT_VERSION: u16 = 3;
/// Default journal file name inside a run directory.
pub const JOURNAL_FILE: &str = "journal.bsj";

/// Size of the file header in bytes.
pub(crate) const HEADER_LEN: u64 = 4 + 2 + 8 + 8 + 4;
/// Upper bound on a single frame payload; a "length" beyond this is
/// treated as tail corruption rather than attempted as an allocation.
const MAX_FRAME: u32 = 1 << 26;

/// Identity of a journal: which run produced it and over which seed
/// list. Recovery refuses to mix journals across runs or seed sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Caller-chosen run identifier (e.g. the scan seed).
    pub run_id: u64,
    /// Fingerprint of the seed-zone list
    /// ([`fingerprint_names`](crate::recover::fingerprint_names)).
    pub fingerprint: u64,
}

impl JournalHeader {
    fn to_bytes(self) -> [u8; HEADER_LEN as usize] {
        let mut b = [0u8; HEADER_LEN as usize];
        b[0..4].copy_from_slice(&JOURNAL_MAGIC);
        b[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        b[6..14].copy_from_slice(&self.run_id.to_le_bytes());
        b[14..22].copy_from_slice(&self.fingerprint.to_le_bytes());
        let crc = crc32(&b[0..22]);
        b[22..26].copy_from_slice(&crc.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < HEADER_LEN as usize
            || b[0..4] != JOURNAL_MAGIC
            || u16::from_le_bytes(b[4..6].try_into().unwrap()) != FORMAT_VERSION
            || u32::from_le_bytes(b[22..26].try_into().unwrap()) != crc32(&b[0..22])
        {
            return None;
        }
        Some(JournalHeader {
            run_id: u64::from_le_bytes(b[6..14].try_into().unwrap()),
            fingerprint: u64::from_le_bytes(b[14..22].try_into().unwrap()),
        })
    }
}

/// Appends framed, checksummed events; durability is explicit via
/// [`sync`](Self::sync) (group commit).
#[derive(Debug)]
pub struct JournalWriter {
    file: Arc<File>,
    next_seq: u64,
}

/// A clonable handle that can `fdatasync` the journal file without
/// borrowing the [`JournalWriter`]. This lets a caller serialize
/// appends under a lock but run the (slow, kernel-blocking) sync after
/// dropping it: `fdatasync` commits every byte the file has received,
/// so frames appended by other threads between the handoff and the sync
/// are simply committed early, never skipped.
#[derive(Debug, Clone)]
pub struct SyncHandle(Arc<File>);

impl SyncHandle {
    /// Commit every appended frame to stable storage (group commit).
    pub fn sync(&self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl JournalWriter {
    /// Create (truncating) a fresh journal starting at `first_seq`.
    /// `first_seq` is 0 for a new run, or the recovered sequence when a
    /// checkpoint survived but the journal file did not.
    pub fn create(path: &Path, header: JournalHeader, first_seq: u64) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&header.to_bytes())?;
        file.sync_data()?;
        Ok(JournalWriter {
            file: Arc::new(file),
            next_seq: first_seq,
        })
    }

    /// Open an existing (already validated and tail-truncated) journal
    /// for appending; `next_seq` continues the recovered sequence.
    pub fn open_append(path: &Path, next_seq: u64) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file: Arc::new(file),
            next_seq,
        })
    }

    /// A handle for syncing this journal outside whatever lock guards
    /// the writer itself.
    pub fn sync_handle(&self) -> SyncHandle {
        SyncHandle(Arc::clone(&self.file))
    }

    /// The sequence number the next [`append`](Self::append) will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one event; returns its sequence number. The frame is
    /// handed to the OS before returning but not `fdatasync`ed — call
    /// [`sync`](Self::sync) to commit a batch.
    pub fn append(&mut self, event: &ZoneEvent) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&encode_event(event));
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        (&*self.file).write_all(&frame)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Commit every appended frame to stable storage (group commit).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// What the end of a journal file looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The file ends exactly on a frame boundary.
    Clean,
    /// Bytes after the last checksum-valid frame were dropped (torn
    /// write, garbage, or a checksum/sequence violation).
    Torn { dropped_bytes: u64 },
}

/// Result of scanning a journal file.
#[derive(Debug)]
pub struct JournalRead {
    /// `None` when the header itself was torn or corrupt — the file
    /// contributes nothing and should be recreated.
    pub header: Option<JournalHeader>,
    /// Checksum-valid, sequence-contiguous entries, in order.
    pub entries: Vec<(u64, ZoneEvent)>,
    pub tail: TailStatus,
    /// Byte offset of the end of the last valid frame (truncation
    /// target when the tail is torn).
    pub valid_len: u64,
}

/// Read a journal, stopping at — never trusting — the first corrupt
/// byte. I/O errors (missing file, permission) surface as `Err`;
/// *corruption is not an error*, it is a [`TailStatus::Torn`] report.
pub fn read_journal(path: &Path) -> io::Result<JournalRead> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let total = raw.len() as u64;

    let header = JournalHeader::from_bytes(&raw);
    if header.is_none() {
        return Ok(JournalRead {
            header: None,
            entries: Vec::new(),
            tail: TailStatus::Torn {
                dropped_bytes: total,
            },
            valid_len: 0,
        });
    }

    let mut entries: Vec<(u64, ZoneEvent)> = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut valid_len = HEADER_LEN;
    loop {
        let rest = &raw[pos..];
        if rest.is_empty() {
            return Ok(JournalRead {
                header,
                entries,
                tail: TailStatus::Clean,
                valid_len,
            });
        }
        let torn = |entries: Vec<(u64, ZoneEvent)>, valid_len: u64| {
            Ok(JournalRead {
                header,
                entries,
                tail: TailStatus::Torn {
                    dropped_bytes: total - valid_len,
                },
                valid_len,
            })
        };
        if rest.len() < 8 {
            return torn(entries, valid_len);
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(8..=MAX_FRAME).contains(&len) || rest.len() < 8 + len as usize {
            return torn(entries, valid_len);
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            return torn(entries, valid_len);
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        if let Some((last, _)) = entries.last() {
            if seq != last + 1 {
                return torn(entries, valid_len);
            }
        }
        match decode_event(&payload[8..]) {
            Ok(event) => entries.push((seq, event)),
            // A checksum-valid but undecodable frame means a format bug;
            // treat it like corruption rather than trusting it.
            Err(_) => return torn(entries, valid_len),
        }
        pos += 8 + len as usize;
        valid_len = pos as u64;
    }
}

/// Physically truncate a journal whose tail [`read_journal`] reported
/// torn, so the next append starts on a clean frame boundary.
pub fn truncate_torn_tail(path: &Path, valid_len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::rich_event;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("scan-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const HDR: JournalHeader = JournalHeader {
        run_id: 42,
        fingerprint: 0xDEAD_BEEF,
    };

    fn write_n(path: &Path, n: u64) -> Vec<(u64, ZoneEvent)> {
        let mut w = JournalWriter::create(path, HDR, 0).unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            let mut e = rich_event();
            e.scan.queries = i as u32;
            let seq = w.append(&e).unwrap();
            assert_eq!(seq, i);
            out.push((seq, e));
        }
        out
    }

    #[test]
    fn clean_journal_round_trips() {
        let dir = tmpdir("clean");
        let path = dir.join(JOURNAL_FILE);
        let written = write_n(&path, 5);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.header, Some(HDR));
        assert_eq!(read.tail, TailStatus::Clean);
        assert_eq!(read.entries.len(), 5);
        for ((sa, ea), (sb, eb)) in written.iter().zip(&read.entries) {
            assert_eq!(sa, sb);
            assert_eq!(ea.scan.queries, eb.scan.queries);
        }
    }

    #[test]
    fn truncated_tail_is_detected_and_truncatable() {
        let dir = tmpdir("trunc");
        let path = dir.join(JOURNAL_FILE);
        write_n(&path, 3);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Chop bytes off the end: every prefix must parse to ≤3 entries
        // with no panic, and truncation must restore a clean file.
        for cut in 1..40 {
            let mut raw = std::fs::read(&path).unwrap();
            raw.truncate(raw.len() - cut);
            let torn_path = dir.join(format!("torn-{cut}.bsj"));
            std::fs::write(&torn_path, &raw).unwrap();
            let read = read_journal(&torn_path).unwrap();
            assert!(read.entries.len() <= 3);
            if (read.valid_len) < raw.len() as u64 {
                assert!(matches!(read.tail, TailStatus::Torn { .. }));
                truncate_torn_tail(&torn_path, read.valid_len).unwrap();
                let reread = read_journal(&torn_path).unwrap();
                assert_eq!(reread.tail, TailStatus::Clean);
                assert_eq!(reread.entries.len(), read.entries.len());
            }
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
    }

    #[test]
    fn corrupt_byte_in_last_frame_drops_only_that_frame() {
        let dir = tmpdir("corrupt");
        let path = dir.join(JOURNAL_FILE);
        write_n(&path, 4);
        let raw = std::fs::read(&path).unwrap();
        // Flip a byte inside the last frame's payload.
        let mut bad = raw.clone();
        let idx = bad.len() - 10;
        bad[idx] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 3, "last frame must fail its checksum");
        assert!(matches!(read.tail, TailStatus::Torn { .. }));
    }

    #[test]
    fn garbage_appended_after_clean_frames_is_dropped() {
        let dir = tmpdir("garbage");
        let path = dir.join(JOURNAL_FILE);
        write_n(&path, 2);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xAB; 17]);
        std::fs::write(&path, &raw).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 2);
        assert_eq!(
            read.tail,
            TailStatus::Torn { dropped_bytes: 17 },
            "exactly the garbage bytes are dropped"
        );
        assert_eq!(read.valid_len, clean_len);
    }

    #[test]
    fn corrupt_header_yields_no_entries() {
        let dir = tmpdir("hdr");
        let path = dir.join(JOURNAL_FILE);
        write_n(&path, 2);
        let mut raw = std::fs::read(&path).unwrap();
        raw[1] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.header, None);
        assert!(read.entries.is_empty());
        assert_eq!(read.valid_len, 0);
    }

    #[test]
    fn append_resumes_sequence_numbers() {
        let dir = tmpdir("resume");
        let path = dir.join(JOURNAL_FILE);
        write_n(&path, 2);
        let mut w = JournalWriter::open_append(&path, 2).unwrap();
        assert_eq!(w.append(&rich_event()).unwrap(), 2);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries.len(), 3);
        assert_eq!(read.tail, TailStatus::Clean);
    }

    #[test]
    fn fresh_journal_may_start_at_nonzero_seq() {
        let dir = tmpdir("nonzero");
        let path = dir.join(JOURNAL_FILE);
        let mut w = JournalWriter::create(&path, HDR, 7).unwrap();
        assert_eq!(w.append(&rich_event()).unwrap(), 7);
        assert_eq!(w.append(&rich_event()).unwrap(), 8);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.entries[0].0, 7);
        assert_eq!(read.entries[1].0, 8);
        assert_eq!(read.tail, TailStatus::Clean);
    }
}
