//! Composable journal namespaces: one scheme for every nested run.
//!
//! Both distributed tiers carve a run's state root into independent
//! journal directories — the fabric per *shard*, the longitudinal
//! service per *epoch*, and the continuous service per *epoch × shard*.
//! Each level must provide two guarantees:
//!
//! * **disjoint directories** — a crash corrupts at most one leaf; and
//! * **foreign-by-construction run ids** — a sibling's journal (or a
//!   previous epoch's journal for the same shard) recovered under the
//!   wrong identity is a *hard error* in [`recover`](crate::recover),
//!   never a silent mis-resume. This is what extends lease fencing
//!   across epoch boundaries: a stolen shard resumed in epoch N opens a
//!   directory whose header epoch-N−1 state can never satisfy.
//!
//! [`Namespace`] folds both: every [`child`](Namespace::child) level
//! joins a `"<prefix>-NNNN"` directory component and chains the run id
//! through FNV-1a 64 over `(label, parent run id, index)`. The legacy
//! helpers ([`shard_state_dir`], [`epoch_run_id`], …) are thin wrappers
//! and remain byte-compatible with state roots written before nesting
//! existed.

use crate::crc::fnv64;
use crate::journal::JournalHeader;
use crate::recover::fingerprint_names;
use dns_wire::name::Name;
use std::path::{Path, PathBuf};

/// One namespace level. The directory prefix and the run-id label
/// differ deliberately: they predate unification and are pinned by
/// existing on-disk state roots and recovery tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// A fabric shard (`shard-NNNN`, run ids labelled `fabric-shard`).
    Shard,
    /// A longitudinal epoch (`epoch-NNNN`, run ids labelled
    /// `scan-epoch`).
    Epoch,
}

impl Level {
    fn dir_prefix(self) -> &'static str {
        match self {
            Level::Shard => "shard",
            Level::Epoch => "epoch",
        }
    }

    fn run_label(self) -> &'static [u8] {
        match self {
            Level::Shard => b"fabric-shard",
            Level::Epoch => b"scan-epoch",
        }
    }
}

/// A journal namespace: a state directory plus the run id every journal
/// under it must carry. Root namespaces come from
/// [`root`](Namespace::root); nested levels from
/// [`child`](Namespace::child) (or the [`shard`](Namespace::shard) /
/// [`epoch`](Namespace::epoch) shorthands), which compose — the
/// continuous service uses `root(...).epoch(e).shard(k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Namespace {
    dir: PathBuf,
    run_id: u64,
}

impl Namespace {
    /// The namespace of a whole run: its state root and top-level run
    /// id.
    pub fn root(dir: impl Into<PathBuf>, run_id: u64) -> Namespace {
        Namespace {
            dir: dir.into(),
            run_id,
        }
    }

    /// Descend one level: directory component `"<prefix>-NNNN"`, run id
    /// chained through FNV-1a 64 over `(label, parent run id, index)`.
    /// Distinct indices, distinct levels, and distinct parents all
    /// yield mutually foreign run ids.
    pub fn child(&self, level: Level, index: u32) -> Namespace {
        Namespace {
            dir: self.dir.join(format!("{}-{index:04}", level.dir_prefix())),
            run_id: fnv64(&[
                level.run_label(),
                &self.run_id.to_le_bytes(),
                &index.to_le_bytes(),
            ]),
        }
    }

    /// Shorthand for [`child`](Namespace::child)`(Level::Shard, shard)`.
    pub fn shard(&self, shard: u32) -> Namespace {
        self.child(Level::Shard, shard)
    }

    /// Shorthand for [`child`](Namespace::child)`(Level::Epoch, epoch)`.
    pub fn epoch(&self, epoch: u32) -> Namespace {
        self.child(Level::Epoch, epoch)
    }

    /// The state directory of this namespace.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run id every journal under this namespace must carry.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// The journal header for this namespace over `seeds` — the
    /// namespaced run id plus the fingerprint of exactly the seed slice
    /// this leaf scans, so a reshuffled plan (different slice) makes a
    /// stale directory a hard error instead of a silent mis-resume.
    pub fn header(&self, seeds: &[Name]) -> JournalHeader {
        JournalHeader {
            run_id: self.run_id,
            fingerprint: fingerprint_names(seeds),
        }
    }
}

/// State directory for one fabric shard under a fabric run root. Each
/// shard journals independently — a worker killed mid-shard corrupts at
/// most its own shard directory, and the coordinator can hand the
/// directory to a different worker on reassignment.
pub fn shard_state_dir(root: &Path, shard: u32) -> PathBuf {
    Namespace::root(root, 0).shard(shard).dir
}

/// Run id for one fabric shard's journal, derived from the fabric run
/// id. Namespacing the run id per shard means a shard journal can never
/// be mistaken for (or resumed against) a sibling shard's — `recover`
/// treats a mismatched run id as a foreign journal, a hard error.
pub fn shard_run_id(fabric_run_id: u64, shard: u32) -> u64 {
    Namespace::root("", fabric_run_id).shard(shard).run_id
}

/// Journal header for one fabric shard: namespaced run id plus the
/// fingerprint of *this shard's* seed slice, so reshuffling the shard
/// plan (different shard count, different seed list) invalidates every
/// stale shard directory instead of silently mis-resuming.
pub fn shard_header(fabric_run_id: u64, shard: u32, shard_seeds: &[Name]) -> JournalHeader {
    Namespace::root("", fabric_run_id)
        .shard(shard)
        .header(shard_seeds)
}

/// State directory for one longitudinal epoch under a study run root.
/// Each epoch journals independently: a process killed mid-epoch leaves
/// at most a torn *epoch* directory behind, and resume re-enters exactly
/// that epoch — committed epochs are never re-opened.
pub fn epoch_state_dir(root: &Path, epoch: u32) -> PathBuf {
    Namespace::root(root, 0).epoch(epoch).dir
}

/// Run id for one epoch's journal, derived from the study run id. As
/// with fabric shards, namespacing makes a neighbouring epoch's journal
/// a foreign journal — `recover` hard-errors instead of mis-resuming.
pub fn epoch_run_id(study_run_id: u64, epoch: u32) -> u64 {
    Namespace::root("", study_run_id).epoch(epoch).run_id
}

/// Journal header for one longitudinal epoch: namespaced run id plus the
/// fingerprint of *this epoch's delta scan set*, so a changed churn seed
/// or epoch plan invalidates the stale epoch directory instead of
/// silently resuming a different epoch's work.
pub fn epoch_header(study_run_id: u64, epoch: u32, delta_seeds: &[Name]) -> JournalHeader {
    Namespace::root("", study_run_id)
        .epoch(epoch)
        .header(delta_seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    #[test]
    fn levels_compose_into_nested_dirs_and_chained_run_ids() {
        let ns = Namespace::root("/tmp/study", 7).epoch(3).shard(12);
        assert_eq!(ns.dir(), Path::new("/tmp/study/epoch-0003/shard-0012"));
        // The nested run id is the shard derivation applied to the
        // epoch derivation — exactly what the legacy helpers compose to.
        assert_eq!(ns.run_id(), shard_run_id(epoch_run_id(7, 3), 12));
    }

    #[test]
    fn legacy_helpers_are_byte_compatible_wrappers() {
        let root = Path::new("/tmp/fabric");
        assert_eq!(
            Namespace::root(root, 42).shard(5).dir(),
            &shard_state_dir(root, 5)
        );
        assert_eq!(
            Namespace::root("", 42).shard(5).run_id(),
            shard_run_id(42, 5)
        );
        assert_eq!(
            Namespace::root(root, 42).epoch(5).dir(),
            &epoch_state_dir(root, 5)
        );
        assert_eq!(
            Namespace::root("", 42).epoch(5).run_id(),
            epoch_run_id(42, 5)
        );
        let seeds = vec![name!("a.example"), name!("b.example")];
        assert_eq!(
            Namespace::root("", 42).shard(5).header(&seeds),
            shard_header(42, 5, &seeds)
        );
        assert_eq!(
            Namespace::root("", 42).epoch(5).header(&seeds),
            epoch_header(42, 5, &seeds)
        );
    }

    #[test]
    fn sibling_and_cross_level_namespaces_are_mutually_foreign() {
        let root = Namespace::root("/tmp/x", 9);
        // Siblings at one level.
        assert_ne!(root.shard(0).run_id(), root.shard(1).run_id());
        assert_ne!(root.epoch(0).run_id(), root.epoch(1).run_id());
        // Same index, different level.
        assert_ne!(root.shard(4).run_id(), root.epoch(4).run_id());
        // Same shard under different epochs — the cross-epoch fencing
        // guarantee: epoch N−1's journal can never satisfy epoch N's
        // header for the same shard.
        assert_ne!(
            root.epoch(0).shard(4).run_id(),
            root.epoch(1).shard(4).run_id()
        );
        // Different roots.
        assert_ne!(
            Namespace::root("/tmp/x", 9).shard(0).run_id(),
            Namespace::root("/tmp/x", 10).shard(0).run_id()
        );
    }
}
