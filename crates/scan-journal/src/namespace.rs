//! Composable journal namespaces: one scheme for every nested run.
//!
//! Both distributed tiers carve a run's state root into independent
//! journal directories — the fabric per *shard*, the longitudinal
//! service per *epoch*, and the continuous service per *epoch × shard*.
//! Each level must provide two guarantees:
//!
//! * **disjoint directories** — a crash corrupts at most one leaf; and
//! * **foreign-by-construction run ids** — a sibling's journal (or a
//!   previous epoch's journal for the same shard) recovered under the
//!   wrong identity is a *hard error* in [`recover`](crate::recover),
//!   never a silent mis-resume. This is what extends lease fencing
//!   across epoch boundaries: a stolen shard resumed in epoch N opens a
//!   directory whose header epoch-N−1 state can never satisfy.
//!
//! [`Namespace`] folds both: every [`child`](Namespace::child) level
//! joins a `"<prefix>-NNNN"` directory component and chains the run id
//! through FNV-1a 64 over `(label, parent run id, index)`. The
//! directory component never depends on the run id and the run id never
//! depends on the directory, so `root(dir, run_id).shard(k)` is
//! byte-compatible with state roots written before nesting existed
//! (which derived the two halves separately); the pinned-derivation
//! test below keeps it that way.

use crate::crc::fnv64;
use crate::journal::JournalHeader;
use crate::recover::fingerprint_names;
use dns_wire::name::Name;
use std::path::{Path, PathBuf};

/// One namespace level. The directory prefix and the run-id label
/// differ deliberately: they predate unification and are pinned by
/// existing on-disk state roots and recovery tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// A fabric shard (`shard-NNNN`, run ids labelled `fabric-shard`).
    Shard,
    /// A longitudinal epoch (`epoch-NNNN`, run ids labelled
    /// `scan-epoch`).
    Epoch,
}

impl Level {
    fn dir_prefix(self) -> &'static str {
        match self {
            Level::Shard => "shard",
            Level::Epoch => "epoch",
        }
    }

    fn run_label(self) -> &'static [u8] {
        match self {
            Level::Shard => b"fabric-shard",
            Level::Epoch => b"scan-epoch",
        }
    }
}

/// A journal namespace: a state directory plus the run id every journal
/// under it must carry. Root namespaces come from
/// [`root`](Namespace::root); nested levels from
/// [`child`](Namespace::child) (or the [`shard`](Namespace::shard) /
/// [`epoch`](Namespace::epoch) shorthands), which compose — the
/// continuous service uses `root(...).epoch(e).shard(k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Namespace {
    dir: PathBuf,
    run_id: u64,
}

impl Namespace {
    /// The namespace of a whole run: its state root and top-level run
    /// id.
    pub fn root(dir: impl Into<PathBuf>, run_id: u64) -> Namespace {
        Namespace {
            dir: dir.into(),
            run_id,
        }
    }

    /// Descend one level: directory component `"<prefix>-NNNN"`, run id
    /// chained through FNV-1a 64 over `(label, parent run id, index)`.
    /// Distinct indices, distinct levels, and distinct parents all
    /// yield mutually foreign run ids.
    pub fn child(&self, level: Level, index: u32) -> Namespace {
        Namespace {
            dir: self.dir.join(format!("{}-{index:04}", level.dir_prefix())),
            run_id: fnv64(&[
                level.run_label(),
                &self.run_id.to_le_bytes(),
                &index.to_le_bytes(),
            ]),
        }
    }

    /// Shorthand for [`child`](Namespace::child)`(Level::Shard, shard)`.
    pub fn shard(&self, shard: u32) -> Namespace {
        self.child(Level::Shard, shard)
    }

    /// Shorthand for [`child`](Namespace::child)`(Level::Epoch, epoch)`.
    pub fn epoch(&self, epoch: u32) -> Namespace {
        self.child(Level::Epoch, epoch)
    }

    /// The state directory of this namespace.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run id every journal under this namespace must carry.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// The journal header for this namespace over `seeds` — the
    /// namespaced run id plus the fingerprint of exactly the seed slice
    /// this leaf scans, so a reshuffled plan (different slice) makes a
    /// stale directory a hard error instead of a silent mis-resume.
    pub fn header(&self, seeds: &[Name]) -> JournalHeader {
        JournalHeader {
            run_id: self.run_id,
            fingerprint: fingerprint_names(seeds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_compose_into_nested_dirs_and_chained_run_ids() {
        let ns = Namespace::root("/tmp/study", 7).epoch(3).shard(12);
        assert_eq!(ns.dir(), Path::new("/tmp/study/epoch-0003/shard-0012"));
        // The nested run id is the shard derivation applied to the
        // epoch derivation — level order is what chains.
        assert_eq!(
            ns.run_id(),
            Namespace::root("", Namespace::root("", 7).epoch(3).run_id())
                .shard(12)
                .run_id()
        );
    }

    /// Pins the exact on-disk derivation. State roots written by
    /// earlier releases (which derived directory names and run ids
    /// through separate helper functions) must keep recovering, so the
    /// directory component format and the FNV chaining are frozen here
    /// byte-for-byte — if this test fails, existing journals on disk
    /// have become unreadable.
    #[test]
    fn derivation_is_pinned_for_on_disk_compatibility() {
        let shard = Namespace::root("/r", 42).shard(5);
        assert_eq!(shard.dir(), Path::new("/r/shard-0005"));
        assert_eq!(shard.run_id(), 0x5c9e_c1d9_a9ef_a6e2);
        let epoch = Namespace::root("/r", 42).epoch(5);
        assert_eq!(epoch.dir(), Path::new("/r/epoch-0005"));
        assert_eq!(epoch.run_id(), 0x0280_e052_16e3_a07b);
        // The directory half never depends on the run id; the run-id
        // half never depends on the directory.
        assert_eq!(Namespace::root("/r", 7).shard(5).dir(), shard.dir());
        assert_eq!(Namespace::root("/x", 42).shard(5).run_id(), shard.run_id());
        // The run id is FNV-1a 64 over (level label, parent id, index).
        assert_eq!(
            shard.run_id(),
            crate::crc::fnv64(&[b"fabric-shard", &42u64.to_le_bytes(), &5u32.to_le_bytes()])
        );
    }

    #[test]
    fn sibling_and_cross_level_namespaces_are_mutually_foreign() {
        let root = Namespace::root("/tmp/x", 9);
        // Siblings at one level.
        assert_ne!(root.shard(0).run_id(), root.shard(1).run_id());
        assert_ne!(root.epoch(0).run_id(), root.epoch(1).run_id());
        // Same index, different level.
        assert_ne!(root.shard(4).run_id(), root.epoch(4).run_id());
        // Same shard under different epochs — the cross-epoch fencing
        // guarantee: epoch N−1's journal can never satisfy epoch N's
        // header for the same shard.
        assert_ne!(
            root.epoch(0).shard(4).run_id(),
            root.epoch(1).shard(4).run_id()
        );
        // Different roots.
        assert_ne!(
            Namespace::root("/tmp/x", 9).shard(0).run_id(),
            Namespace::root("/tmp/x", 10).shard(0).run_id()
        );
    }
}
