//! Structural invariants of the generated world, checked by direct
//! inspection (not through the scanner): signal-zone contents, DS
//! correspondence, the paper's deSEC zone-size arithmetic, and seed-list
//! coverage.

use dns_ecosystem::{build, CdsState, DnssecState, EcosystemConfig, SignalTruth};
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::record::RecordType;
use netsim::Transport;

#[test]
fn desec_signal_volume_matches_paper_arithmetic() {
    // Paper §4.4: deSEC's signal RRs per zone per NS = 3 (CDS SHA-256,
    // CDS SHA-384, one CDNSKEY). Verify by querying the live servers for
    // a deSEC-hosted signal name.
    let eco = build(paper_small());
    let desec_idx = eco
        .operators
        .iter()
        .position(|o| o.name == "deSEC")
        .unwrap();
    let zone = eco
        .truth
        .iter()
        .find(|t| {
            t.operator == desec_idx
                && t.dnssec == DnssecState::Island
                && t.cds == CdsState::Valid
                && t.signal == SignalTruth::Published(dns_ecosystem::SignalDefect::None)
        })
        .expect("deSEC bootstrappable zone");
    let ns = &eco.operators[desec_idx].hosts[0]; // ns1.desec.io
    let signame = dns_zone::signal_name(&zone.name, ns).unwrap();
    let addr = eco.operators[desec_idx].host_addrs[0][0];
    let mut signal_rrs = 0;
    for rtype in [RecordType::Cds, RecordType::Cdnskey] {
        let q = Message::query(1, signame.clone(), rtype, true);
        let out = eco.net.query(addr, &q.to_bytes(), Transport::Udp).unwrap();
        let resp = Message::from_bytes(&out.reply).unwrap();
        signal_rrs += resp.answers_of(rtype).len();
    }
    assert_eq!(signal_rrs, 3, "2×CDS + 1×CDNSKEY per NS (paper §4.4)");
}

#[test]
fn glauca_publishes_deletes_in_signal_desec_does_not() {
    // Paper §4.4: "Such deletion RRs in signal zones are published by
    // Cloudflare and Glauca Digital, but not by deSec."
    let eco = build(paper_small());
    for (op_name, expect_delete_signal) in [("Glauca Digital", true), ("deSEC", false)] {
        let idx = eco
            .operators
            .iter()
            .position(|o| o.name == op_name)
            .unwrap();
        let Some(zone) = eco.truth.iter().find(|t| {
            t.operator == idx && t.dnssec == DnssecState::Island && t.cds == CdsState::Delete
        }) else {
            assert!(
                !expect_delete_signal,
                "{op_name} should have delete islands"
            );
            continue;
        };
        assert_eq!(
            zone.has_signal(),
            expect_delete_signal,
            "{op_name}: delete islands signal-published = {expect_delete_signal}"
        );
    }
}

#[test]
fn secured_zones_have_matching_ds_in_registry() {
    let eco = build(EcosystemConfig::tiny(8));
    let mut checked = 0;
    for t in eco
        .truth
        .iter()
        .filter(|t| t.dnssec == DnssecState::Secured)
    {
        let tld = t.name.parent().unwrap();
        let store = &eco.registry_stores[&tld];
        let tld_zone = store.get(&tld).unwrap();
        assert!(
            tld_zone.rrset(&t.name, RecordType::Ds).is_some(),
            "{} secured without DS in {}",
            t.name,
            tld
        );
        checked += 1;
    }
    assert!(checked > 5);
}

#[test]
fn islands_have_no_ds_in_registry() {
    let eco = build(EcosystemConfig::tiny(8));
    for t in eco.truth.iter().filter(|t| t.dnssec == DnssecState::Island) {
        let tld = t.name.parent().unwrap();
        let tld_zone = eco.registry_stores[&tld].get(&tld).unwrap();
        assert!(
            tld_zone.rrset(&t.name, RecordType::Ds).is_none(),
            "{} is an island but has DS",
            t.name
        );
    }
}

#[test]
fn ct_only_tlds_never_fully_covered() {
    // §3.1: .de/.nl only via CT logs at 43–80 % coverage.
    let eco = build(paper_small());
    let de = Name::parse("de").unwrap();
    let truth_de = eco
        .truth
        .iter()
        .filter(|t| t.name.parent() == Some(de.clone()))
        .count();
    let seeds_de = eco.seeds.ct_logs.get(&de).map(|v| v.len()).unwrap_or(0);
    assert!(truth_de > 100, "enough .de zones to sample: {truth_de}");
    let cov = seeds_de as f64 / truth_de as f64;
    assert!(
        (0.35..0.9).contains(&cov),
        ".de CT coverage {cov:.2} outside the §3.1 band"
    );
    assert!(!eco.seeds.zone_files.contains_key(&de));
}

#[test]
fn every_operator_base_zone_is_served() {
    // Each operator NS hostname must resolve within its own server's
    // store (the base zone carries the address records).
    let eco = build(EcosystemConfig::tiny(2));
    for op in &eco.operators {
        for (host, addrs) in op.hosts.iter().zip(op.host_addrs.iter()) {
            let q = Message::query(9, host.clone(), RecordType::A, false);
            let out = eco
                .net
                .query(addrs[0], &q.to_bytes(), Transport::Udp)
                .unwrap_or_else(|e| panic!("{host} via {}: {e}", addrs[0]));
            let resp = Message::from_bytes(&out.reply).unwrap();
            assert!(
                !resp.answers.is_empty(),
                "{} must serve its own A record",
                host
            );
        }
    }
}

/// A smaller paper world for structure checks (scale 1:200 000 keeps the
/// scaled operators tiny while the unscaled pools stay full-size).
fn paper_small() -> EcosystemConfig {
    EcosystemConfig::paper_default(200_000)
}

#[test]
fn nsec3_operators_sign_with_nsec3() {
    // tiny(): CleanCorp signs with NSEC3; SignalSoft with NSEC.
    let eco = build(EcosystemConfig::tiny(6));
    let clean_idx = eco
        .operators
        .iter()
        .position(|o| o.name == "CleanCorp")
        .unwrap();
    let zone = eco
        .truth
        .iter()
        .find(|t| t.operator == clean_idx && t.dnssec == DnssecState::Secured)
        .unwrap();
    // Query an NXDOMAIN under the zone with DO: the denial must be NSEC3
    // (no NSEC record exists anywhere in the zone).
    let missing = zone.name.prepend_label(b"nope").unwrap();
    let addr = eco.operators[clean_idx].host_addrs[0][0];
    let q = Message::query(4, missing, RecordType::A, true);
    let out = eco.net.query(addr, &q.to_bytes(), Transport::Udp).unwrap();
    let resp = Message::from_bytes(&out.reply).unwrap();
    // The apex carries NSEC3PARAM.
    let q2 = Message::query(5, zone.name.clone(), RecordType::Nsec3param, true);
    let out2 = eco.net.query(addr, &q2.to_bytes(), Transport::Udp).unwrap();
    let resp2 = Message::from_bytes(&out2.reply).unwrap();
    assert_eq!(resp2.answers_of(RecordType::Nsec3param).len(), 1);
    // And no NSEC records at the apex.
    let q3 = Message::query(6, zone.name.clone(), RecordType::Nsec, true);
    let out3 = eco.net.query(addr, &q3.to_bytes(), Transport::Udp).unwrap();
    let resp3 = Message::from_bytes(&out3.reply).unwrap();
    assert!(resp3.answers_of(RecordType::Nsec).is_empty());
    let _ = resp;
}
