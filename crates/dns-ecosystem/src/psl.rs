//! Public Suffix List model (paper §3: "zones directly underneath an ICANN
//! public suffix in the Mozilla Public Suffix List").

use dns_wire::name::Name;
use std::collections::BTreeSet;

/// A set of public suffixes.
#[derive(Debug, Clone, Default)]
pub struct PublicSuffixList {
    suffixes: BTreeSet<Name>,
}

impl PublicSuffixList {
    pub fn new() -> Self {
        Self::default()
    }

    /// The suffixes the simulated registries operate, mirroring the TLDs
    /// named in the paper: gTLDs via CZDS, the AXFR ccTLDs (.ch, .li,
    /// .se, .nu, .ee), privately arranged (.uk incl. co.uk, .sk), the AB
    /// registries (.swiss, .whoswho), plus CT-log-sampled ccTLDs (.de,
    /// .nl).
    pub fn simulated() -> Self {
        let mut psl = Self::new();
        for s in [
            "com", "net", "org", "ch", "li", "se", "nu", "ee", "sk", "swiss", "whoswho", "de",
            "nl", "uk", "co.uk", "org.uk", "bo", "com.bo", "vip", "io", "gov", "es", "digital",
            "box",
        ] {
            psl.add(Name::parse(s).expect("static suffix"));
        }
        psl
    }

    pub fn add(&mut self, suffix: Name) {
        self.suffixes.insert(suffix);
    }

    pub fn contains(&self, name: &Name) -> bool {
        self.suffixes.contains(name)
    }

    /// The longest public suffix of `name`, if any.
    pub fn suffix_of(&self, name: &Name) -> Option<Name> {
        let mut best: Option<Name> = None;
        let mut cur = Some(name.clone());
        while let Some(n) = cur {
            if self.suffixes.contains(&n) && n != *name {
                best = Some(n.clone());
                // keep walking: we want the LONGEST suffix, which appears
                // first walking up from the name, so first hit wins.
                break;
            }
            if self.suffixes.contains(&n) && best.is_none() && n != *name {
                best = Some(n.clone());
            }
            cur = n.parent();
        }
        best
    }

    /// Whether `name` is *directly* under a public suffix — i.e. a
    /// registrable domain, the unit of the paper's measurement (they keep
    /// `example.com` and `example.co.uk`, not `a.example.com`).
    pub fn is_registrable(&self, name: &Name) -> bool {
        match name.parent() {
            Some(parent) => self.suffixes.contains(&parent) && !self.suffixes.contains(name),
            None => false,
        }
    }

    /// The registrable domain containing `name` (itself, or an ancestor).
    pub fn registrable_part(&self, name: &Name) -> Option<Name> {
        let mut cur = Some(name.clone());
        while let Some(n) = cur {
            if self.is_registrable(&n) {
                return Some(n);
            }
            cur = n.parent();
        }
        None
    }

    /// All suffixes (unordered).
    pub fn suffixes(&self) -> impl Iterator<Item = &Name> {
        self.suffixes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name;

    #[test]
    fn registrable_detection() {
        let psl = PublicSuffixList::simulated();
        assert!(psl.is_registrable(&name!("example.com")));
        assert!(psl.is_registrable(&name!("example.co.uk")));
        assert!(!psl.is_registrable(&name!("a.example.com")));
        assert!(!psl.is_registrable(&name!("com")));
        // co.uk is itself a suffix, not registrable.
        assert!(!psl.is_registrable(&name!("co.uk")));
        assert!(!psl.is_registrable(&Name::root()));
    }

    #[test]
    fn longest_suffix_wins() {
        let psl = PublicSuffixList::simulated();
        assert_eq!(psl.suffix_of(&name!("example.co.uk")), Some(name!("co.uk")));
        assert_eq!(psl.suffix_of(&name!("example.uk")), Some(name!("uk")));
        assert_eq!(psl.suffix_of(&name!("example.ch")), Some(name!("ch")));
        assert_eq!(psl.suffix_of(&name!("example.xyz")), None);
    }

    #[test]
    fn registrable_part_walks_up() {
        let psl = PublicSuffixList::simulated();
        assert_eq!(
            psl.registrable_part(&name!("deep.www.example.co.uk")),
            Some(name!("example.co.uk"))
        );
        assert_eq!(
            psl.registrable_part(&name!("example.com")),
            Some(name!("example.com"))
        );
        assert_eq!(psl.registrable_part(&name!("com")), None);
    }

    #[test]
    fn paper_tlds_present() {
        let psl = PublicSuffixList::simulated();
        for tld in ["ch", "li", "se", "nu", "ee", "uk", "sk", "swiss", "whoswho"] {
            assert!(psl.contains(&Name::parse(tld).unwrap()), "{tld}");
        }
    }
}
