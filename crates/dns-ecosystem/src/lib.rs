//! # dns-ecosystem — the synthetic Internet the scanner measures
//!
//! The paper scans 287.6 M real zones; this crate builds a faithful,
//! deterministic stand-in (DESIGN.md §2 documents the substitution):
//!
//! * [`psl`] — a public-suffix model (ICANN suffixes incl. multi-label
//!   ones like `co.uk`), used both by the generator and by the scanner's
//!   seed compilation.
//! * [`truth`] — the ground-truth taxonomy: every generated zone carries a
//!   [`truth::ZoneTruth`] describing exactly what was planted (DNSSEC
//!   state, CDS state, signal state, operator, quirks), so the scanner's
//!   measurements can be validated end-to-end.
//! * [`spec`] — operator behaviour profiles calibrated to the paper's
//!   Tables 1–3 and the §4 census counts, plus [`spec::EcosystemConfig`]
//!   presets (`paper_default`, `tiny` for tests).
//! * [`build`] — turns a config into a running world: zones built and
//!   signed, signal zones populated, TLD/root zones delegating
//!   everything, servers registered on a [`netsim::Network`], trust
//!   anchors exported.
//! * [`churn`] — the deployment-over-time model: seeded per-epoch
//!   transitions (DNSSEC adoption/abandonment, CDS and RFC 9615 signal
//!   flips, NS migrations) applied as deterministic world mutation with
//!   a ground-truth delta log, feeding the longitudinal scan tier.
//! * [`seeds`] — synthetic seed sources with the paper's structure
//!   (zone files via CZDS/AXFR, top lists, CT-log-derived ccTLD samples
//!   at 43–80 % coverage).

#![forbid(unsafe_code)]

pub mod build;
pub mod churn;
pub mod psl;
pub mod seeds;
pub mod spec;
pub mod truth;

pub use build::{build, Ecosystem, OperatorFlavor, OperatorInfo};
pub use churn::{
    apply_churn, ChurnAction, ChurnConfig, ChurnDelta, ChurnLog, ChurnPlan, TruthSnapshot,
};
pub use psl::PublicSuffixList;
pub use seeds::{shard_of, SeedLists};
pub use spec::{AdversaryArchetype, AdversaryOpSpec, EcosystemConfig, OperatorSpec};
pub use truth::{CdsState, DnssecState, SignalDefect, SignalTruth, ZoneTruth};
