//! Seed-source synthesis (paper §3 "Domains").
//!
//! The paper compiles its 287.6 M-zone target list from: (i) top lists
//! (Tranco, Majestic, Umbrella, Radar), (ii) CZDS gTLD zone files,
//! (iii) AXFR ccTLDs (.ch, .li, .se, .nu, .ee), (iv) privately arranged
//! zone files (.uk, .sk), and (v) OpenINTEL CT-log-derived lists for
//! ccTLDs without zone file access (.de, .nl — §3.1: between 43 % and
//! 80 % coverage). Zones whose NSes are all in-domain are excluded.
//!
//! This module reproduces that structure over the generated ground truth,
//! so the scanner's seed-compilation step (union → PSL filter →
//! in-domain exclusion) does real work.

use crate::psl::PublicSuffixList;
use crate::truth::ZoneTruth;
use dns_wire::name::Name;
use netsim::DeterministicDraw;
use std::collections::{BTreeMap, BTreeSet};

/// One zone-file entry: zone files carry NS information, so the
/// all-in-domain exclusion can be applied pre-scan (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedEntry {
    pub name: Name,
    pub all_in_domain_ns: bool,
}

/// The synthesized seed sources.
#[derive(Debug, Clone, Default)]
pub struct SeedLists {
    /// Full zone files per suffix (CZDS gTLDs, AXFR and private ccTLDs).
    pub zone_files: BTreeMap<Name, Vec<SeedEntry>>,
    /// Four overlapping top lists (Tranco/Majestic/Umbrella/Radar-like).
    pub top_lists: Vec<Vec<Name>>,
    /// CT-log-derived partial lists for suffixes without zone files.
    pub ct_logs: BTreeMap<Name, Vec<Name>>,
}

/// Suffixes covered only via CT logs in the paper (.de, .nl).
fn ct_only(suffix: &Name) -> bool {
    let s = suffix.to_string_fqdn();
    s == "de." || s == "nl."
}

impl SeedLists {
    /// Synthesize seed lists from the ground truth.
    pub fn generate(truths: &[ZoneTruth], psl: &PublicSuffixList, seed: u64) -> SeedLists {
        let mut lists = SeedLists::default();
        for t in truths {
            let Some(suffix) = psl.suffix_of(&t.name) else {
                continue;
            };
            if ct_only(&suffix) {
                // CT coverage between 43 % and 80 %, varying per suffix
                // (§3.1); deterministic per (seed, suffix).
                let cov =
                    0.43 + 0.37 * DeterministicDraw::new(seed, &[b"cov", &suffix.to_wire()]).unit();
                let include =
                    DeterministicDraw::new(seed, &[b"ct", &t.name.to_wire()]).unit() < cov;
                if include && !t.in_domain_ns {
                    lists
                        .ct_logs
                        .entry(suffix)
                        .or_default()
                        .push(t.name.clone());
                }
            } else {
                lists.zone_files.entry(suffix).or_default().push(SeedEntry {
                    name: t.name.clone(),
                    all_in_domain_ns: t.in_domain_ns,
                });
            }
        }
        // Four top lists, each a ~5 % overlapping sample of everything.
        for list_idx in 0..4u64 {
            let mut list = Vec::new();
            for t in truths {
                let d = DeterministicDraw::new(seed ^ list_idx, &[b"top", &t.name.to_wire()]);
                if d.unit() < 0.05 {
                    list.push(t.name.clone());
                }
            }
            lists.top_lists.push(list);
        }
        lists
    }

    /// The paper's seed compilation: union all sources, keep registrable
    /// names directly under a public suffix, drop zones known (from zone
    /// files) to have only in-domain NSes.
    pub fn compile(&self, psl: &PublicSuffixList) -> Vec<Name> {
        let mut excluded: BTreeSet<Name> = BTreeSet::new();
        let mut out: BTreeSet<Name> = BTreeSet::new();
        for entries in self.zone_files.values() {
            for e in entries {
                if e.all_in_domain_ns {
                    excluded.insert(e.name.clone());
                } else if psl.is_registrable(&e.name) {
                    out.insert(e.name.clone());
                }
            }
        }
        for names in self.ct_logs.values() {
            for n in names {
                if psl.is_registrable(n) && !excluded.contains(n) {
                    out.insert(n.clone());
                }
            }
        }
        for list in &self.top_lists {
            for n in list {
                if psl.is_registrable(n) && !excluded.contains(n) {
                    out.insert(n.clone());
                }
            }
        }
        out.into_iter().collect()
    }

    /// [`compile`](Self::compile) restricted to one fabric shard: the
    /// compiled list filtered to zones whose [`shard_of`] assignment is
    /// `shard`, in canonical DNS order — exactly the slice the fabric's
    /// shard plan dispatches, so a worker may compile only its own
    /// shard. The union over `shard in 0..shards` is exactly
    /// `compile()` (same dedup, same exclusions), and the shards are
    /// pairwise disjoint — so a distributed scan over all shards visits
    /// every zone exactly once.
    pub fn compile_shard(&self, psl: &PublicSuffixList, shard: u32, shards: u32) -> Vec<Name> {
        let mut out: Vec<Name> = self
            .compile(psl)
            .into_iter()
            .filter(|n| shard_of(n, shards) == shard)
            .collect();
        out.sort_by(|a, b| a.canonical_cmp(b));
        out
    }

    /// Total raw entries across all sources (before dedup).
    pub fn total_entries(&self) -> usize {
        self.zone_files.values().map(Vec::len).sum::<usize>()
            + self.ct_logs.values().map(Vec::len).sum::<usize>()
            + self.top_lists.iter().map(Vec::len).sum::<usize>()
    }
}

/// Stable shard assignment for a zone: FNV-1a 64 of the canonical wire
/// name, reduced mod `shards`. `Name` caches this hash, and the scheme
/// is bit-for-bit the one `scan_journal::zone_shard` uses for
/// checkpoint buckets — the fabric's zone-space partition and the
/// journal's checkpoint partition agree by construction.
pub fn shard_of(name: &Name, shards: u32) -> u32 {
    (name.fnv64() % u64::from(shards.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{CdsState, DnssecState, SignalTruth};

    fn truth(name: &str, in_domain: bool) -> ZoneTruth {
        ZoneTruth {
            name: Name::parse(name).unwrap(),
            operator: 0,
            second_operator: None,
            dnssec: DnssecState::Unsigned,
            cds: CdsState::None,
            signal: SignalTruth::NotPublished,
            legacy_ns: false,
            in_domain_ns: in_domain,
            adversary: None,
        }
    }

    fn many_truths() -> Vec<ZoneTruth> {
        let mut v = Vec::new();
        for i in 0..200 {
            v.push(truth(&format!("a{i}.com"), false));
            v.push(truth(&format!("b{i}.de"), false));
        }
        v.push(truth("self.com", true));
        v
    }

    #[test]
    fn zone_files_carry_full_com() {
        let psl = PublicSuffixList::simulated();
        let lists = SeedLists::generate(&many_truths(), &psl, 1);
        let com = lists.zone_files[&Name::parse("com").unwrap()].len();
        assert_eq!(com, 201); // 200 + the in-domain one
    }

    #[test]
    fn ct_coverage_is_partial_in_band() {
        let psl = PublicSuffixList::simulated();
        let lists = SeedLists::generate(&many_truths(), &psl, 1);
        let de = lists.ct_logs[&Name::parse("de").unwrap()].len();
        // 43–80 % of 200, with sampling noise allowance.
        assert!((60..180).contains(&de), "de coverage = {de}");
        // And .de must NOT appear in the zone files.
        assert!(!lists.zone_files.contains_key(&Name::parse("de").unwrap()));
    }

    #[test]
    fn compile_excludes_in_domain_and_dedupes() {
        let psl = PublicSuffixList::simulated();
        let lists = SeedLists::generate(&many_truths(), &psl, 1);
        let compiled = lists.compile(&psl);
        assert!(!compiled.contains(&Name::parse("self.com").unwrap()));
        // All com zones survive exactly once.
        let com_count = compiled
            .iter()
            .filter(|n| n.to_string_fqdn().ends_with(".com."))
            .count();
        assert_eq!(com_count, 200);
        // Deduped overall.
        let set: BTreeSet<&Name> = compiled.iter().collect();
        assert_eq!(set.len(), compiled.len());
    }

    #[test]
    fn top_lists_sample_and_overlap_union() {
        let psl = PublicSuffixList::simulated();
        let lists = SeedLists::generate(&many_truths(), &psl, 1);
        assert_eq!(lists.top_lists.len(), 4);
        for l in &lists.top_lists {
            // ~5 % of 401 each; loose band.
            assert!(l.len() < 80, "{}", l.len());
        }
    }

    #[test]
    fn shards_partition_the_compiled_list() {
        let psl = PublicSuffixList::simulated();
        let lists = SeedLists::generate(&many_truths(), &psl, 1);
        let full = lists.compile(&psl);
        for shards in [1u32, 2, 4, 7] {
            let mut union: Vec<Name> = Vec::new();
            let mut seen: BTreeSet<Name> = BTreeSet::new();
            for k in 0..shards {
                let part = lists.compile_shard(&psl, k, shards);
                for n in &part {
                    assert_eq!(shard_of(n, shards), k);
                    assert!(seen.insert(n.clone()), "{n:?} in two shards");
                }
                union.extend(part);
            }
            union.sort_by(|a, b| a.canonical_cmp(b));
            let mut sorted_full = full.clone();
            sorted_full.sort_by(|a, b| a.canonical_cmp(b));
            assert_eq!(union, sorted_full, "shards={shards} union != compile");
        }
    }

    #[test]
    fn shard_of_matches_checkpoint_bucketing() {
        // Same FNV-1a constants and input as scan-journal's checkpoint
        // bucketing: partition agreement is load-bearing for the fabric.
        let n = Name::parse("agreement.example").unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in n.to_wire() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(shard_of(&n, 8), (h % 8) as u32);
    }

    #[test]
    fn generation_is_deterministic() {
        let psl = PublicSuffixList::simulated();
        let a = SeedLists::generate(&many_truths(), &psl, 9);
        let b = SeedLists::generate(&many_truths(), &psl, 9);
        assert_eq!(a.compile(&psl), b.compile(&psl));
        assert_eq!(a.total_entries(), b.total_entries());
    }
}
